// Benchmark driver tests: the emitted report must be syntactically valid
// JSON and contain a result entry per index with per-query latencies and
// cumulative stats.

#include <unistd.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench.h"
#include "bench/cli.h"
#include "bench/json.h"
#include "bench/workload.h"
#include "tests/test_util.h"

namespace {

using quasii::bench::BenchConfig;
using quasii::bench::JsonWriter;
using quasii::bench::ParseWorkloadMix;
using quasii::bench::RunBenchmark;
using quasii::bench::WorkloadMix;

/// Minimal recursive-descent JSON syntax checker (objects, arrays, strings,
/// numbers, literals). Returns true iff `s` is one valid JSON value.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return Eat('"');
  }

  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

void TestJsonWriterEscaping() {
  JsonWriter w;
  w.BeginObject();
  w.Key("text").String("a\"b\\c\nd");
  w.Key("num").Double(1.5);
  w.Key("arr").BeginArray().Uint(1).Uint(2).EndArray();
  w.EndObject();
  const std::string s = w.str();
  CHECK(JsonValidator(s).Valid());
  CHECK_EQ(s, "{\"text\":\"a\\\"b\\\\c\\nd\",\"num\":1.5,\"arr\":[1,2]}");
}

void TestReportIsValidJson() {
  BenchConfig config;
  config.n = 3000;
  config.queries = 25;
  const std::string report = RunBenchmark(config);
  CHECK(JsonValidator(report).Valid());
  // One result object per roster index, each with latencies and stats.
  CHECK_EQ(CountOccurrences(report, "\"index\":"), 7u);
  CHECK(report.find("\"QUASII\"") != std::string::npos);
  CHECK(report.find("\"Scan\"") != std::string::npos);
  CHECK_EQ(CountOccurrences(report, "\"latencies_ms\":"), 7u);
  CHECK_EQ(CountOccurrences(report, "\"cumulative_stats\":"), 7u);
  // The per-type breakdown: one object per index, all six op-type sections.
  CHECK_EQ(CountOccurrences(report, "\"per_type\":"), 7u);
  CHECK_EQ(CountOccurrences(report, "\"range\":"), 7u + 1u);  // + config mix
  CHECK_EQ(CountOccurrences(report, "\"point\":"), 7u + 1u);
  CHECK_EQ(CountOccurrences(report, "\"count\":"), 7u + 1u);
  CHECK_EQ(CountOccurrences(report, "\"knn\":"), 7u + 1u);
  CHECK_EQ(CountOccurrences(report, "\"insert\":"), 7u + 1u);
  CHECK_EQ(CountOccurrences(report, "\"erase\":"), 7u + 1u);
}

void TestIndexFilterAndWorkloads() {
  BenchConfig config;
  config.n = 2000;
  config.queries = 13;  // not a multiple of the cluster count
  config.dataset = "neuro";
  config.workload = "clustered";
  config.indexes = {"QUASII", "Scan"};
  const std::string report = RunBenchmark(config);
  CHECK(JsonValidator(report).Valid());
  CHECK_EQ(CountOccurrences(report, "\"index\":"), 2u);
  CHECK(report.find("\"R-Tree\"") == std::string::npos);
  CHECK(report.find("\"dataset\":\"neuro\"") != std::string::npos);
  CHECK(report.find("\"workload\":\"clustered\"") != std::string::npos);
  // The clustered workload must honor the exact requested query count.
  CHECK(report.find("\"queries\":13") != std::string::npos);
}

/// All `result_objects` values of a report, in emission order: per index
/// one total followed by the six per-op-type sections' values.
std::vector<std::string> ExtractResultObjects(const std::string& report) {
  std::vector<std::string> values;
  std::size_t pos = 0;
  while ((pos = report.find("\"result_objects\":", pos)) !=
         std::string::npos) {
    pos += std::string("\"result_objects\":").size();
    std::size_t end = pos;
    while (end < report.size() &&
           std::isdigit(static_cast<unsigned char>(report[end]))) {
      ++end;
    }
    values.push_back(report.substr(pos, end - pos));
    pos = end;
  }
  return values;
}

/// Every roster index sees the same queries, so its result counts — the
/// total and every per-type section — must agree with every other index's:
/// the bench-level restatement of the equivalence suite.
void CheckResultCountsAgree(const std::string& report, std::size_t indexes) {
  const std::vector<std::string> values = ExtractResultObjects(report);
  // Per index: one total + one value per op-type section.
  const std::size_t per_index = 1 + quasii::bench::kNumOpTypes;
  CHECK_EQ(values.size(), indexes * per_index);
  for (std::size_t i = 0; i < values.size(); ++i) {
    CHECK_EQ(values[i], values[i % per_index]);
  }
}

void TestRosterResultCountsAgree() {
  BenchConfig config;
  config.n = 4000;
  config.queries = 30;
  const std::string report = RunBenchmark(config);
  CHECK(JsonValidator(report).Valid());
  CheckResultCountsAgree(report, 7);
}

/// A mixed workload routes every query type through the typed engine; the
/// report must stay valid JSON, cover all four types, and agree across the
/// roster per type.
void TestMixedWorkloadReport() {
  BenchConfig config;
  config.n = 3000;
  config.queries = 40;
  config.mix = quasii::bench::DefaultMixedWorkloadMix();
  config.knn_k = 5;
  const std::string report = RunBenchmark(config);
  CHECK(JsonValidator(report).Valid());
  CheckResultCountsAgree(report, 7);
  // The mix is recorded in the config block, and at this size the
  // deterministic interleave exercises every type (non-zero query counts
  // would all be "\"queries\":0" otherwise).
  CHECK(report.find("\"mix\":{\"range\":0.7") != std::string::npos);
  // Only the write and join sections idle under this read-only mix:
  // exactly the insert + erase + join section of each of the 7 indexes
  // reports zero ops.
  CHECK_EQ(CountOccurrences(report, "\"queries\":0"), 3u * 7u);
}

/// A read/write mix interleaves mutations with the queries; the report must
/// stay valid, every op type must run, and acceptance/result counts must
/// agree across the roster — the bench-level restatement of the dynamic
/// equivalence suite.
void TestReadWriteWorkloadReport() {
  BenchConfig config;
  config.n = 3000;
  config.queries = 60;
  config.mix = quasii::bench::DefaultReadWriteMix();
  config.knn_k = 5;
  const std::string report = RunBenchmark(config);
  CHECK(JsonValidator(report).Valid());
  CheckResultCountsAgree(report, 7);
  CHECK(report.find("\"insert\":0.15") != std::string::npos);
  // At this size the deterministic interleave exercises every op type in
  // the mix; only the (unweighted) join section of each index idles.
  CHECK_EQ(CountOccurrences(report, "\"queries\":0"), 1u * 7u);
}

void TestTailLatencyReport() {
  // Schema v8: every index section carries a p50/p90/p99 summary, and a
  // threaded mixed read/write run additionally carries one per thread —
  // the per-client tail-latency metric of the serving work.
  BenchConfig config;
  config.n = 2000;
  config.queries = 48;
  config.threads = 4;
  config.indexes = {"QUASII"};
  config.mix = quasii::bench::DefaultReadWriteMix();
  const std::string report = RunBenchmark(config);
  CHECK(JsonValidator(report).Valid());
  CHECK_EQ(CountOccurrences(report, "\"per_thread\":"), 1u);
  // One index-level summary plus one per thread.
  CHECK_EQ(CountOccurrences(report, "\"p99_ms\":"), 1u + 4u);
  CHECK_EQ(CountOccurrences(report, "\"p50_ms\":"), 1u + 4u);
  CHECK_EQ(CountOccurrences(report, "\"p90_ms\":"), 1u + 4u);

  // The percentile helper itself: exact order statistics on a known sample.
  std::vector<double> sample = {4.0, 1.0, 3.0, 2.0, 5.0};
  CHECK_EQ(quasii::bench::Percentile(sample, 0.0), 1.0);
  CHECK_EQ(quasii::bench::Percentile(sample, 0.5), 3.0);
  CHECK_EQ(quasii::bench::Percentile(sample, 1.0), 5.0);
  CHECK_EQ(quasii::bench::Percentile(sample, 0.75), 4.0);
  CHECK_EQ(quasii::bench::Percentile({}, 0.99), 0.0);
  CHECK_EQ(quasii::bench::Percentile({7.5}, 0.99), 7.5);
}

void TestParseWorkloadMix() {
  WorkloadMix mix;
  CHECK(ParseWorkloadMix("range:0.7,point:0.2,count:0.05,knn:0.05", &mix));
  CHECK_EQ(mix.range, 0.7);
  CHECK_EQ(mix.point, 0.2);
  CHECK_EQ(mix.count, 0.05);
  CHECK_EQ(mix.knn, 0.05);
  CHECK(!mix.IsPureRange());

  CHECK(ParseWorkloadMix("range:0.6,insert:0.3,erase:0.1", &mix));
  CHECK_EQ(mix.insert, 0.3);
  CHECK_EQ(mix.erase, 0.1);
  CHECK(!mix.IsReadOnly());

  CHECK(ParseWorkloadMix("range:0.8,join:0.2", &mix));
  CHECK_EQ(mix.join, 0.2);
  CHECK(mix.IsReadOnly());
  CHECK(!mix.IsPureRange());

  CHECK(ParseWorkloadMix("point:1", &mix));
  CHECK_EQ(mix.range, 0.0);
  CHECK_EQ(mix.point, 1.0);
  CHECK(mix.IsReadOnly());

  // Unknown types, malformed pairs, non-numeric or trailing-garbage
  // weights, and all-zero mixes are rejected (and must not clobber the
  // previous value) — a typo must never silently become weight 0.
  CHECK(!ParseWorkloadMix("warp:0.5", &mix));
  CHECK(!ParseWorkloadMix("range", &mix));
  CHECK(!ParseWorkloadMix("range:0,point:0", &mix));
  CHECK(!ParseWorkloadMix("range:0.7,point:o.2", &mix));
  CHECK(!ParseWorkloadMix("range:", &mix));
  CHECK(!ParseWorkloadMix("range:0.5x", &mix));
  CHECK(!ParseWorkloadMix("range:-0.5", &mix));
  CHECK(!ParseWorkloadMix("range:nan", &mix));
  CHECK(!ParseWorkloadMix("", &mix));
  CHECK_EQ(mix.point, 1.0);

  // A type with weight 0 must never be emitted, even at the roulette
  // wheel's floating-point drift fallback.
  quasii::bench::WorkloadSpec spec;
  CHECK(ParseWorkloadMix("range:0.1,point:0.1,count:0.1", &spec.mix));
  std::vector<quasii::Box3> boxes(500);
  for (auto& b : boxes) {
    for (int d = 0; d < 3; ++d) {
      b.lo[d] = 0;
      b.hi[d] = 1;
    }
  }
  for (const auto& q : quasii::bench::MakeTypedWorkload<3>(boxes, spec)) {
    CHECK(q.type() != quasii::QueryType::kKNearest);
  }
}

/// The strict CLI parsers behind both drivers: whole-value-or-fail, never
/// an atoi()-style silent prefix parse.
void TestCliParsers() {
  namespace cli = quasii::bench::cli;
  std::uint64_t u = 99;
  CHECK(cli::ParseU64("0", &u));
  CHECK_EQ(u, 0u);
  CHECK(cli::ParseU64("18446744073709551615", &u));
  CHECK_EQ(u, 18446744073709551615ull);
  CHECK(!cli::ParseU64("", &u));
  CHECK(!cli::ParseU64("12abc", &u));
  CHECK(!cli::ParseU64("-3", &u));
  CHECK(!cli::ParseU64("+3", &u));
  CHECK(!cli::ParseU64(" 3", &u));
  CHECK(!cli::ParseU64("18446744073709551616", &u));  // overflow

  std::int64_t i = 99;
  CHECK(cli::ParseI64("-17", &i));
  CHECK_EQ(i, -17);
  CHECK(!cli::ParseI64("17.5", &i));
  CHECK(!cli::ParseI64("9223372036854775808", &i));  // overflow

  double d = 99;
  CHECK(cli::ParseDouble("1e-3", &d));
  CHECK_EQ(d, 1e-3);
  CHECK(cli::ParseDouble("-0.5", &d));
  CHECK_EQ(d, -0.5);
  CHECK(!cli::ParseDouble("", &d));
  CHECK(!cli::ParseDouble("0.5x", &d));
  CHECK(!cli::ParseDouble("nan", &d));
  CHECK(!cli::ParseDouble("inf", &d));

  const auto parts = cli::SplitCommas("a,,b,c,");
  CHECK_EQ(parts.size(), 3u);
  CHECK_EQ(parts[0], "a");
  CHECK_EQ(parts[2], "c");
  CHECK(cli::SplitCommas("").empty());

  cli::FlagArg f = cli::SplitFlag("--knn-k=10");
  CHECK(f.is_flag);
  CHECK(f.has_value);
  CHECK_EQ(f.key, "knn-k");
  CHECK_EQ(f.value, "10");
  f = cli::SplitFlag("--recover");
  CHECK(f.is_flag);
  CHECK(!f.has_value);
  CHECK_EQ(f.key, "recover");
  f = cli::SplitFlag("--out=");
  CHECK(f.has_value);
  CHECK_EQ(f.value, "");
  f = cli::SplitFlag("recover");
  CHECK(!f.is_flag);
  f = cli::SplitFlag("-n=3");
  CHECK(!f.is_flag);
}

/// A durability-enabled run emits the v6 durability section, and a
/// recover-from-WAL run starts from the logged mutation history.
void TestDurableBenchReport() {
  char dir_tmpl[] = "/tmp/quasii_bench_wal_XXXXXX";
  const char* dir = ::mkdtemp(dir_tmpl);
  CHECK(dir != nullptr);
  const std::string wal = std::string(dir) + "/run.wal";

  BenchConfig config;
  config.n = 2000;
  config.queries = 40;
  config.indexes = {"QUASII"};
  CHECK(ParseWorkloadMix("range:0.7,insert:0.2,erase:0.1", &config.mix));
  config.durability.wal_path = wal;
  config.durability.snapshot_every = 4;
  config.durability.fsync = quasii::persist::FsyncPolicy::kNone;

  std::string error;
  const std::string report = RunBenchmark(config, &error);
  CHECK_EQ(error, "");
  CHECK(JsonValidator(report).Valid());
  // CHECK_EQ on the extracted value so a schema bump failure prints the
  // found-vs-expected versions instead of a bare substring miss.
  const std::string schema_key = "\"schema\":\"";
  const std::size_t schema_at = report.find(schema_key);
  CHECK(schema_at != std::string::npos);
  const std::size_t schema_begin = schema_at + schema_key.size();
  const std::string found_schema =
      report.substr(schema_begin, report.find('"', schema_begin) - schema_begin);
  CHECK_EQ(found_schema, "quasii-bench-v9");
  CHECK(report.find("\"durability\":") != std::string::npos);
  CHECK(report.find("\"wal_records\":") != std::string::npos);
  CHECK(report.find("\"snapshots_written\":") != std::string::npos);

  // Second run: recover from the first run's WAL + snapshot, then rerun.
  config.durability.recover = true;
  const std::string report2 = RunBenchmark(config, &error);
  CHECK_EQ(error, "");
  CHECK(JsonValidator(report2).Valid());
  CHECK(report2.find("\"recovery\":") != std::string::npos);
  CHECK(report2.find("\"snapshot_loaded\":true") != std::string::npos);

  std::remove(wal.c_str());
  std::remove((wal + ".snapshot").c_str());
  ::rmdir(dir);
}

/// `MakeBenchInputs` must never pad the workload with default-constructed
/// (empty) query boxes: the clustered generator's rounded-up output is
/// clamped down to the requested count, never blindly resized up.
void TestBenchInputsEmitNoEmptyQueries() {
  for (const int requested : {1, 7, 13, 100, 101}) {
    BenchConfig config;
    config.n = 1000;
    config.queries = requested;
    config.workload = "clustered";
    quasii::Dataset3 data;
    quasii::Box3 universe;
    std::vector<quasii::Box3> queries;
    quasii::bench::MakeBenchInputs(config, &data, &universe, &queries);
    CHECK_GT(queries.size(), 0u);
    CHECK_LE(queries.size(), static_cast<std::size_t>(requested));
    for (const quasii::Box3& q : queries) CHECK(!q.IsEmpty());
  }
}

}  // namespace

int main() {
  RUN_TEST(TestJsonWriterEscaping);
  RUN_TEST(TestReportIsValidJson);
  RUN_TEST(TestIndexFilterAndWorkloads);
  RUN_TEST(TestRosterResultCountsAgree);
  RUN_TEST(TestMixedWorkloadReport);
  RUN_TEST(TestReadWriteWorkloadReport);
  RUN_TEST(TestTailLatencyReport);
  RUN_TEST(TestParseWorkloadMix);
  RUN_TEST(TestCliParsers);
  RUN_TEST(TestDurableBenchReport);
  RUN_TEST(TestBenchInputsEmitNoEmptyQueries);
  return 0;
}
