// SIMD / packed-column kernel tests: every vector tier must match the scalar
// reference bit-for-bit at boundary lengths (0, 1, lane-width +/- 1), the
// bit-packed frozen-leaf columns must round-trip mapped values and produce
// scan results identical to the raw columns across all predicates (2D and
// 3D, duplicate-heavy and all-dead rows included), and the thread-local scan
// scratch must shrink back after a burst of large scans.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/crack_array.h"
#include "common/dataset.h"
#include "common/packed_column.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/simd.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "quasii/quasii_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box;
using quasii::Box3;
using quasii::CrackArray;
using quasii::Dataset;
using quasii::MakePackedLeaf;
using quasii::MapOrdered;
using quasii::MaskPackedGe;
using quasii::MaskPackedLe;
using quasii::MaskPackedLeGe;
using quasii::MatchEmitter;
using quasii::ObjectId;
using quasii::PackColumn;
using quasii::PackedColumn;
using quasii::PackedLeaf;
using quasii::QuasiiIndex;
using quasii::RangePredicate;
using quasii::Rng;
using quasii::Scalar;
using quasii::VectorSink;

namespace simd = quasii::simd;

constexpr Scalar kInf = std::numeric_limits<Scalar>::infinity();

// Lengths straddling every lane boundary of the 8-wide kernels (and the
// 16-wide mask passes inside CompactIds).
const std::vector<std::size_t> kLens = {0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100};

/// Random column with duplicates, signed zeros and infinities sprinkled in.
std::vector<Scalar> RandomColumn(std::size_t n, Rng* rng) {
  std::vector<Scalar> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng->UniformInt(0, 9)) {
      case 0:
        v[i] = Scalar{0};
        break;
      case 1:
        v[i] = Scalar{-0.0};
        break;
      case 2:
        v[i] = i > 0 ? v[rng->UniformInt(0, static_cast<std::int64_t>(i) - 1)]
                     : Scalar{1};
        break;
      case 3:
        v[i] = rng->UniformInt(0, 1) ? kInf : -kInf;
        break;
      default:
        v[i] = rng->UniformScalar(-100, 100);
    }
  }
  return v;
}

std::vector<std::uint8_t> RandomMask(std::size_t n, Rng* rng) {
  std::vector<std::uint8_t> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = static_cast<std::uint8_t>(rng->UniformInt(0, 1));
  }
  return m;
}

/// Runs `fn` once under the machine's native tier and once forced scalar.
template <typename Fn>
void ForEachTier(Fn fn) {
  const simd::Tier native = simd::DetectTier();
  simd::ForceTier(native);
  fn();
  simd::ForceTier(simd::Tier::kScalar);
  fn();
  simd::ForceTier(native);
}

void TestTierControls() {
  const simd::Tier native = simd::DetectTier();
  CHECK_EQ(simd::DetectTier(), native);  // stable across calls
  CHECK_EQ(simd::ForceTier(simd::Tier::kScalar), simd::Tier::kScalar);
  CHECK_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  // Forcing an unsupported vector tier clamps to what the machine has.
  const simd::Tier other = native == simd::Tier::kAvx2 ? simd::Tier::kNeon
                                                       : simd::Tier::kAvx2;
  CHECK_EQ(simd::ForceTier(other), native);
  CHECK_EQ(simd::ForceTier(native), native);
  CHECK_EQ(simd::ActiveTier(), native);
}

void TestMaskLeGeMatchesScalar() {
  Rng rng(11);
  for (std::size_t n : kLens) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<Scalar> le_col = RandomColumn(n, &rng);
      const std::vector<Scalar> ge_col = RandomColumn(n, &rng);
      const Scalar le_b = rng.UniformScalar(-120, 120);
      const Scalar ge_b = rng.UniformScalar(-120, 120);
      const std::vector<std::uint8_t> init = RandomMask(n, &rng);
      std::vector<std::uint8_t> want = init;
      simd::MaskLeGeScalar(le_col.data(), le_b, ge_col.data(), ge_b,
                           want.data(), n);
      ForEachTier([&] {
        std::vector<std::uint8_t> got = init;
        simd::MaskLeGe(le_col.data(), le_b, ge_col.data(), ge_b, got.data(),
                       n);
        CHECK(got == want);
      });
    }
  }
}

void TestMaskCountAndCompactMatchScalar() {
  Rng rng(12);
  for (std::size_t n : kLens) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<std::uint8_t> mask = RandomMask(n, &rng);
      std::vector<ObjectId> ids(n);
      for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<ObjectId>(rng.UniformInt(0, 1 << 20));
      }
      const std::uint64_t want_count = simd::MaskCountScalar(mask.data(), n);
      std::vector<ObjectId> want_ids(n + 1, 0xdeadbeef);
      const std::size_t want_m =
          simd::CompactIdsScalar(ids.data(), mask.data(), n, want_ids.data());
      CHECK_EQ(want_count, want_m);
      ForEachTier([&] {
        CHECK_EQ(simd::MaskCount(mask.data(), n), want_count);
        std::vector<ObjectId> got_ids(n + 1, 0xdeadbeef);
        const std::size_t got_m =
            simd::CompactIds(ids.data(), mask.data(), n, got_ids.data());
        CHECK_EQ(got_m, want_m);
        CHECK(std::equal(got_ids.begin(), got_ids.begin() + got_m,
                         want_ids.begin()));
      });
      // All-set and all-clear masks.
      const std::vector<std::uint8_t> ones(n, 1);
      const std::vector<std::uint8_t> zeros(n, 0);
      ForEachTier([&] {
        CHECK_EQ(simd::MaskCount(ones.data(), n), n);
        CHECK_EQ(simd::MaskCount(zeros.data(), n), 0u);
        std::vector<ObjectId> out(n + 1);
        CHECK_EQ(simd::CompactIds(ids.data(), ones.data(), n, out.data()), n);
        CHECK(std::equal(out.begin(), out.begin() + n, ids.begin()));
        CHECK_EQ(simd::CompactIds(ids.data(), zeros.data(), n, out.data()),
                 0u);
      });
    }
  }
}

void TestPackedColumnRoundTrip() {
  // MapOrdered preserves float order and canonicalizes -0.0.
  CHECK_EQ(MapOrdered(Scalar{-0.0}), MapOrdered(Scalar{0}));
  CHECK_LT(MapOrdered(-kInf), MapOrdered(Scalar{-1}));
  CHECK_LT(MapOrdered(Scalar{-1}), MapOrdered(Scalar{0}));
  CHECK_LT(MapOrdered(Scalar{0}), MapOrdered(Scalar{1}));
  CHECK_LT(MapOrdered(Scalar{1}), MapOrdered(kInf));

  // Constant column packs to width 0 and zero words.
  const std::vector<Scalar> constant(37, Scalar{4.5});
  const PackedColumn c0 = PackColumn(constant.data(), constant.size());
  CHECK_EQ(c0.width, 0u);
  CHECK_EQ(c0.rows, constant.size());
  for (std::size_t i = 0; i < constant.size(); ++i) {
    CHECK_EQ(c0.GetMapped(i), MapOrdered(Scalar{4.5}));
  }

  // Full-range column (infinities, negatives, signed zero) needs width 32
  // and still round-trips every mapped value exactly.
  Rng rng(13);
  for (std::size_t n : kLens) {
    if (n == 0) continue;
    std::vector<Scalar> vals = RandomColumn(n, &rng);
    vals[0] = -kInf;  // force the widest frame
    if (n > 1) vals[n - 1] = kInf;
    const PackedColumn col = PackColumn(vals.data(), n);
    CHECK_EQ(col.rows, n);
    for (std::size_t i = 0; i < n; ++i) {
      CHECK_EQ(col.GetMapped(i), MapOrdered(vals[i]));
    }
    // Narrow column: small deltas pack into few bits.
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] = Scalar(100 + static_cast<int>(rng.UniformInt(0, 7)));
    }
    const PackedColumn narrow = PackColumn(vals.data(), n);
    // Floats 100..107 share exponent bits: mapped deltas span 20 bits.
    CHECK_LE(static_cast<unsigned>(narrow.width), 20u);
    for (std::size_t i = 0; i < n; ++i) {
      CHECK_EQ(narrow.GetMapped(i), MapOrdered(vals[i]));
    }
  }
}

void TestMaskPackedMatchesFloatReference() {
  Rng rng(14);
  for (std::size_t n : kLens) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<Scalar> le_vals = RandomColumn(n, &rng);
      std::vector<Scalar> ge_vals = RandomColumn(n, &rng);
      if (rep == 0) {  // constant columns exercise the width-0 verdicts
        std::fill(le_vals.begin(), le_vals.end(), Scalar{3});
        std::fill(ge_vals.begin(), ge_vals.end(), Scalar{-7});
      }
      const PackedColumn le_col = PackColumn(le_vals.data(), n);
      const PackedColumn ge_col = PackColumn(ge_vals.data(), n);
      // Bounds inside, below, and above the column frames hit the compare
      // path and both all-pass / all-fail early-outs.
      const std::array<Scalar, 5> bounds = {
          rng.UniformScalar(-120, 120), Scalar{-200}, Scalar{200}, -kInf,
          kInf};
      for (const Scalar le_b : bounds) {
        for (const Scalar ge_b : bounds) {
          const std::vector<std::uint8_t> init = RandomMask(n, &rng);
          std::vector<std::uint8_t> want = init;
          for (std::size_t i = 0; i < n; ++i) {
            want[i] &= static_cast<std::uint8_t>((le_vals[i] <= le_b) &
                                                 (ge_vals[i] >= ge_b));
          }
          ForEachTier([&] {
            std::vector<std::uint8_t> got = init;
            MaskPackedLe(le_col, MapOrdered(le_b), got.data(), n);
            MaskPackedGe(ge_col, MapOrdered(ge_b), got.data(), n);
            CHECK(got == want);
            std::vector<std::uint8_t> fused = init;
            MaskPackedLeGe(le_col, MapOrdered(le_b), ge_col,
                           MapOrdered(ge_b), fused.data(), n);
            CHECK(fused == want);
          });
        }
      }
    }
  }
}

template <int D>
Dataset<D> MakeScanDataset(std::size_t n, Rng* rng, bool duplicate_heavy) {
  Dataset<D> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < D; ++d) {
      Scalar lo;
      if (duplicate_heavy && rng->UniformInt(0, 2) != 0) {
        lo = Scalar(10 * rng->UniformInt(0, 4));  // few distinct values
      } else {
        lo = rng->UniformScalar(0, 100);
      }
      data[i].lo[d] = lo;
      data[i].hi[d] = lo + rng->UniformScalar(0, 5);
    }
  }
  return data;
}

/// StreamScan over `[0, n)` with and without the packed leaf, at every tier,
/// for every predicate: ids must be identical (order included — both paths
/// emit in row order).
template <int D>
void CheckStreamScanPackedVsRaw(const CrackArray<D>& array,
                                const PackedLeaf<D>& leaf, const Box<D>& q) {
  const std::size_t n = array.size();
  for (const RangePredicate pred :
       {RangePredicate::kIntersects, RangePredicate::kContains,
        RangePredicate::kContainedBy}) {
    std::vector<ObjectId> want;
    {
      VectorSink sink(&want);
      MatchEmitter emit(false, &sink);
      simd::ForceTier(simd::Tier::kScalar);
      array.StreamScan(0, n, q, pred, 0, &emit, nullptr);
      simd::ForceTier(simd::DetectTier());
    }
    ForEachTier([&] {
      for (const PackedLeaf<D>* packed : {&leaf, (const PackedLeaf<D>*)nullptr}) {
        std::vector<ObjectId> got;
        VectorSink sink(&got);
        MatchEmitter emit(false, &sink);
        array.StreamScan(0, n, q, pred, 0, &emit, packed);
        CHECK(got == want);
      }
    });
  }
}

template <int D>
void RunStreamScanTest(bool duplicate_heavy, bool kill_all) {
  Rng rng(15 + D + (duplicate_heavy ? 1 : 0));
  for (std::size_t n : kLens) {
    if (n == 0) continue;
    const Dataset<D> data = MakeScanDataset<D>(n, &rng, duplicate_heavy);
    CrackArray<D> array(data);
    if (kill_all) {
      for (ObjectId id = 0; id < n; ++id) CHECK(array.EraseId(id));
    } else if (n >= 4) {
      // Tombstone a few rows so the live-mask seed path runs too.
      for (int k = 0; k < 3; ++k) {
        array.EraseId(static_cast<ObjectId>(
            rng.UniformInt(0, static_cast<std::int64_t>(n) - 1)));
      }
    }
    std::array<const Scalar*, static_cast<std::size_t>(D)> los, his;
    for (int d = 0; d < D; ++d) {
      los[static_cast<std::size_t>(d)] = array.lo_col(d).data();
      his[static_cast<std::size_t>(d)] = array.hi_col(d).data();
    }
    const auto leaf = MakePackedLeaf<D>(los, his, n);
    for (int rep = 0; rep < 4; ++rep) {
      Box<D> q;
      for (int d = 0; d < D; ++d) {
        const Scalar a = rng.UniformScalar(0, 100);
        const Scalar b = rng.UniformScalar(0, 100);
        q.lo[d] = std::min(a, b);
        q.hi[d] = std::max(a, b);
      }
      CheckStreamScanPackedVsRaw<D>(array, *leaf, q);
    }
    // A query covering everything and one hitting nothing.
    Box<D> all, none;
    for (int d = 0; d < D; ++d) {
      all.lo[d] = -kInf;
      all.hi[d] = kInf;
      none.lo[d] = Scalar{-500};
      none.hi[d] = Scalar{-400};
    }
    CheckStreamScanPackedVsRaw<D>(array, *leaf, all);
    CheckStreamScanPackedVsRaw<D>(array, *leaf, none);
  }
}

void TestStreamScanPackedVsRaw2D() { RunStreamScanTest<2>(false, false); }
void TestStreamScanPackedVsRaw3D() { RunStreamScanTest<3>(false, false); }
void TestStreamScanDuplicateHeavy() { RunStreamScanTest<3>(true, false); }
void TestStreamScanAllDead() { RunStreamScanTest<3>(false, true); }

void TestScanScratchShrinks() {
  using quasii::internal::ScanScratch;
  ScanScratch s;
  // Grow far past the cap, then report a burst of small scans: capacity
  // must fall back to roughly the working size after kShrinkStreak scans.
  s.mask.assign(4u << 20, 1);
  s.ids.assign(1u << 21, 0);
  CHECK_GT(s.mask.capacity(), ScanScratch::kCapBytes);
  CHECK_GT(s.ids.capacity() * sizeof(ObjectId), ScanScratch::kCapBytes);
  for (int i = 0; i < ScanScratch::kShrinkStreak - 1; ++i) {
    s.Release(1024, 256);
    CHECK_GT(s.mask.capacity(), ScanScratch::kCapBytes);  // not yet
  }
  // One big scan resets the streak...
  s.Release(s.mask.capacity(), s.ids.capacity());
  for (int i = 0; i < ScanScratch::kShrinkStreak - 1; ++i) {
    s.Release(1024, 256);
    CHECK_GT(s.mask.capacity(), ScanScratch::kCapBytes);
  }
  // ...and the streak's final small scan triggers the shrink.
  s.Release(1024, 256);
  CHECK_LE(s.mask.capacity(), ScanScratch::kCapBytes);
  CHECK_LE(s.ids.capacity() * sizeof(ObjectId), ScanScratch::kCapBytes);
  // Below-cap scratch is left alone no matter the streak.
  const std::size_t cap_before = s.mask.capacity();
  for (int i = 0; i < 2 * ScanScratch::kShrinkStreak; ++i) s.Release(1, 1);
  CHECK_EQ(s.mask.capacity(), cap_before);
}

void TestQuasiiPackedEndToEnd() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 20000;
  dp.seed = 7;
  const quasii::Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  quasii::datagen::UniformQueryParams qp;
  qp.count = 400;
  qp.selectivity = 1e-3;
  qp.seed = 8;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);

  QuasiiIndex<3> index(data);
  for (const Box3& q : queries) {
    std::vector<ObjectId> sink_out;
    RangeQueryInto(index, q, &sink_out);
  }
  if (!QuasiiIndex<3>::PackingEnabled()) return;  // QUASII_NO_PACK=1 run
  const auto mem = index.column_memory();
  CHECK_GT(mem.packed_leaves, 0u);
  CHECK_GT(mem.packed_rows, 0u);
  CHECK_LT(mem.resident_bytes, mem.raw_bytes);

  // Packed and raw scans agree query-for-query, at the native tier and
  // forced scalar.
  ForEachTier([&] {
    for (std::size_t i = 0; i < 50; ++i) {
      std::vector<ObjectId> packed_ids, raw_ids;
      index.set_packed_scan_enabled(true);
      RangeQueryInto(index, queries[i], &packed_ids);
      index.set_packed_scan_enabled(false);
      RangeQueryInto(index, queries[i], &raw_ids);
      index.set_packed_scan_enabled(true);
      std::sort(packed_ids.begin(), packed_ids.end());
      std::sort(raw_ids.begin(), raw_ids.end());
      CHECK(packed_ids == raw_ids);
    }
  });

  // Snapshot structure -> restore: packed leaves are re-frozen on load
  // (they are derived state, not serialized) and replaying queries cracks
  // nothing.
  std::string blob;
  quasii::ByteWriter blob_writer(&blob);
  CHECK(index.SerializeStructure(blob_writer));
  QuasiiIndex<3> restored(data);
  CHECK(restored.DeserializeStructure(blob));
  const auto rmem = restored.column_memory();
  CHECK_EQ(rmem.packed_leaves, mem.packed_leaves);
  CHECK_EQ(rmem.packed_rows, mem.packed_rows);
  CHECK_EQ(rmem.resident_bytes, mem.resident_bytes);
  restored.ResetStats();
  for (const Box3& q : queries) {
    std::vector<ObjectId> got, want;
    RangeQueryInto(restored, q, &got);
    RangeQueryInto(index, q, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    CHECK(got == want);
  }
  CHECK_EQ(restored.stats().cracks, 0u);
}

}  // namespace

int main() {
  RUN_TEST(TestTierControls);
  RUN_TEST(TestMaskLeGeMatchesScalar);
  RUN_TEST(TestMaskCountAndCompactMatchScalar);
  RUN_TEST(TestPackedColumnRoundTrip);
  RUN_TEST(TestMaskPackedMatchesFloatReference);
  RUN_TEST(TestStreamScanPackedVsRaw2D);
  RUN_TEST(TestStreamScanPackedVsRaw3D);
  RUN_TEST(TestStreamScanDuplicateHeavy);
  RUN_TEST(TestStreamScanAllDead);
  RUN_TEST(TestScanScratchShrinks);
  RUN_TEST(TestQuasiiPackedEndToEnd);
  std::printf("test_simd: all tests passed\n");
  return 0;
}
