// Query-engine suite: every roster index must execute the single-index
// query types (range with three predicates, point, count, kNN) through
// `Execute(Query, Sink)` and agree with a brute-force oracle computed
// directly from the dataset; sinks must respect the engine's contracts
// (count queries never see ids, stats stay monotone and bound the emitted
// results, the TopK heap breaks ties by id); malformed descriptions must
// fail at the query factories. (Joins and conjunctive plans have their own
// suite: test_join.cpp.)

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench.h"
#include "bench/workload.h"
#include "common/dataset.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/spatial_index.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "quasii/quasii_index.h"
#include "scan/scan_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box3;
using quasii::CountQuery;
using quasii::CountSink;
using quasii::Dataset3;
using quasii::KNearestQuery;
using quasii::MatchesPredicate;
using quasii::Neighbor;
using quasii::ObjectId;
using quasii::Point3;
using quasii::PointQuery;
using quasii::QuasiiIndex;
using quasii::Query3;
using quasii::QueryStats;
using quasii::QueryType;
using quasii::RangePredicate;
using quasii::RangeQuery;
using quasii::Rng;
using quasii::Sink;
using quasii::SpatialIndex;
using quasii::TopKSink;
using quasii::VectorSink;
using quasii::bench::MakeIndexRoster;

// ---------------------------------------------------------------------------
// Brute-force oracles, computed directly from the dataset (independent of
// every index, including Scan).

std::vector<ObjectId> BruteRange(const Dataset3& data, const Box3& q,
                                 RangePredicate pred) {
  std::vector<ObjectId> ids;
  if (q.IsEmpty()) return ids;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (MatchesPredicate(data[i], q, pred)) ids.push_back(i);
  }
  return ids;
}

std::vector<ObjectId> BrutePoint(const Dataset3& data, const Point3& pt) {
  std::vector<ObjectId> ids;
  for (ObjectId i = 0; i < data.size(); ++i) {
    if (data[i].Contains(pt)) ids.push_back(i);
  }
  return ids;
}

/// k nearest by squared MBB distance, ties broken by smaller id — exactly
/// the engine's (distance, id) order, so the comparison below is an exact
/// sequence match even with ties.
std::vector<ObjectId> BruteKnn(const Dataset3& data, const Point3& pt,
                               std::size_t k) {
  std::vector<Neighbor> all;
  all.reserve(data.size());
  for (ObjectId i = 0; i < data.size(); ++i) {
    all.push_back(Neighbor{i, data[i].MinDistSquaredTo(pt)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance_sq != b.distance_sq) return a.distance_sq < b.distance_sq;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  std::vector<ObjectId> ids;
  for (const Neighbor& nb : all) ids.push_back(nb.id);
  return ids;
}

// ---------------------------------------------------------------------------
// Execution helpers.

std::vector<ObjectId> Collect(SpatialIndex<3>* index, const Query3& q) {
  std::vector<ObjectId> ids;
  VectorSink sink(&ids);
  index->Execute(q, sink);
  return ids;
}

std::uint64_t Count(SpatialIndex<3>* index, const Query3& q) {
  CountSink sink;
  index->Execute(q, sink);
  return sink.count();
}

std::vector<ObjectId> Sorted(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// A sink that must never receive an id: fails the test on `Emit`/`EmitRun`.
/// Feeding count queries through it proves the count-only execution path
/// performs zero id emissions on every index.
class NoIdSink final : public Sink {
 public:
  void Emit(ObjectId) override {
    CHECK(false && "count-only query emitted an id");
  }
  void EmitRun(const ObjectId*, std::size_t) override {
    CHECK(false && "count-only query emitted an id run");
  }
  void AddMatches(std::uint64_t n) override { count_ += n; }
  std::uint64_t count() const { return count_; }
  void Reset() { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

Dataset3 UniformData(std::size_t n, std::uint64_t seed) {
  quasii::datagen::UniformDatasetParams p;
  p.count = n;
  p.seed = seed;
  return quasii::datagen::MakeUniformDataset(p);
}

std::vector<Box3> FootprintBoxes(const Box3& universe, int count,
                                 double selectivity, std::uint64_t seed) {
  quasii::datagen::UniformQueryParams qp;
  qp.count = count;
  qp.selectivity = selectivity;
  qp.seed = seed;
  return quasii::datagen::MakeUniformQueries(universe, qp);
}

// ---------------------------------------------------------------------------

/// All five query types (with all three range predicates) on every roster
/// index, interleaved per footprint box so incremental indexes crack while
/// switching types, validated against the brute-force oracles.
void TestAllTypesMatchBruteForceAcrossRoster() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 15000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  const auto boxes = FootprintBoxes(universe, 30, 1e-3, 101);

  auto roster = MakeIndexRoster(data, universe);
  for (auto& index : roster) index->Build();

  for (const Box3& b : boxes) {
    const Point3 centre = b.Center();
    const Box3 point_box(centre, centre);
    // Expected results, one brute-force pass each.
    const auto want_intersects =
        BruteRange(data, b, RangePredicate::kIntersects);
    const auto want_contains = BruteRange(data, b, RangePredicate::kContains);
    // A zero-extent kContains query — "all objects covering this point's
    // box" — keeps the containment predicate non-trivial even when query
    // boxes are larger than most objects.
    const auto want_contains_pt =
        BruteRange(data, point_box, RangePredicate::kContains);
    const auto want_within =
        BruteRange(data, b, RangePredicate::kContainedBy);
    const auto want_point = BrutePoint(data, centre);
    const auto want_knn = BruteKnn(data, centre, 7);

    // Point queries and zero-extent kContains agree by definition.
    CHECK(want_point == want_contains_pt);

    for (auto& index : roster) {
      const std::string name(index->name());
      CHECK(Sorted(Collect(index.get(), RangeQuery<3>(b))) ==
            want_intersects);
      CHECK(Sorted(Collect(index.get(),
                           RangeQuery<3>(b, RangePredicate::kContains))) ==
            want_contains);
      CHECK(Sorted(Collect(
                index.get(),
                RangeQuery<3>(point_box, RangePredicate::kContains))) ==
            want_contains_pt);
      CHECK(Sorted(Collect(index.get(),
                           RangeQuery<3>(b, RangePredicate::kContainedBy))) ==
            want_within);
      CHECK(Sorted(Collect(index.get(), PointQuery<3>(centre))) ==
            want_point);
      CHECK_EQ(Count(index.get(), CountQuery<3>(b)),
               static_cast<std::uint64_t>(want_intersects.size()));
      CHECK_EQ(Count(index.get(),
                     CountQuery<3>(b, RangePredicate::kContainedBy)),
               static_cast<std::uint64_t>(want_within.size()));
      // kNN: exact (distance, id)-ordered sequence, not just the same set.
      const auto got_knn = Collect(index.get(), KNearestQuery<3>(centre, 7));
      if (got_knn != want_knn) {
        std::fprintf(stderr, "%s kNN disagrees with brute force\n",
                     name.c_str());
        CHECK(got_knn == want_knn);
      }
    }
  }
}

/// kNN oracle checks (brute force vs every index): ties at equal distance
/// (duplicate boxes), k larger than the dataset, and query points far
/// outside the data region. (k == 0 is unrepresentable: the factory
/// rejects it — see TestFactoryValidation.)
void TestKnnOracle() {
  // A tie-heavy dataset: clusters of identical boxes plus random filler.
  Rng rng(7);
  Box3 universe;
  for (int d = 0; d < 3; ++d) {
    universe.lo[d] = 0;
    universe.hi[d] = 1000;
  }
  Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(3000, universe, 8.0f, &rng);
  for (int c = 0; c < 5; ++c) {
    Box3 b;
    for (int d = 0; d < 3; ++d) {
      const auto lo = static_cast<quasii::Scalar>(100 + 150 * c);
      b.lo[d] = lo;
      b.hi[d] = lo + 10;
    }
    for (int i = 0; i < 40; ++i) data.push_back(b);  // 40-way distance ties
  }

  auto roster = MakeIndexRoster(data, universe);
  for (auto& index : roster) index->Build();

  std::vector<Point3> probes;
  for (int i = 0; i < 12; ++i) {
    Point3 pt;
    for (int d = 0; d < 3; ++d) {
      pt[d] = rng.UniformScalar(universe.lo[d], universe.hi[d]);
    }
    probes.push_back(pt);
  }
  {
    // Dead-centre of a tie cluster and far outside the universe.
    Point3 pt;
    for (int d = 0; d < 3; ++d) pt[d] = 105;
    probes.push_back(pt);
    for (int d = 0; d < 3; ++d) pt[d] = -5000;
    probes.push_back(pt);
  }

  const std::size_t n = data.size();
  const std::size_t ks[] = {1, 3, 60, n, n + 17};
  for (const Point3& pt : probes) {
    for (const std::size_t k : ks) {
      const auto want = BruteKnn(data, pt, k);
      if (k >= n) CHECK_EQ(want.size(), n);
      for (auto& index : roster) {
        const auto got = Collect(index.get(), KNearestQuery<3>(pt, k));
        if (got != want) {
          std::fprintf(stderr, "%s kNN k=%zu disagrees (got %zu, want %zu)\n",
                       std::string(index->name()).c_str(), k, got.size(),
                       want.size());
          CHECK(got == want);
        }
      }
    }
  }
}

/// Count-only workloads drive reorganization without a single id emission:
/// the NoIdSink aborts on any `Emit`/`EmitRun`, and QUASII's crack counters
/// must advance — counting queries build the index exactly like
/// materializing ones (the acceptance criterion).
void TestCountOnlyWorkloadCracksWithoutIds() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 20000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  const auto boxes = FootprintBoxes(universe, 40, 1e-3, 211);

  // Roster-wide: no count path may ever touch an id.
  auto roster = MakeIndexRoster(data, universe);
  NoIdSink no_ids;
  for (auto& index : roster) {
    index->Build();
    for (const Box3& b : boxes) {
      no_ids.Reset();
      index->Execute(CountQuery<3>(b), no_ids);
      CHECK_EQ(no_ids.count(),
               BruteRange(data, b, RangePredicate::kIntersects).size());
    }
  }

  // QUASII specifically: a count-only workload must crack (the index
  // converges even though nothing is ever materialized).
  QuasiiIndex<3>::Params params;
  params.leaf_threshold = 256;
  QuasiiIndex<3> quasii_index(data, params);
  std::uint64_t last_cracks = 0;
  bool cracked = false;
  for (const Box3& b : boxes) {
    no_ids.Reset();
    quasii_index.Execute(CountQuery<3>(b), no_ids);
    CHECK_EQ(no_ids.count(),
             BruteRange(data, b, RangePredicate::kIntersects).size());
    cracked = cracked || quasii_index.stats().cracks > last_cracks;
    last_cracks = quasii_index.stats().cracks;
  }
  CHECK(cracked);
  CHECK_GT(quasii_index.stats().cracks, 0u);
  CHECK_GT(quasii_index.stats().objects_moved, 0u);
  // And the refined index answers repeat counts without further cracking.
  no_ids.Reset();
  quasii_index.Execute(CountQuery<3>(boxes.front()), no_ids);
  CHECK_EQ(quasii_index.stats().cracks, last_cracks);
}

/// Stats invariants over a mixed workload: every counter is monotone across
/// queries, and cumulative `objects_tested` bounds the cumulative results —
/// an index can never report more matches than candidates it looked at
/// (catches double-counting when sinks replace vectors).
void TestStatsInvariantsUnderMixedWorkload() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 12000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  const auto boxes = FootprintBoxes(universe, 60, 1e-3, 307);

  quasii::bench::WorkloadSpec spec;
  spec.mix = quasii::bench::DefaultMixedWorkloadMix();
  spec.knn_k = 9;
  spec.seed = 11;
  const auto queries = quasii::bench::MakeTypedWorkload<3>(boxes, spec);
  // The deterministic interleave must cover every single-index type at this
  // size. Joins are pair-producing op-stream operations, not typed queries,
  // so their slot stays empty here.
  std::array<std::uint64_t, quasii::bench::kNumQueryTypes> seen{};
  for (const Query3& q : queries) {
    ++seen[static_cast<std::size_t>(quasii::bench::TypeIndexOf(q))];
  }
  for (int t = 0; t < quasii::bench::kNumQueryTypes; ++t) {
    if (t == quasii::bench::kTypeJoin) {
      CHECK_EQ(seen[static_cast<std::size_t>(t)], 0u);
      continue;
    }
    CHECK_GT(seen[static_cast<std::size_t>(t)], 0u);
  }

  auto roster = MakeIndexRoster(data, universe);
  for (auto& index : roster) {
    index->Build();
    index->ResetStats();
    QueryStats prev = index->stats();
    std::uint64_t results_emitted = 0;
    for (const Query3& q : queries) {
      if (q.type() == QueryType::kCount) {
        results_emitted += Count(index.get(), q);
      } else {
        results_emitted += Collect(index.get(), q).size();
      }
      const QueryStats& now = index->stats();
      CHECK_GE(now.objects_tested, prev.objects_tested);
      CHECK_GE(now.partitions_visited, prev.partitions_visited);
      CHECK_GE(now.cracks, prev.cracks);
      CHECK_GE(now.objects_moved, prev.objects_moved);
      CHECK_GE(now.duplicates_removed, prev.duplicates_removed);
      CHECK_GE(now.intervals, prev.intervals);
      prev = now;
      CHECK_GE(now.objects_tested, results_emitted);
    }
    CHECK_GT(results_emitted, 0u);
  }
}

/// TopKSink unit behaviour: bounded size, (distance, id) tie-break,
/// replacement of the worst element, k == 0, and the pruning bound.
void TestTopKSink() {
  TopKSink top(3);
  CHECK_EQ(top.k(), 3u);
  CHECK(!top.full());
  CHECK(top.bound() == std::numeric_limits<double>::infinity());

  top.Offer(10, 5.0);
  top.Offer(11, 1.0);
  top.Offer(12, 3.0);
  CHECK(top.full());
  CHECK_EQ(top.bound(), 5.0);

  // Worse than the bound: rejected. Equal distance, larger id: rejected.
  top.Offer(13, 6.0);
  CHECK_EQ(top.bound(), 5.0);
  top.Offer(99, 5.0);
  CHECK_EQ(top.bound(), 5.0);
  // Equal distance, smaller id: replaces the worst.
  top.Offer(4, 5.0);
  auto sorted = top.TakeSorted();
  CHECK_EQ(sorted.size(), 3u);
  CHECK_EQ(sorted[0].id, 11u);
  CHECK_EQ(sorted[1].id, 12u);
  CHECK_EQ(sorted[2].id, 4u);

  // Tie ordering: ids ascending within one distance.
  TopKSink ties(4);
  ties.Offer(7, 2.0);
  ties.Offer(3, 2.0);
  ties.Offer(5, 2.0);
  ties.Offer(1, 2.0);
  ties.Offer(0, 2.0);  // evicts id 7 (same distance, largest id)
  sorted = ties.TakeSorted();
  CHECK_EQ(sorted.size(), 4u);
  CHECK_EQ(sorted[0].id, 0u);
  CHECK_EQ(sorted[1].id, 1u);
  CHECK_EQ(sorted[2].id, 3u);
  CHECK_EQ(sorted[3].id, 5u);

  TopKSink none(0);
  none.Offer(1, 0.0);
  CHECK_EQ(none.TakeSorted().size(), 0u);
}

/// Malformed query descriptions fail at construction, not inside dispatch:
/// the `Try*` factories return nullopt on the same inputs the `Make*`
/// wrappers abort on, and well-formed inputs produce fully typed queries.
void TestFactoryValidation() {
  const Point3 pt{};
  CHECK(!Query3::TryKNearest(pt, 0).has_value());
  const auto knn = Query3::TryKNearest(pt, 4);
  CHECK(knn.has_value());
  CHECK(knn->type() == QueryType::kKNearest);
  CHECK_EQ(knn->k(), 4u);

  CHECK(!Query3::TryJoin(static_cast<SpatialIndex<3>*>(nullptr)).has_value());
  CHECK(!Query3::TryJoin(static_cast<const std::vector<Box3>*>(nullptr))
             .has_value());
  const Dataset3 data = UniformData(64, 5);
  quasii::ScanIndex<3> scan(data);
  const auto join = Query3::TryJoin(&scan);
  CHECK(join.has_value());
  CHECK(join->type() == QueryType::kJoin);
  CHECK(join->join_other() == &scan);
  const std::vector<Box3> stream(3);
  const auto stream_join = Query3::TryJoin(&stream);
  CHECK(stream_join.has_value());
  CHECK(stream_join->join_stream() == &stream);

  CHECK(!Query3::TryConjunction({}).has_value());
  std::vector<quasii::ConjunctiveTerm<3>> terms(2);
  const auto conj = Query3::TryConjunction(terms);
  CHECK(conj.has_value());
  CHECK(conj->type() == QueryType::kConjunction);
  CHECK_EQ(conj->terms().size(), 2u);

  // A default-constructed query is the valid degenerate range that matches
  // nothing (op streams default-construct before being overwritten).
  Query3 q;
  CHECK(q.type() == QueryType::kRange);
  CHECK(q.box().IsEmpty());
}

}  // namespace

int main() {
  RUN_TEST(TestTopKSink);
  RUN_TEST(TestFactoryValidation);
  RUN_TEST(TestAllTypesMatchBruteForceAcrossRoster);
  RUN_TEST(TestKnnOracle);
  RUN_TEST(TestCountOnlyWorkloadCracksWithoutIds);
  RUN_TEST(TestStatsInvariantsUnderMixedWorkload);
  return 0;
}
