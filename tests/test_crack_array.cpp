// CrackArray tests: the structure-of-arrays cracking core must keep its id,
// key, and box columns consistent under arbitrary crack / median-split
// sequences, handle duplicate-key-heavy data via the frozen path, and carry
// the SoA QuasiiIndex to Scan-identical results on every dataset family.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/crack_array.h"
#include "common/dataset.h"
#include "common/rng.h"
#include "datagen/neuro.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "quasii/quasii_index.h"
#include "scan/scan_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box3;
using quasii::CrackArray;
using quasii::CrackPartition;
using quasii::Dataset3;
using quasii::ObjectId;
using quasii::QuasiiIndex;
using quasii::Rng;
using quasii::Scalar;
using quasii::ScanIndex;

Box3 TestUniverse() {
  Box3 u;
  for (int d = 0; d < 3; ++d) {
    u.lo[d] = 0;
    u.hi[d] = 1000;
  }
  return u;
}

/// Every column must describe the same permutation of the original dataset:
/// ids are a permutation, and row i's keys/box are exactly the source
/// object's centre keys/box.
void CheckColumnsConsistent(const CrackArray<3>& a, const Dataset3& data) {
  CHECK_EQ(a.size(), data.size());
  std::vector<bool> seen(data.size(), false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const ObjectId id = a.id(i);
    CHECK_LT(id, data.size());
    CHECK(!seen[id]);
    seen[id] = true;
    CHECK(a.box(i) == data[id]);
    for (int d = 0; d < 3; ++d) {
      CHECK_EQ(a.key(d, i), CrackArray<3>::CenterKey(data[id], d));
    }
  }
}

void TestPermutationIntegrityUnderRandomOps() {
  Rng rng(71);
  const Box3 universe = TestUniverse();
  const Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(8000, universe, 9.0f, &rng);
  CrackArray<3> a(data);
  CheckColumnsConsistent(a, data);

  // Arbitrary interleaved crack / median-split sequence over random ranges.
  for (int step = 0; step < 200; ++step) {
    const std::size_t x =
        static_cast<std::size_t>(rng.UniformInt(0, 7999));
    const std::size_t y =
        static_cast<std::size_t>(rng.UniformInt(0, 7999));
    const std::size_t begin = std::min(x, y);
    const std::size_t end = std::max(x, y) + 1;
    const int d = static_cast<int>(rng.UniformInt(0, 2));
    if (step % 2 == 0) {
      const Scalar v = rng.UniformScalar(universe.lo[d], universe.hi[d]);
      const std::size_t pos = a.CrackOnAxis(begin, end, d, v);
      CHECK_GE(pos, begin);
      CHECK_LE(pos, end);
      for (std::size_t i = begin; i < pos; ++i) CHECK_LT(a.key(d, i), v);
      for (std::size_t i = pos; i < end; ++i) CHECK_GE(a.key(d, i), v);
    } else {
      const auto split = a.MedianSplit(begin, end, d);
      CHECK_GE(split.pos, begin);
      CHECK_LE(split.pos, end);
      CHECK(!split.frozen || split.pos == end);
      for (std::size_t i = begin; i < split.pos; ++i) {
        CHECK_LT(a.key(d, i), split.bound);
      }
      for (std::size_t i = split.pos; i < end; ++i) {
        CHECK_GE(a.key(d, i), split.bound);
      }
      if (!split.frozen) {
        // A successful split must make progress on both sides.
        CHECK_GT(split.pos, begin);
        CHECK_LT(split.pos, end);
      }
    }
    CheckColumnsConsistent(a, data);
  }
}

void TestMedianSplitBalanceAndBounds() {
  Rng rng(5);
  const Box3 universe = TestUniverse();
  const Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(4096, universe, 2.0f, &rng);
  CrackArray<3> a(data);
  const auto split = a.MedianSplit(0, a.size(), 1);
  CHECK(!split.frozen);
  // With (near-)distinct keys the split lands near the middle.
  CHECK_GT(split.pos, a.size() / 4);
  CHECK_LT(split.pos, 3 * a.size() / 4);
  CheckColumnsConsistent(a, data);
}

void TestDuplicateHeavyFrozenPath() {
  // 90% of the dataset is one identical box: median splits along any axis
  // keep running into the duplicate run at scale.
  Rng rng(23);
  const Box3 universe = TestUniverse();
  Dataset3 data;
  Box3 dup;
  for (int d = 0; d < 3; ++d) {
    dup.lo[d] = 500;
    dup.hi[d] = 502;
  }
  for (int i = 0; i < 18000; ++i) data.push_back(dup);
  const Dataset3 extra =
      quasii::datagen::MakeRandomBoxes<3>(2000, universe, 4.0f, &rng);
  data.insert(data.end(), extra.begin(), extra.end());

  CrackArray<3> a(data);
  // Repeated median splits must terminate at the frozen duplicate run, with
  // columns intact throughout.
  std::size_t begin = 0;
  std::size_t end = a.size();
  bool froze = false;
  for (int i = 0; i < 64 && !froze; ++i) {
    const auto split = a.MedianSplit(begin, end, 0);
    if (split.frozen) {
      froze = true;
      break;
    }
    // Keep descending into the half that contains the duplicate run.
    const Scalar dup_key = CrackArray<3>::CenterKey(dup, 0);
    if (dup_key < split.bound) {
      end = split.pos;
    } else {
      begin = split.pos;
    }
    CHECK_LT(begin, end);
  }
  CHECK(froze);
  CheckColumnsConsistent(a, data);

  // The full QUASII stack over the same data: duplicate-heavy slices freeze
  // instead of splitting forever, and results still match Scan.
  QuasiiIndex<3>::Params params;
  params.leaf_threshold = 128;
  QuasiiIndex<3> index(data, params);
  ScanIndex<3> scan(data);
  quasii::datagen::UniformQueryParams qp;
  qp.count = 40;
  qp.selectivity = 1e-2;
  qp.seed = 6;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);
  std::vector<ObjectId> got, want;
  for (const Box3& q : queries) {
    got.clear();
    want.clear();
    RangeQueryInto(index, q, &got);
    RangeQueryInto(scan, q, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    CHECK(got == want);
  }
}

void TestCrackPartitionPrimitive() {
  // The shared primitive on a plain int column with a companion payload.
  std::vector<int> keys = {5, 1, 9, 3, 7, 3, 0, 8, 2, 6};
  std::vector<int> payload = keys;  // co-moves; must stay equal to keys
  const std::size_t pos = quasii::CrackPartition(
      keys.data(), 0, keys.size(), [](int k) { return k < 5; },
      [&](std::size_t i, std::size_t j) {
        std::swap(keys[i], keys[j]);
        std::swap(payload[i], payload[j]);
      });
  CHECK_EQ(pos, 5u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    CHECK_EQ(keys[i], payload[i]);
    if (i < pos) {
      CHECK_LT(keys[i], 5);
    } else {
      CHECK_GE(keys[i], 5);
    }
  }

  // Degenerate ranges: empty, all-pass, all-fail.
  std::vector<int> one = {4};
  auto noswap = [](std::size_t, std::size_t) { CHECK(false); };
  CHECK_EQ(quasii::CrackPartition(one.data(), 0, 0,
                                  [](int) { return true; }, noswap),
           0u);
  CHECK_EQ(quasii::CrackPartition(one.data(), 0, 1,
                                  [](int k) { return k < 10; }, noswap),
           1u);
  CHECK_EQ(quasii::CrackPartition(one.data(), 0, 1,
                                  [](int k) { return k < 0; }, noswap),
           0u);
}

/// The SoA QuasiiIndex must agree with Scan on every dataset family the
/// equivalence suite exercises: uniform, neuro, 2d random boxes, and the
/// duplicate-heavy degenerate case (covered above).
template <int D>
void CheckQuasiiAgainstScan(const quasii::Dataset<D>& data,
                            const quasii::Box<D>& universe,
                            std::uint64_t seed) {
  typename QuasiiIndex<D>::Params params;
  params.leaf_threshold = 256;
  QuasiiIndex<D> index(data, params);
  ScanIndex<D> scan(data);
  quasii::datagen::UniformQueryParams qp;
  qp.count = 40;
  qp.selectivity = 1e-3;
  qp.seed = seed;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);
  std::vector<ObjectId> got, want;
  for (const auto& q : queries) {
    got.clear();
    want.clear();
    RangeQueryInto(index, q, &got);
    RangeQueryInto(scan, q, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    CHECK(got == want);
  }
}

void TestSoaQuasiiEquivalence() {
  {
    quasii::datagen::UniformDatasetParams p;
    p.count = 15000;
    CheckQuasiiAgainstScan<3>(quasii::datagen::MakeUniformDataset(p),
                              quasii::datagen::UniformUniverse(p), 11);
  }
  {
    quasii::datagen::NeuroDatasetParams p;
    p.count = 15000;
    CheckQuasiiAgainstScan<3>(quasii::datagen::MakeNeuroDataset(p),
                              quasii::datagen::NeuroUniverse(p), 12);
  }
  {
    Rng rng(13);
    quasii::Box2 universe;
    for (int d = 0; d < 2; ++d) {
      universe.lo[d] = -250;
      universe.hi[d] = 250;
    }
    CheckQuasiiAgainstScan<2>(
        quasii::datagen::MakeRandomBoxes<2>(12000, universe, 6.0f, &rng),
        universe, 14);
  }
}

/// Append / EraseId / pending-tail bookkeeping, and the id → row map's
/// integrity under cracks that shuffle live and dead rows together.
void TestAppendEraseAndPendingTail() {
  Rng rng(31);
  const Box3 universe = TestUniverse();
  const Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(2000, universe, 9.0f, &rng);
  CrackArray<3> a(data);
  CHECK_EQ(a.pending_count(), 0u);
  CHECK_EQ(a.tombstones(), 0u);

  // Appends land behind the pending marker; sealing absorbs them.
  Dataset3 extra =
      quasii::datagen::MakeRandomBoxes<3>(500, universe, 9.0f, &rng);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    a.Append(static_cast<ObjectId>(5000 + i), extra[i]);
  }
  CHECK_EQ(a.pending_count(), 500u);
  CHECK_EQ(a.size(), 2500u);
  CHECK(a.box(2000) == extra[0]);
  a.SealPending();
  CHECK_EQ(a.pending_count(), 0u);

  // Erases tombstone in place, O(1) by id, and reject dead/unknown ids.
  CHECK(a.EraseId(7));
  CHECK(!a.EraseId(7));
  CHECK(a.EraseId(5003));
  CHECK(!a.EraseId(99999));
  CHECK_EQ(a.tombstones(), 2u);
  CHECK_EQ(a.size(), 2500u);  // rows keep their positions

  // Cracks co-permute the live column and keep the id map accurate: every
  // live id must still be erasable afterwards, dead ones must stay dead.
  for (int step = 0; step < 50; ++step) {
    const int d = static_cast<int>(rng.UniformInt(0, 2));
    const Scalar v = rng.UniformScalar(universe.lo[d], universe.hi[d]);
    a.CrackOnAxis(0, a.size(), d, v);
  }
  CHECK(!a.EraseId(7));
  CHECK(a.EraseId(8));
  CHECK(a.EraseId(5004));
  CHECK_EQ(a.tombstones(), 4u);

  // Re-append an erased id: a fresh live row; the corpse stays dead even
  // when later cracks move it around.
  a.Append(7, extra[1]);
  for (int step = 0; step < 20; ++step) {
    const int d = static_cast<int>(rng.UniformInt(0, 2));
    const Scalar v = rng.UniformScalar(universe.lo[d], universe.hi[d]);
    a.CrackOnAxis(0, a.pending_begin(), d, v);
  }
  CHECK(a.EraseId(7));  // erases the fresh row, not the corpse
  CHECK(!a.EraseId(7));
}

/// StreamScan must skip tombstones on every path: masked scans, covered
/// dimensions, and count-only execution.
void TestStreamScanSkipsTombstones() {
  Rng rng(37);
  const Box3 universe = TestUniverse();
  const Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(4000, universe, 9.0f, &rng);
  CrackArray<3> a(data);

  const Box3 q = universe;  // full coverage: every live row matches
  const auto scan_ids = [&](unsigned covered) {
    std::vector<ObjectId> ids;
    quasii::VectorSink sink(&ids);
    quasii::MatchEmitter emit(false, &sink);
    a.StreamScan(0, a.size(), q, quasii::RangePredicate::kIntersects,
                 covered, &emit);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const auto scan_count = [&](unsigned covered) {
    quasii::CountSink sink;
    quasii::MatchEmitter emit(true, &sink);
    a.StreamScan(0, a.size(), q, quasii::RangePredicate::kIntersects,
                 covered, &emit);
    emit.Flush();
    return sink.count();
  };

  CHECK_EQ(scan_ids(0).size(), 4000u);
  CHECK_EQ(scan_count(7u), 4000u);

  for (ObjectId id = 100; id < 150; ++id) CHECK(a.EraseId(id));
  const std::vector<ObjectId> ids = scan_ids(0);
  CHECK_EQ(ids.size(), 3950u);
  for (const ObjectId id : ids) {
    CHECK(id < 100 || id >= 150);
  }
  // The fully-covered bulk path must also honor tombstones...
  CHECK_EQ(scan_ids(7u).size(), 3950u);
  // ...as must count-only execution, which never reads the id column.
  CHECK_EQ(scan_count(7u), 3950u);

  // PartitionLiveFirst sweeps the dead rows to the back of the range, and
  // scanning just the live prefix afterwards yields the same result set.
  const std::size_t live_end = a.PartitionLiveFirst(0, a.size());
  CHECK_EQ(live_end, 3950u);
  for (std::size_t i = 0; i < live_end; ++i) CHECK(a.live(i));
  for (std::size_t i = live_end; i < a.size(); ++i) CHECK(!a.live(i));
  std::vector<ObjectId> prefix_ids;
  quasii::VectorSink prefix_sink(&prefix_ids);
  quasii::MatchEmitter emit(false, &prefix_sink);
  a.StreamScan(0, live_end, q, quasii::RangePredicate::kIntersects, 0, &emit);
  std::sort(prefix_ids.begin(), prefix_ids.end());
  CHECK(prefix_ids == ids);
}

}  // namespace

int main() {
  RUN_TEST(TestCrackPartitionPrimitive);
  RUN_TEST(TestPermutationIntegrityUnderRandomOps);
  RUN_TEST(TestMedianSplitBalanceAndBounds);
  RUN_TEST(TestDuplicateHeavyFrozenPath);
  RUN_TEST(TestSoaQuasiiEquivalence);
  RUN_TEST(TestAppendEraseAndPendingTail);
  RUN_TEST(TestStreamScanSkipsTombstones);
  return 0;
}
