// Dynamic-data equivalence suite: interleaved insert/erase/query sequences
// over every roster index, checked op-by-op against a brute-force mutable
// oracle — including erase-of-never-inserted, reinsert-same-id, and the
// mutation acceptance pattern itself. Plus the QUASII maintenance
// invariants: pending tails drain to zero after a query, tombstones never
// surface in results, compaction reclaims dead rows, and the per-level
// thresholds track the live population.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/object_store.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "grid/grid_index.h"
#include "mosaic/mosaic_index.h"
#include "quasii/quasii_index.h"
#include "rtree/rtree_index.h"
#include "scan/scan_index.h"
#include "sfc/sfc_index.h"
#include "sfc/sfcracker_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box;
using quasii::Box3;
using quasii::CountQuery;
using quasii::CountSink;
using quasii::Dataset;
using quasii::KNearestQuery;
using quasii::PointQuery;
using quasii::RangeQuery;
using quasii::Dataset3;
using quasii::GridAssignment;
using quasii::GridIndex;
using quasii::MatchesPredicate;
using quasii::MosaicIndex;
using quasii::ObjectId;
using quasii::Point;
using quasii::QuasiiIndex;
using quasii::Query;
using quasii::RangePredicate;
using quasii::Rng;
using quasii::RTreeIndex;
using quasii::Scalar;
using quasii::ScanIndex;
using quasii::SfcIndex;
using quasii::SfcQueryStrategy;
using quasii::SfcrackerIndex;
using quasii::SpatialIndex;
using quasii::TopKSink;
using quasii::VectorSink;

/// Brute-force mutable reference: a sorted id → box map with the store's
/// exact mutation semantics.
template <int D>
class Oracle {
 public:
  explicit Oracle(const Dataset<D>& data) {
    for (ObjectId i = 0; i < data.size(); ++i) objects_[i] = data[i];
  }

  bool Insert(ObjectId id, const Box<D>& box) {
    if (box.IsEmpty()) return false;
    return objects_.emplace(id, box).second;
  }
  bool Erase(ObjectId id) { return objects_.erase(id) > 0; }
  std::size_t size() const { return objects_.size(); }

  std::vector<ObjectId> Range(const Box<D>& q, RangePredicate pred) const {
    std::vector<ObjectId> out;
    if (q.IsEmpty()) return out;
    for (const auto& [id, box] : objects_) {
      if (MatchesPredicate(box, q, pred)) out.push_back(id);
    }
    return out;
  }

  std::uint64_t Count(const Box<D>& q, RangePredicate pred) const {
    return Range(q, pred).size();
  }

  std::vector<ObjectId> KNearest(const Point<D>& pt, std::size_t k) const {
    TopKSink topk(k);
    for (const auto& [id, box] : objects_) {
      topk.Offer(id, box.MinDistSquaredTo(pt));
    }
    std::vector<ObjectId> out;
    for (const auto& nb : topk.TakeSorted()) out.push_back(nb.id);
    return out;
  }

 private:
  std::map<ObjectId, Box<D>> objects_;
};

/// Every roster index class, in its equivalence-suite configuration (small
/// thresholds so structures actually refine at test sizes).
template <int D>
std::vector<std::unique_ptr<SpatialIndex<D>>> MakeRoster(
    const Dataset<D>& data, const Box<D>& universe) {
  std::vector<std::unique_ptr<SpatialIndex<D>>> v;
  v.push_back(std::make_unique<ScanIndex<D>>(data));
  v.push_back(std::make_unique<SfcIndex<D>>(data, universe));
  {
    typename SfcIndex<D>::Params p;
    p.strategy = SfcQueryStrategy::kBigMinScan;
    v.push_back(std::make_unique<SfcIndex<D>>(data, universe, p));
  }
  v.push_back(std::make_unique<SfcrackerIndex<D>>(data, universe));
  {
    typename GridIndex<D>::Params p;
    p.partitions_per_dim = 20;
    p.assignment = GridAssignment::kQueryExtension;
    v.push_back(std::make_unique<GridIndex<D>>(data, universe, p));
  }
  {
    typename GridIndex<D>::Params p;
    p.partitions_per_dim = 20;
    p.assignment = GridAssignment::kReplication;
    v.push_back(std::make_unique<GridIndex<D>>(data, universe, p));
  }
  {
    typename MosaicIndex<D>::Params p;
    p.leaf_capacity = 128;
    v.push_back(std::make_unique<MosaicIndex<D>>(data, universe, p));
  }
  v.push_back(std::make_unique<RTreeIndex<D>>(data));
  {
    typename QuasiiIndex<D>::Params p;
    p.leaf_threshold = 128;
    v.push_back(std::make_unique<QuasiiIndex<D>>(data, p));
  }
  return v;
}

template <int D>
Box<D> RandomBox(Rng* rng, const Box<D>& universe, double max_extent_frac) {
  Box<D> b;
  for (int d = 0; d < D; ++d) {
    const double lo = static_cast<double>(universe.lo[d]);
    const double hi = static_cast<double>(universe.hi[d]);
    const double centre = rng->Uniform(lo, hi);
    const double half = (hi - lo) * rng->Uniform(0, max_extent_frac) / 2;
    b.lo[d] = static_cast<Scalar>(centre - half);
    b.hi[d] = static_cast<Scalar>(centre + half);
  }
  return b;
}

template <int D>
Dataset<D> RandomDataset(Rng* rng, const Box<D>& universe, std::size_t n) {
  Dataset<D> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back(RandomBox(rng, universe, 0.03));
  }
  return data;
}

template <int D>
std::vector<ObjectId> RunRange(SpatialIndex<D>* index, const Box<D>& q,
                               RangePredicate pred) {
  std::vector<ObjectId> out;
  VectorSink sink(&out);
  index->Execute(RangeQuery<D>(q, pred), sink);
  std::sort(out.begin(), out.end());
  return out;
}

/// The core driver: a deterministic interleaved op script applied in
/// lockstep to the oracle and the whole roster, comparing acceptance of
/// every mutation and the exact result of every query.
template <int D>
void CheckInterleavedOpsAgainstOracle(std::uint64_t seed) {
  Box<D> universe;
  for (int d = 0; d < D; ++d) {
    universe.lo[d] = 0;
    universe.hi[d] = 100;
  }
  Rng rng(seed);
  const Dataset<D> data = RandomDataset<D>(&rng, universe, 1500);
  Oracle<D> oracle(data);
  auto roster = MakeRoster<D>(data, universe);
  for (auto& index : roster) index->Build();

  std::vector<ObjectId> live(data.size());
  for (ObjectId i = 0; i < data.size(); ++i) live[i] = i;
  ObjectId next_id = static_cast<ObjectId>(data.size());
  std::vector<ObjectId> got;
  VectorSink got_sink(&got);
  CountSink count_sink;

  for (int step = 0; step < 500; ++step) {
    const double u = rng.Uniform(0, 1);
    if (u < 0.18) {  // insert a fresh object
      const ObjectId id = next_id++;
      const Box<D> box = RandomBox(&rng, universe, 0.05);
      CHECK(oracle.Insert(id, box));
      for (auto& index : roster) CHECK(index->Insert(id, box));
      live.push_back(id);
    } else if (u < 0.30 && !live.empty()) {  // erase a live object
      const std::size_t victim = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(live.size()) - 1));
      const ObjectId id = live[victim];
      live[victim] = live.back();
      live.pop_back();
      CHECK(oracle.Erase(id));
      for (auto& index : roster) CHECK(index->Erase(id));
    } else if (u < 0.34) {  // erase of a never-inserted id: rejected, no-op
      const ObjectId id = next_id + 1000000;
      CHECK(!oracle.Erase(id));
      for (auto& index : roster) CHECK(!index->Erase(id));
    } else if (u < 0.40 && !live.empty()) {  // reinsert an erased id
      const std::size_t victim = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(live.size()) - 1));
      const ObjectId id = live[victim];
      const Box<D> box = RandomBox(&rng, universe, 0.05);
      CHECK(oracle.Erase(id));
      for (auto& index : roster) CHECK(index->Erase(id));
      CHECK(oracle.Insert(id, box));
      for (auto& index : roster) CHECK(index->Insert(id, box));
    } else if (u < 0.70) {  // range query, rotating predicate
      const Box<D> q = RandomBox(&rng, universe, 0.3);
      const RangePredicate pred =
          step % 3 == 0 ? RangePredicate::kIntersects
                        : (step % 3 == 1 ? RangePredicate::kContains
                                         : RangePredicate::kContainedBy);
      const std::vector<ObjectId> want = oracle.Range(q, pred);
      for (auto& index : roster) {
        const std::vector<ObjectId> ids = RunRange(index.get(), q, pred);
        if (ids != want) {
          std::fprintf(stderr, "[step %d] %s range disagrees (%zu vs %zu)\n",
                       step, std::string(index->name()).c_str(), ids.size(),
                       want.size());
          CHECK(ids == want);
        }
      }
    } else if (u < 0.80) {  // point query
      const Point<D> pt = RandomBox(&rng, universe, 0).Center();
      const std::vector<ObjectId> want =
          oracle.Range(Box<D>(pt, pt), RangePredicate::kIntersects);
      for (auto& index : roster) {
        got.clear();
        index->Execute(PointQuery<D>(pt), got_sink);
        std::sort(got.begin(), got.end());
        CHECK(got == want);
      }
    } else if (u < 0.90) {  // count query
      const Box<D> q = RandomBox(&rng, universe, 0.3);
      const std::uint64_t want = oracle.Count(q, RangePredicate::kIntersects);
      for (auto& index : roster) {
        count_sink.Reset();
        index->Execute(CountQuery<D>(q), count_sink);
        CHECK_EQ(count_sink.count(), want);
      }
    } else {  // kNN query (exact order: ascending (distance, id))
      const Point<D> pt = RandomBox(&rng, universe, 0).Center();
      const std::size_t k =
          static_cast<std::size_t>(rng.UniformInt(1, 12));
      const std::vector<ObjectId> want = oracle.KNearest(pt, k);
      for (auto& index : roster) {
        got.clear();
        index->Execute(KNearestQuery<D>(pt, k), got_sink);
        CHECK(got == want);
      }
    }
  }
  // Final sanity: population agreed on throughout, and every index passes
  // its structural self-check (the same validator recovery runs).
  for (auto& index : roster) {
    CHECK_EQ(index->store().live_count(), oracle.size());
    std::string why;
    if (!index->CheckInvariants(&why)) {
      std::fprintf(stderr, "%s CheckInvariants: %s\n",
                   std::string(index->name()).c_str(), why.c_str());
      CHECK(false);
    }
  }
}

void TestInterleavedOps3D() { CheckInterleavedOpsAgainstOracle<3>(7); }
void TestInterleavedOps2D() { CheckInterleavedOpsAgainstOracle<2>(11); }

/// Mutation semantics shared by the whole roster (spot-checked through the
/// simplest index; the semantics live in the base-class store).
void TestMutationContract() {
  Dataset3 data;
  Box3 b;
  for (int d = 0; d < 3; ++d) {
    b.lo[d] = 0;
    b.hi[d] = 1;
  }
  data.push_back(b);
  ScanIndex<3> index(data);

  CHECK(!index.Insert(0, b));     // id 0 is live (initial dataset)
  CHECK(!index.Erase(1));         // never inserted
  CHECK(index.Insert(7, b));      // gap ids allowed
  CHECK(!index.Insert(7, b));     // now live
  CHECK(!index.Erase(3));         // the gap slots are not live
  CHECK(index.Erase(0));
  CHECK(!index.Erase(0));         // already erased
  CHECK(index.Insert(0, b));      // reinsert-after-erase
  CHECK_EQ(index.store().live_count(), 2u);

  Box3 empty;  // default box is empty (lo > hi)
  CHECK(!index.Insert(42, empty));
  CHECK(!index.store().alive(42));

  // The construction dataset is copy-on-write: mutations never touch it.
  CHECK_EQ(data.size(), 1u);
  CHECK(data[0] == b);
}

/// The cached live MBB (the kNN termination bound) under mutation: erasing
/// a boundary-touching object must shrink it to the remaining population,
/// and a subsequent insert must re-expand it — in 2D and 3D.
template <int D>
void CheckObjectStoreBoundsMaintenance() {
  // A tight cluster in [10, 20]^D plus one extremal outlier at [90, 95]^D.
  quasii::Dataset<D> data;
  Rng rng(71);
  for (int i = 0; i < 20; ++i) {
    Box<D> b;
    for (int d = 0; d < D; ++d) {
      const Scalar lo = static_cast<Scalar>(rng.Uniform(10, 19));
      b.lo[d] = lo;
      b.hi[d] = lo + 1;
    }
    data.push_back(b);
  }
  Box<D> outlier;
  for (int d = 0; d < D; ++d) {
    outlier.lo[d] = 90;
    outlier.hi[d] = 95;
  }
  data.push_back(outlier);
  const ObjectId outlier_id = static_cast<ObjectId>(data.size() - 1);

  quasii::ObjectStore<D> store(data);
  for (int d = 0; d < D; ++d) {
    CHECK_EQ(store.bounds().hi[d], outlier.hi[d]);
    CHECK_LE(store.bounds().lo[d], 19);
  }

  // Erasing the extremal object shrinks the bounds to the cluster.
  CHECK(store.Erase(outlier_id));
  Box<D> cluster = Box<D>::Empty();
  for (ObjectId id = 0; id < outlier_id; ++id) {
    cluster.ExpandToInclude(data[id]);
  }
  CHECK(store.bounds() == cluster);

  // An interior erase leaves them untouched.
  CHECK(store.Erase(0));
  Box<D> without_first = Box<D>::Empty();
  store.ForEachLive([&without_first](ObjectId, const Box<D>& b) {
    without_first.ExpandToInclude(b);
  });
  CHECK(store.bounds() == without_first);

  // A re-insert past the old boundary re-expands them on the spot.
  Box<D> far_box;
  for (int d = 0; d < D; ++d) {
    far_box.lo[d] = 97;
    far_box.hi[d] = 99;
  }
  CHECK(store.Insert(outlier_id, far_box));
  for (int d = 0; d < D; ++d) {
    CHECK_EQ(store.bounds().hi[d], far_box.hi[d]);
  }

  // Erasing down to one object pins the bounds to exactly its box; erasing
  // the last one empties them.
  for (ObjectId id = 1; id < outlier_id; ++id) CHECK(store.Erase(id));
  CHECK(store.bounds() == far_box);
  CHECK(store.Erase(outlier_id));
  CHECK_EQ(store.live_count(), 0u);
  CHECK(store.bounds().IsEmpty());
}

void TestObjectStoreBoundsMaintenance() {
  CheckObjectStoreBoundsMaintenance<2>();
  CheckObjectStoreBoundsMaintenance<3>();
}

QuasiiIndex<3>::Params SmallQuasiiParams() {
  QuasiiIndex<3>::Params p;
  p.leaf_threshold = 64;
  return p;
}

Box3 UnitCube(Scalar lo, Scalar hi) {
  Box3 b;
  for (int d = 0; d < 3; ++d) {
    b.lo[d] = lo;
    b.hi[d] = hi;
  }
  return b;
}

/// Pending tails drain to zero at the next query, and the drained objects
/// are immediately visible.
void TestQuasiiPendingDrains() {
  Box3 universe = UnitCube(0, 100);
  Rng rng(3);
  const Dataset3 data = RandomDataset<3>(&rng, universe, 800);
  QuasiiIndex<3> index(data, SmallQuasiiParams());

  std::vector<ObjectId> got;
  RangeQueryInto(index, UnitCube(10, 20), &got);
  CHECK(index.initialized());
  CHECK_EQ(index.array().pending_count(), 0u);

  for (int i = 0; i < 200; ++i) {
    CHECK(index.Insert(static_cast<ObjectId>(1000 + i),
                       RandomBox<3>(&rng, universe, 0.05)));
  }
  CHECK_EQ(index.array().pending_count(), 200u);

  got.clear();
  RangeQueryInto(index, universe, &got);
  CHECK_EQ(index.array().pending_count(), 0u);
  CHECK_EQ(got.size(), 1000u);
}

/// Tombstones never surface in results; small tombstone counts are swept
/// aside by refinement, large ones trigger a full compaction.
void TestQuasiiTombstonesAndCompaction() {
  Box3 universe = UnitCube(0, 100);
  Rng rng(4);
  const Dataset3 data = RandomDataset<3>(&rng, universe, 600);
  QuasiiIndex<3> index(data, SmallQuasiiParams());

  std::vector<ObjectId> got;
  RangeQueryInto(index, UnitCube(0, 50), &got);

  // Below the compaction floor: rows stay tombstoned but never surface.
  for (ObjectId id = 0; id < 40; ++id) CHECK(index.Erase(id));
  CHECK_EQ(index.array().tombstones(), 40u);
  got.clear();
  RangeQueryInto(index, universe, &got);
  CHECK_EQ(got.size(), 560u);
  for (const ObjectId id : got) CHECK_GE(id, 40u);
  CHECK_EQ(index.array().tombstones(), 40u);

  // Past a quarter dead, the next query rebuilds from the live set.
  for (ObjectId id = 40; id < 200; ++id) CHECK(index.Erase(id));
  got.clear();
  RangeQueryInto(index, universe, &got);
  CHECK_EQ(index.array().tombstones(), 0u);
  CHECK_EQ(index.array().size(), 400u);
  CHECK_EQ(got.size(), 400u);
}

/// Reinsert-same-id must not resurrect the stale row: the id appears
/// exactly once, at its new location.
void TestQuasiiReinsertNoDuplicates() {
  Box3 universe = UnitCube(0, 100);
  Rng rng(5);
  const Dataset3 data = RandomDataset<3>(&rng, universe, 500);
  QuasiiIndex<3> index(data, SmallQuasiiParams());

  std::vector<ObjectId> got;
  RangeQueryInto(index, universe, &got);

  const ObjectId id = 123;
  CHECK(index.Erase(id));
  CHECK(index.Insert(id, UnitCube(90, 91)));
  got.clear();
  RangeQueryInto(index, universe, &got);
  CHECK_EQ(std::count(got.begin(), got.end(), id), 1);
  got.clear();
  RangeQueryInto(index, UnitCube(89, 92), &got);
  CHECK_EQ(std::count(got.begin(), got.end(), id), 1);
}

/// The per-level thresholds re-derive from the live count as it grows and
/// shrinks (the geometric progression follows the population).
void TestQuasiiThresholdMaintenance() {
  Box3 universe = UnitCube(0, 100);
  Rng rng(6);
  const Dataset3 data = RandomDataset<3>(&rng, universe, 1000);
  QuasiiIndex<3> index(data, SmallQuasiiParams());

  std::vector<ObjectId> got;
  RangeQueryInto(index, UnitCube(10, 20), &got);
  const std::size_t before = index.LevelThreshold(0);
  CHECK_GT(before, index.LevelThreshold(2));
  CHECK_EQ(index.LevelThreshold(2), 64u);

  for (int i = 0; i < 7000; ++i) {
    CHECK(index.Insert(static_cast<ObjectId>(2000 + i),
                       RandomBox<3>(&rng, universe, 0.05)));
  }
  CHECK_GT(index.LevelThreshold(0), before);

  for (int i = 0; i < 7000; ++i) {
    CHECK(index.Erase(static_cast<ObjectId>(2000 + i)));
  }
  CHECK_EQ(index.LevelThreshold(0), before);
}

}  // namespace

int main() {
  RUN_TEST(TestInterleavedOps3D);
  RUN_TEST(TestInterleavedOps2D);
  RUN_TEST(TestMutationContract);
  RUN_TEST(TestObjectStoreBoundsMaintenance);
  RUN_TEST(TestQuasiiPendingDrains);
  RUN_TEST(TestQuasiiTombstonesAndCompaction);
  RUN_TEST(TestQuasiiReinsertNoDuplicates);
  RUN_TEST(TestQuasiiThresholdMaintenance);
  return 0;
}
