// Concurrency suite for the multi-threaded execution layer: ThreadPool /
// BatchExecutor units, SplitMix Rng stream independence, the ObjectStore
// mutation epoch, per-thread stats shards, the ConvergedFor shared-read
// predicate — and the headline checks: N threads of mixed queries against
// every roster index must agree query-for-query with a single-threaded Scan
// oracle (both during serialized warm-up and once converged), and N
// concurrent disjoint read/write streams must leave every index in the
// exact state a sequential replay produces. Built for TSan: the concurrent
// sections are the CI ThreadSanitize job's race detector fodder.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "common/dataset.h"
#include "common/executor.h"
#include "common/object_store.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "grid/grid_index.h"
#include "mosaic/mosaic_index.h"
#include "quasii/quasii_index.h"
#include "rtree/rtree_index.h"
#include "scan/scan_index.h"
#include "sfc/sfc_index.h"
#include "sfc/sfcracker_index.h"
#include "tests/test_util.h"

namespace {

using quasii::BatchExecutor;
using quasii::BatchResult;
using quasii::Box;
using quasii::Box3;
using quasii::CountQuery;
using quasii::CountSink;
using quasii::CurrentStatsSlot;
using quasii::Dataset;
using quasii::Dataset3;
using quasii::GridAssignment;
using quasii::GridIndex;
using quasii::KNearestQuery;
using quasii::MosaicIndex;
using quasii::ObjectId;
using quasii::ObjectStore;
using quasii::PointQuery;
using quasii::Query;
using quasii::Query3;
using quasii::QuasiiIndex;
using quasii::RangePredicate;
using quasii::RangeQuery;
using quasii::Rng;
using quasii::RTreeIndex;
using quasii::Scalar;
using quasii::ScanIndex;
using quasii::ScopedStatsSlot;
using quasii::SfcIndex;
using quasii::SfcrackerIndex;
using quasii::SpatialIndex;
using quasii::ThreadPool;
using quasii::VectorSink;
using quasii::bench::MakeThreadOpStreams;
using quasii::bench::Op;
using quasii::bench::Op3;
using quasii::bench::OpKind;
using quasii::bench::WorkloadSpec;

constexpr int kThreads = 4;

template <int D>
Box<D> MakeUniverse() {
  Box<D> universe;
  for (int d = 0; d < D; ++d) {
    universe.lo[d] = 0;
    universe.hi[d] = 100;
  }
  return universe;
}

template <int D>
Box<D> RandomBox(Rng* rng, const Box<D>& universe, double max_extent_frac) {
  Box<D> b;
  for (int d = 0; d < D; ++d) {
    const double lo = static_cast<double>(universe.lo[d]);
    const double hi = static_cast<double>(universe.hi[d]);
    const double centre = rng->Uniform(lo, hi);
    const double half = (hi - lo) * rng->Uniform(0, max_extent_frac) / 2;
    b.lo[d] = static_cast<Scalar>(centre - half);
    b.hi[d] = static_cast<Scalar>(centre + half);
  }
  return b;
}

template <int D>
Dataset<D> RandomDataset(Rng* rng, const Box<D>& universe, std::size_t n) {
  Dataset<D> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back(RandomBox(rng, universe, 0.03));
  }
  return data;
}

/// Every roster index class, thresholds small enough that structures refine
/// at test sizes (same configuration as the dynamic-equivalence suite).
std::vector<std::unique_ptr<SpatialIndex<3>>> MakeRoster(
    const Dataset3& data, const Box3& universe) {
  std::vector<std::unique_ptr<SpatialIndex<3>>> v;
  v.push_back(std::make_unique<ScanIndex<3>>(data));
  v.push_back(std::make_unique<SfcIndex<3>>(data, universe));
  v.push_back(std::make_unique<SfcrackerIndex<3>>(data, universe));
  {
    GridIndex<3>::Params p;
    p.partitions_per_dim = 20;
    p.assignment = GridAssignment::kQueryExtension;
    v.push_back(std::make_unique<GridIndex<3>>(data, universe, p));
  }
  {
    GridIndex<3>::Params p;
    p.partitions_per_dim = 20;
    p.assignment = GridAssignment::kReplication;
    v.push_back(std::make_unique<GridIndex<3>>(data, universe, p));
  }
  {
    MosaicIndex<3>::Params p;
    p.leaf_capacity = 128;
    v.push_back(std::make_unique<MosaicIndex<3>>(data, universe, p));
  }
  v.push_back(std::make_unique<RTreeIndex<3>>(data));
  {
    QuasiiIndex<3>::Params p;
    p.leaf_threshold = 128;
    v.push_back(std::make_unique<QuasiiIndex<3>>(data, p));
  }
  return v;
}

// ---------------------------------------------------------------------------
// Rng::Split

void TestRngSplitStreamsIndependent() {
  // Parent plus four split streams: the first 10k raw engine draws of all
  // five must be pairwise disjoint (a collision among uniform 64-bit values
  // is a ~1e-12 event, so any hit means correlated seeding).
  constexpr int kDraws = 10000;
  Rng parent(42);
  std::set<std::uint64_t> seen;
  std::size_t expected = 0;
  const auto drain = [&](Rng rng) {
    for (int i = 0; i < kDraws; ++i) seen.insert(rng.engine()());
    expected += kDraws;
  };
  drain(parent);
  for (std::uint64_t t = 0; t < 4; ++t) drain(parent.Split(t));
  CHECK_EQ(seen.size(), expected);
}

void TestRngSplitIsStableAndSeedBased() {
  // Split derives from the construction seed, not the engine state: a
  // parent that has drawn produces the same child as a fresh one.
  Rng fresh(7);
  Rng drained(7);
  for (int i = 0; i < 123; ++i) drained.engine()();
  Rng a = fresh.Split(3);
  Rng b = drained.Split(3);
  for (int i = 0; i < 1000; ++i) CHECK_EQ(a.engine()(), b.engine()());
  // Distinct stream ids and distinct seeds give distinct streams.
  CHECK_NE(Rng(7).Split(0).engine()(), Rng(7).Split(1).engine()());
  CHECK_NE(Rng(7).Split(0).engine()(), Rng(8).Split(0).engine()());
}

// ---------------------------------------------------------------------------
// ThreadPool

void TestThreadPoolRunsEverythingAndWaits() {
  ThreadPool pool(kThreads);
  CHECK_EQ(pool.size(), kThreads);
  std::atomic<int> counter{0};
  for (int wave = 1; wave <= 3; ++wave) {
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    CHECK_EQ(counter.load(), 200 * wave);
  }
}

void TestThreadPoolBindsDistinctStatsSlots() {
  // Every worker must own a distinct slot in [1, size]; the caller thread
  // stays on slot 0.
  CHECK_EQ(CurrentStatsSlot(), 0);
  ThreadPool pool(kThreads);
  std::mutex mu;
  std::set<int> slots;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&mu, &slots] {
      std::lock_guard<std::mutex> lock(mu);
      slots.insert(CurrentStatsSlot());
    });
  }
  pool.Wait();
  CHECK_GE(slots.size(), 1u);
  for (const int slot : slots) {
    CHECK_GE(slot, 1);
    CHECK_LE(slot, kThreads);
  }
  ScopedStatsSlot bind(7);
  CHECK_EQ(CurrentStatsSlot(), 7);
}

// ---------------------------------------------------------------------------
// ObjectStore mutation epoch

void TestObjectStoreVersionTicksPerAcceptedMutation() {
  Rng rng(11);
  const Box3 universe = MakeUniverse<3>();
  const Dataset3 data = RandomDataset<3>(&rng, universe, 50);
  ObjectStore<3> store(data);
  CHECK_EQ(store.version(), 0u);
  CHECK(!store.Insert(10, RandomBox<3>(&rng, universe, 0.05)));  // live id
  CHECK_EQ(store.version(), 0u);  // rejected mutations don't tick
  CHECK(store.Insert(50, RandomBox<3>(&rng, universe, 0.05)));
  CHECK_EQ(store.version(), 1u);
  CHECK(store.Erase(10));
  CHECK_EQ(store.version(), 2u);
  CHECK(!store.Erase(10));
  CHECK_EQ(store.version(), 2u);
}

// ---------------------------------------------------------------------------
// Per-thread stats shards

void TestStatsMergeAcrossConcurrentThreads() {
  Rng rng(13);
  const Box3 universe = MakeUniverse<3>();
  const std::size_t n = 500;
  const Dataset3 data = RandomDataset<3>(&rng, universe, n);
  ScanIndex<3> scan(data);
  scan.Build();
  std::vector<Query3> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(RangeQuery<3>(RandomBox<3>(&rng, universe, 0.2)));
  }
  ThreadPool pool(kThreads);
  BatchExecutor<3> executor(&pool);
  executor.Run(&scan, std::span<const Query3>(queries));
  // Scan tests every live object per query; the counts land in per-thread
  // shards and must merge to the exact total.
  CHECK_EQ(scan.stats().objects_tested, queries.size() * n);
  CHECK(!executor.store_mutated());
  scan.ResetStats();
  CHECK_EQ(scan.stats().objects_tested, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent queries vs the sequential Scan oracle

std::vector<Query3> MakeMixedQueries(Rng* rng, const Box3& universe,
                                     int count) {
  std::vector<Query3> queries;
  queries.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Box3 b = RandomBox<3>(rng, universe, 0.15);
    switch (i % 6) {
      case 0:
        queries.push_back(RangeQuery<3>(b));
        break;
      case 1:
        queries.push_back(RangeQuery<3>(b, RangePredicate::kContains));
        break;
      case 2:
        queries.push_back(RangeQuery<3>(b, RangePredicate::kContainedBy));
        break;
      case 3:
        queries.push_back(PointQuery<3>(b.Center()));
        break;
      case 4:
        queries.push_back(CountQuery<3>(b));
        break;
      default:
        queries.push_back(KNearestQuery<3>(b.Center(), 8));
        break;
    }
  }
  return queries;
}

void CheckBatchAgainstOracle(const std::vector<BatchResult>& got,
                             const std::vector<BatchResult>& oracle,
                             const std::vector<Query3>& queries,
                             const std::string& name) {
  CHECK_EQ(got.size(), oracle.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].count != oracle[i].count) {
      std::fprintf(stderr, "index %s query %zu: count %llu vs oracle %llu\n",
                   name.c_str(), i,
                   static_cast<unsigned long long>(got[i].count),
                   static_cast<unsigned long long>(oracle[i].count));
      CHECK_EQ(got[i].count, oracle[i].count);
    }
    if (queries[i].type() == quasii::QueryType::kKNearest) {
      // kNN order is part of the contract ((distance, id) ascending).
      CHECK(got[i].ids == oracle[i].ids);
    } else {
      std::vector<ObjectId> a = got[i].ids;
      std::vector<ObjectId> b = oracle[i].ids;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      CHECK(a == b);
    }
  }
}

void TestConcurrentQueriesMatchScanOracle() {
  Rng rng(17);
  const Box3 universe = MakeUniverse<3>();
  const Dataset3 data = RandomDataset<3>(&rng, universe, 3000);
  const std::vector<Query3> queries = MakeMixedQueries(&rng, universe, 180);

  // Sequential oracle: a fresh Scan, one thread.
  ScanIndex<3> scan(data);
  scan.Build();
  std::vector<BatchResult> oracle;
  for (const Query3& q : queries) {
    BatchResult r;
    if (q.type() == quasii::QueryType::kCount) {
      CountSink sink;
      scan.Execute(q, sink);
      r.count = sink.count();
    } else {
      VectorSink sink(&r.ids);
      scan.Execute(q, sink);
      r.count = r.ids.size();
    }
    oracle.push_back(std::move(r));
  }

  ThreadPool pool(kThreads);
  BatchExecutor<3> executor(&pool);
  auto roster = MakeRoster(data, universe);
  for (auto& index : roster) {
    index->Build();
    const std::string name(index->name());
    // Cold pass: adaptive indexes crack under the exclusive lock while the
    // batch runs. Warm pass: the same queries again, now largely on the
    // shared (concurrent) path. Both must agree with the oracle.
    CheckBatchAgainstOracle(
        executor.Run(index.get(), std::span<const Query3>(queries)), oracle,
        queries, name + " (cold)");
    CheckBatchAgainstOracle(
        executor.Run(index.get(), std::span<const Query3>(queries)), oracle,
        queries, name + " (warm)");
    CHECK(!executor.store_mutated());
  }
}

void TestBatchExecutorDeterministicAcrossPoolSizes() {
  Rng rng(19);
  const Box3 universe = MakeUniverse<3>();
  const Dataset3 data = RandomDataset<3>(&rng, universe, 1200);
  const std::vector<Query3> queries = MakeMixedQueries(&rng, universe, 90);
  std::vector<std::vector<BatchResult>> runs;
  for (const int threads : {1, 3, kThreads}) {
    QuasiiIndex<3>::Params p;
    p.leaf_threshold = 128;
    QuasiiIndex<3> index(data, p);
    index.Build();
    ThreadPool pool(threads);
    BatchExecutor<3> executor(&pool);
    runs.push_back(executor.Run(&index, std::span<const Query3>(queries)));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    CHECK_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      CHECK_EQ(runs[r][i].count, runs[0][i].count);
      if (queries[i].type() == quasii::QueryType::kKNearest) {
        // kNN order is canonical ((distance, id)), so it must match bitwise.
        CHECK(runs[r][i].ids == runs[0][i].ids);
      } else {
        // Range emission order follows the physical array order, which on a
        // cold adaptive index depends on which chunk cracked first — only
        // the result *set* is schedule-invariant.
        std::vector<ObjectId> a = runs[r][i].ids;
        std::vector<ObjectId> b = runs[0][i].ids;
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        CHECK(a == b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent disjoint read/write streams

void TestConcurrentReadWriteStreamsReachSequentialState() {
  Rng rng(23);
  const Box3 universe = MakeUniverse<3>();
  const std::size_t n = 1200;
  const Dataset3 data = RandomDataset<3>(&rng, universe, n);
  std::vector<Box3> footprints;
  for (int i = 0; i < 240; ++i) {
    footprints.push_back(RandomBox<3>(&rng, universe, 0.1));
  }
  WorkloadSpec spec;
  spec.mix.range = 0.5;
  spec.mix.point = 0.1;
  spec.mix.count = 0.1;
  spec.mix.insert = 0.2;
  spec.mix.erase = 0.1;
  spec.seed = 29;
  const auto streams = MakeThreadOpStreams<3>(footprints, spec, n, kThreads);
  CHECK_EQ(streams.size(), static_cast<std::size_t>(kThreads));

  // The streams' id spaces are disjoint by construction, so every mutation
  // is accepted whatever the interleaving and the final live set is the
  // sequential replay's. Build it (and count mutations) once.
  std::map<ObjectId, Box3> live;
  for (ObjectId id = 0; id < n; ++id) live[id] = data[id];
  std::size_t mutations = 0;
  for (const auto& stream : streams) {
    for (const Op3& op : stream) {
      if (op.kind() == OpKind::kInsert) {
        CHECK(live.find(op.id()) == live.end());
        live[op.id()] = op.box();
        ++mutations;
      } else if (op.kind() == OpKind::kErase) {
        CHECK(live.find(op.id()) != live.end());
        live.erase(op.id());
        ++mutations;
      }
    }
  }
  CHECK_GT(mutations, 0u);

  auto roster = MakeRoster(data, universe);
  for (auto& index : roster) {
    index->Build();
    const std::uint64_t version_before = index->store().version();
    ThreadPool pool(kThreads);
    std::atomic<std::size_t> accepted{0};
    for (const auto& stream : streams) {
      pool.Submit([&index, &stream, &accepted] {
        std::vector<ObjectId> ids;
        VectorSink vector_sink(&ids);
        CountSink count_sink;
        std::size_t ok = 0;
        for (const Op3& op : stream) {
          switch (op.kind()) {
            case OpKind::kInsert:
              ok += index->Insert(op.id(), op.box()) ? 1 : 0;
              break;
            case OpKind::kErase:
              ok += index->Erase(op.id()) ? 1 : 0;
              break;
            case OpKind::kQuery:
              if (op.query().type() == quasii::QueryType::kCount) {
                count_sink.Reset();
                index->Execute(op.query(), count_sink);
              } else {
                ids.clear();
                index->Execute(op.query(), vector_sink);
              }
              break;
            case OpKind::kJoin: {
              // This spec emits no join ops (no join source), but the
              // switch stays exhaustive for when one does.
              quasii::CountPairSink pair_sink;
              index->Execute(quasii::JoinQuery<3>(op.join_stream()),
                             pair_sink);
              break;
            }
            default:
              break;  // admin request kinds never appear in op streams
          }
        }
        accepted.fetch_add(ok);
      });
    }
    pool.Wait();
    CHECK_EQ(accepted.load(), mutations);
    CHECK_EQ(index->store().live_count(), live.size());
    CHECK_EQ(index->store().version() - version_before,
             static_cast<std::uint64_t>(mutations));

    // Final state must answer like a brute-force pass over the live map.
    Rng probe_rng(31);
    for (int i = 0; i < 20; ++i) {
      const Box3 q = RandomBox<3>(&probe_rng, universe, 0.2);
      std::vector<ObjectId> expected;
      for (const auto& [id, box] : live) {
        if (box.Intersects(q)) expected.push_back(id);
      }
      std::vector<ObjectId> got;
      VectorSink sink(&got);
      index->Execute(RangeQuery<3>(q), sink);
      std::sort(got.begin(), got.end());
      CHECK(got == expected);
    }
  }
}

// ---------------------------------------------------------------------------
// ConvergedFor

void TestQuasiiConvergedForTracksRefinementAndMutations() {
  Rng rng(37);
  const Box3 universe = MakeUniverse<3>();
  const Dataset3 data = RandomDataset<3>(&rng, universe, 400);
  QuasiiIndex<3>::Params params;
  params.leaf_threshold = 64;
  QuasiiIndex<3> index(data, params);
  index.Build();
  const Query3 q = RangeQuery<3>(RandomBox<3>(&rng, universe, 0.2));

  // Uninitialized (and later unrefined) structure: not converged.
  CHECK(!index.ConvergedFor(q));
  std::vector<ObjectId> ids;
  VectorSink sink(&ids);
  index.Execute(q, sink);
  // The query refined its own path: re-running it is now a pure read.
  CHECK(index.ConvergedFor(q));

  // A pending insert parks convergence until the next query absorbs it.
  CHECK(index.Insert(static_cast<ObjectId>(data.size()),
                     RandomBox<3>(&rng, universe, 0.05)));
  CHECK(!index.ConvergedFor(q));
  ids.clear();
  index.Execute(q, sink);
  CHECK(index.ConvergedFor(q));

  // Enough tombstones to owe a compaction: not converged until one runs.
  for (ObjectId id = 0; id < 128; ++id) CHECK(index.Erase(id));
  CHECK(!index.ConvergedFor(q));
  ids.clear();
  index.Execute(q, sink);
  CHECK_EQ(index.array().tombstones(), 0u);  // compaction reclaimed them
  CHECK(index.ConvergedFor(q));

  // kNN stays conservative on adaptive indexes.
  CHECK(!index.ConvergedFor(KNearestQuery<3>(universe.Center(), 4)));
}

void TestStaticIndexesConvergeOnceBuilt() {
  Rng rng(41);
  const Box3 universe = MakeUniverse<3>();
  const Dataset3 data = RandomDataset<3>(&rng, universe, 300);
  const Query3 q = RangeQuery<3>(RandomBox<3>(&rng, universe, 0.2));

  ScanIndex<3> scan(data);
  CHECK(scan.ConvergedFor(q));  // stateless: safe even before Build

  RTreeIndex<3> rtree(data);
  CHECK(!rtree.ConvergedFor(q));
  rtree.Build();
  CHECK(rtree.ConvergedFor(q));
  CHECK(rtree.ConvergedFor(KNearestQuery<3>(universe.Center(), 4)));

  GridIndex<3>::Params ext;
  ext.partitions_per_dim = 10;
  ext.assignment = GridAssignment::kQueryExtension;
  GridIndex<3> grid(data, universe, ext);
  grid.Build();
  CHECK(grid.ConvergedFor(q));

  // Replication mode shares per-query dedup stamps: always serialized.
  GridIndex<3>::Params rep = ext;
  rep.assignment = GridAssignment::kReplication;
  GridIndex<3> grid_rep(data, universe, rep);
  grid_rep.Build();
  CHECK(!grid_rep.ConvergedFor(q));

  SfcIndex<3> sfc(data, universe);
  sfc.Build();
  CHECK(sfc.ConvergedFor(q));

  // SFCracker: converged exactly when the query's interval boundaries are
  // all learned.
  SfcrackerIndex<3> cracker(data, universe);
  cracker.Build();
  CHECK(!cracker.ConvergedFor(q));
  std::vector<ObjectId> ids;
  VectorSink sink(&ids);
  cracker.Execute(q, sink);
  CHECK(cracker.ConvergedFor(q));
}

}  // namespace

int main() {
  RUN_TEST(TestRngSplitStreamsIndependent);
  RUN_TEST(TestRngSplitIsStableAndSeedBased);
  RUN_TEST(TestThreadPoolRunsEverythingAndWaits);
  RUN_TEST(TestThreadPoolBindsDistinctStatsSlots);
  RUN_TEST(TestObjectStoreVersionTicksPerAcceptedMutation);
  RUN_TEST(TestStatsMergeAcrossConcurrentThreads);
  RUN_TEST(TestConcurrentQueriesMatchScanOracle);
  RUN_TEST(TestBatchExecutorDeterministicAcrossPoolSizes);
  RUN_TEST(TestConcurrentReadWriteStreamsReachSequentialState);
  RUN_TEST(TestQuasiiConvergedForTracksRefinementAndMutations);
  RUN_TEST(TestStaticIndexesConvergeOnceBuilt);
  return 0;
}
