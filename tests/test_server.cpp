// Serving-layer suite (src/server/ + src/common/request.h): typed request
// envelope round trips and rejection cases, the CRC-framed wire codec's
// torn/corrupt/oversized/fuzz behavior over real socketpairs (every
// malformed input is a typed error, never UB — the ASan/UBSan CI job runs
// this file too), ThreadPool shutdown-drain semantics, `ExecuteRequest`
// against direct-execution oracles, epoch-pinned snapshot reads, workload
// record/replay determinism in-process AND over the socket, admission
// control, and converged-read batching.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/workload.h"
#include "common/dataset.h"
#include "common/executor.h"
#include "common/query.h"
#include "common/request.h"
#include "common/rng.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "persist/snapshot.h"
#include "quasii/quasii_index.h"
#include "scan/scan_index.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/recorder.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace {

using quasii::Box3;
using quasii::ByteReader;
using quasii::ByteWriter;
using quasii::Dataset3;
using quasii::ExecuteRequest;
using quasii::FnvBytes;
using quasii::IndexContentChecksum;
using quasii::kFnvBasis;
using quasii::ObjectId;
using quasii::Point;
using quasii::RangePredicate;
using quasii::QuasiiIndex;
using quasii::Query3;
using quasii::QueryType;
using quasii::Request;
using quasii::Request3;
using quasii::RequestHooks;
using quasii::RequestKind;
using quasii::Response;
using quasii::ResponseStatus;
using quasii::Rng;
using quasii::Scalar;
using quasii::ScanIndex;
using quasii::SpatialIndex;
using quasii::ThreadPool;
using quasii::server::ClientReply;
using quasii::server::QueryServer;
using quasii::server::ReadFrame;
using quasii::server::ReadWorkloadLog;
using quasii::server::ReplayWorkload;
using quasii::server::WireClient;
using quasii::server::WireError;
using quasii::server::WorkloadRecorder;
using quasii::server::WriteFrame;

// ---------------------------------------------------------------------------
// Deterministic inputs

std::string TempPath(const std::string& name) {
  static std::string dir = [] {
    char tmpl[] = "/tmp/quasii_server_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    CHECK(made != nullptr);
    return std::string(made);
  }();
  return dir + "/" + name;
}

Box3 MakeBox(Scalar lo0, Scalar hi0) {
  Box3 b;
  for (int d = 0; d < 3; ++d) {
    b.lo[d] = lo0;
    b.hi[d] = hi0;
  }
  return b;
}

Dataset3 MakeData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset3 data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Box3 b;
    for (int d = 0; d < 3; ++d) {
      const double lo = rng.Uniform(0.0, 95.0);
      b.lo[d] = static_cast<Scalar>(lo);
      b.hi[d] = static_cast<Scalar>(lo + rng.Uniform(0.5, 5.0));
    }
    data.push_back(b);
  }
  return data;
}

std::string SerializeRequest(const Request3& req) {
  std::string out;
  ByteWriter w(&out);
  req.Serialize(&w);
  return out;
}

std::string SerializeResponse(const Response<3>& resp) {
  std::string out;
  ByteWriter w(&out);
  resp.Serialize(&w);
  return out;
}

/// The full request menu, one of each kind/query-tag, used by round-trip
/// and transport tests.
std::vector<Request3> RequestMenu() {
  std::vector<Request3> menu;
  menu.push_back(Request3::MakeQuery(quasii::RangeQuery<3>(MakeBox(10, 30))));
  menu.push_back(Request3::MakeQuery(
      Query3::MakeRange(MakeBox(20, 60), RangePredicate::kContains)));
  Point<3> p;
  for (int d = 0; d < 3; ++d) p.coords[d] = 42;
  menu.push_back(Request3::MakeQuery(quasii::PointQuery<3>(p)));
  menu.push_back(Request3::MakeQuery(quasii::CountQuery<3>(MakeBox(5, 50))));
  menu.push_back(Request3::MakeQuery(quasii::KNearestQuery<3>(p, 7)));
  menu.push_back(Request3::MakeQuery(quasii::ConjunctiveQuery<3>(
      {{MakeBox(0, 70), RangePredicate::kIntersects},
       {MakeBox(10, 60), RangePredicate::kIntersects}})));
  auto join = Request3::TryStreamJoin({MakeBox(10, 20), MakeBox(40, 55)});
  CHECK(join.has_value());
  menu.push_back(*join);
  auto insert = Request3::TryInsert(9001, MakeBox(33, 34));
  CHECK(insert.has_value());
  menu.push_back(*insert);
  menu.push_back(Request3::MakeErase(17));
  menu.push_back(Request3::MakeStats());
  menu.push_back(Request3::MakeSnapshot());
  menu.push_back(Request3::MakePing());
  return menu;
}

// ---------------------------------------------------------------------------
// Request/Response codec

void TestRequestRoundTrip() {
  for (const Request3& req : RequestMenu()) {
    const std::string bytes = SerializeRequest(req);
    auto parsed = Request3::TryParse(std::string_view(bytes));
    CHECK(parsed.has_value());
    CHECK_EQ(SerializeRequest(*parsed), bytes);
    CHECK(parsed->kind() == req.kind());
  }
  // Pinned variants of the pinnable reads (kQuery/kJoin — admin reads
  // carry no data to pin) round-trip with the pin intact.
  for (Request3 req : RequestMenu()) {
    if (req.kind() != RequestKind::kQuery &&
        req.kind() != RequestKind::kJoin) {
      continue;
    }
    CHECK(req.TryPinEpoch(123456789));
    const std::string bytes = SerializeRequest(req);
    auto parsed = Request3::TryParse(std::string_view(bytes));
    CHECK(parsed.has_value());
    CHECK_EQ(parsed->pin_epoch(), 123456789u);
    CHECK_EQ(SerializeRequest(*parsed), bytes);
  }
}

void TestRequestFactoryRejects() {
  // Join queries cannot ride in a kQuery request (they borrow an index).
  Dataset3 data = MakeData(8, 1);
  ScanIndex<3> other(data);
  auto join_query = Query3::TryJoin(&other);
  CHECK(join_query.has_value());
  CHECK(!Request3::TryQuery(*join_query).has_value());

  // Non-finite geometry is refused by the Try* factories.
  Box3 nan_box = MakeBox(0, 1);
  nan_box.lo[1] = std::numeric_limits<Scalar>::quiet_NaN();
  CHECK(!Query3::TryRange(nan_box, RangePredicate::kIntersects).has_value());
  CHECK(!Query3::TryCount(nan_box, RangePredicate::kIntersects).has_value());
  Point<3> nan_point;
  nan_point.coords[0] = std::numeric_limits<Scalar>::infinity();
  CHECK(!Query3::TryPoint(nan_point).has_value());
  CHECK(!Query3::TryKNearest(nan_point, 5).has_value());
  CHECK(!Request3::TryStreamJoin({MakeBox(0, 1), nan_box}).has_value());
  CHECK(!Request3::TryInsert(1, nan_box).has_value());
  Box3 empty;  // default box is empty
  CHECK(!Request3::TryInsert(1, empty).has_value());

  // Pins apply to reads only, and zero is not a valid epoch.
  Request3 read = Request3::MakeQuery(quasii::CountQuery<3>(MakeBox(0, 1)));
  CHECK(!read.TryPinEpoch(0));
  CHECK(read.TryPinEpoch(7));
  Request3 write = *Request3::TryInsert(5, MakeBox(0, 1));
  CHECK(!write.TryPinEpoch(7));
  Request3 admin = Request3::MakeStats();
  CHECK(!admin.TryPinEpoch(7));
}

void TestRequestParseRejects() {
  const std::string good =
      SerializeRequest(Request3::MakeQuery(quasii::RangeQuery<3>(
          MakeBox(1, 2))));

  // Every strict prefix must be rejected, never crash.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    CHECK(!Request3::TryParse(std::string_view(good.data(), cut))
               .has_value());
  }
  // Trailing garbage is rejected by the whole-buffer parse.
  CHECK(!Request3::TryParse(good + "x").has_value());

  auto corrupt_byte = [&](std::size_t at, char value) {
    std::string bad = good;
    bad[at] = value;
    return Request3::TryParse(std::string_view(bad));
  };
  // Unknown request kind.
  CHECK(!corrupt_byte(0, 99).has_value());
  // Unknown query tag (byte 9: after kind + u64 pin).
  CHECK(!corrupt_byte(9, 99).has_value());
  // Unknown predicate (byte 10).
  CHECK(!corrupt_byte(10, 99).has_value());

  // k = 0 kNN refuses at parse as at construction.
  Point<3> p;
  for (int d = 0; d < 3; ++d) p.coords[d] = 1;
  std::string knn =
      SerializeRequest(Request3::MakeQuery(quasii::KNearestQuery<3>(p, 3)));
  // k is the trailing u64; zero it.
  for (std::size_t i = knn.size() - 8; i < knn.size(); ++i) knn[i] = 0;
  CHECK(!Request3::TryParse(std::string_view(knn)).has_value());

  // A pinned mutation on the wire is rejected (pins are read-only).
  std::string pinned_insert =
      SerializeRequest(*Request3::TryInsert(3, MakeBox(0, 1)));
  pinned_insert[1] = 1;  // low byte of the little-endian pin field
  CHECK(!Request3::TryParse(std::string_view(pinned_insert)).has_value());

  // NaN geometry on the wire is rejected even though the frame is intact.
  std::string nan_range = good;
  const std::uint32_t nan_bits = 0x7FC00000u;
  std::memcpy(nan_range.data() + 11, &nan_bits, 4);
  CHECK(!Request3::TryParse(std::string_view(nan_range)).has_value());

  // A hostile element count cannot drive allocation past the buffer.
  std::string huge_join;
  {
    ByteWriter w(&huge_join);
    w.U8(static_cast<std::uint8_t>(RequestKind::kJoin));
    w.U64(0);
    w.U32(0x7FFFFFFFu);  // claims ~2B boxes, carries none
  }
  CHECK(!Request3::TryParse(std::string_view(huge_join)).has_value());
}

void TestResponseRoundTrip() {
  Response<3> resp;
  resp.status = ResponseStatus::kOk;
  resp.kind = RequestKind::kQuery;
  resp.epoch = 42;
  resp.ids = {3, 1, 4, 1, 5};
  resp.count = resp.ids.size();
  const std::string bytes = SerializeResponse(resp);
  auto parsed = Response<3>::TryParse(std::string_view(bytes));
  CHECK(parsed.has_value());
  CHECK_EQ(SerializeResponse(*parsed), bytes);
  CHECK(parsed->ids == resp.ids);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    CHECK(!Response<3>::TryParse(std::string_view(bytes.data(), cut))
               .has_value());
  }
  std::string bad_status = bytes;
  bad_status[0] = 99;
  CHECK(!Response<3>::TryParse(std::string_view(bad_status)).has_value());
  std::string bad_kind = bytes;
  bad_kind[1] = 0;
  CHECK(!Response<3>::TryParse(std::string_view(bad_kind)).has_value());
}

void TestRequestFuzz() {
  // Random byte soup must always be a typed rejection or a value that
  // re-serializes canonically — and never UB (the sanitizer job enforces
  // the "never" part).
  Rng rng(0xF00D);
  std::string bytes;
  for (int iter = 0; iter < 5000; ++iter) {
    const std::size_t len =
        static_cast<std::size_t>(rng.Uniform(0.0, 64.0));
    bytes.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      bytes[i] = static_cast<char>(
          static_cast<int>(rng.Uniform(0.0, 256.0)));
    }
    auto parsed = Request3::TryParse(std::string_view(bytes));
    if (parsed.has_value()) {
      auto reparsed =
          Request3::TryParse(std::string_view(SerializeRequest(*parsed)));
      CHECK(reparsed.has_value());
    }
    auto resp = Response<3>::TryParse(std::string_view(bytes));
    if (resp.has_value()) {
      CHECK(Response<3>::TryParse(
                std::string_view(SerializeResponse(*resp)))
                .has_value());
    }
  }
}

// ---------------------------------------------------------------------------
// Wire frame codec over real socketpairs

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    CHECK_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  int ReleaseA() {
    const int fd = a;
    a = -1;
    return fd;
  }
};

void TestFrameRoundTrip() {
  SocketPair sp;
  const std::string payloads[] = {"", "x", std::string(100000, 'q')};
  for (const std::string& payload : payloads) {
    CHECK(WriteFrame(sp.a, payload));
    std::string got;
    CHECK(ReadFrame(sp.b, &got) == WireError::kNone);
    CHECK(got == payload);
  }
  ::close(sp.a);
  sp.a = -1;
  std::string got;
  CHECK(ReadFrame(sp.b, &got) == WireError::kClosed);
}

void TestFrameTornAndCorrupt() {
  {  // EOF inside the header
    SocketPair sp;
    const char partial[3] = {1, 2, 3};
    CHECK(quasii::server::WriteFull(sp.a, partial, sizeof(partial)));
    ::close(sp.a);
    sp.a = -1;
    std::string got;
    CHECK(ReadFrame(sp.b, &got) == WireError::kTorn);
  }
  {  // EOF inside the payload
    SocketPair sp;
    std::string frame;
    ByteWriter w(&frame);
    w.U32(100);  // promises 100 payload bytes
    w.U32(0);
    w.Bytes("short", 5);
    CHECK(quasii::server::WriteFull(sp.a, frame.data(), frame.size()));
    ::close(sp.a);
    sp.a = -1;
    std::string got;
    CHECK(ReadFrame(sp.b, &got) == WireError::kTorn);
  }
  {  // flipped payload byte -> CRC mismatch
    SocketPair sp;
    std::string frame;
    ByteWriter w(&frame);
    const std::string payload = "hello frames";
    w.U32(static_cast<std::uint32_t>(payload.size()));
    w.U32(quasii::persist::Crc32c(payload.data(), payload.size()));
    std::string damaged = payload;
    damaged[4] ^= 0x20;
    w.Bytes(damaged.data(), damaged.size());
    CHECK(quasii::server::WriteFull(sp.a, frame.data(), frame.size()));
    std::string got;
    CHECK(ReadFrame(sp.b, &got) == WireError::kBadCrc);
  }
  {  // hostile length field -> typed oversize, no allocation storm
    SocketPair sp;
    std::string header;
    ByteWriter w(&header);
    w.U32(0xFFFFFFFFu);
    w.U32(0);
    CHECK(quasii::server::WriteFull(sp.a, header.data(), header.size()));
    std::string got;
    CHECK(ReadFrame(sp.b, &got) == WireError::kOversized);
  }
}

void TestFrameFuzz() {
  // Garbage streams of every flavor must come back as SOME typed error (or
  // a valid frame in the astronomically unlikely CRC-collision case) —
  // never a hang, crash, or unbounded allocation.
  Rng rng(0xBEEF);
  for (int iter = 0; iter < 200; ++iter) {
    SocketPair sp;
    const std::size_t len =
        static_cast<std::size_t>(rng.Uniform(0.0, 200.0));
    std::string junk(len, '\0');
    for (std::size_t i = 0; i < len; ++i) {
      junk[i] = static_cast<char>(static_cast<int>(rng.Uniform(0.0, 256.0)));
    }
    // Keep claimed lengths small-ish so the in-cap reads hit EOF quickly.
    if (len >= 4) junk[3] = 0;
    CHECK(quasii::server::WriteFull(sp.a, junk.data(), junk.size()));
    ::close(sp.a);
    sp.a = -1;
    std::string got;
    while (true) {
      const WireError err = ReadFrame(sp.b, &got);
      if (err != WireError::kNone) break;  // typed failure or clean EOF path
    }
  }
}

// ---------------------------------------------------------------------------
// ThreadPool shutdown semantics (satellite: deterministic drain)

void TestThreadPoolShutdownDrains() {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1);
      });
    }
    pool.Shutdown();
    // Every task submitted before Shutdown ran — queued-but-unstarted ones
    // included. This is the contract server shutdown builds on.
    CHECK_EQ(ran.load(), 64);
    pool.Shutdown();  // idempotent
  }
  {
    // The destructor alone gives the same drain guarantee.
    std::atomic<int> ran2{0};
    {
      ThreadPool pool(2);
      for (int i = 0; i < 32; ++i) {
        pool.Submit([&ran2] {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          ran2.fetch_add(1);
        });
      }
    }
    CHECK_EQ(ran2.load(), 32);
  }
}

void TestBatchExecutorCallback() {
  Dataset3 data = MakeData(400, 3);
  ScanIndex<3> index(data);
  std::vector<quasii::Query<3>> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(
        quasii::RangeQuery<3>(MakeBox(static_cast<Scalar>(i), 60)));
  }
  ThreadPool pool(3);
  quasii::BatchExecutor<3> exec(&pool);
  std::atomic<std::uint64_t> called{0};
  std::atomic<std::uint64_t> callback_ids{0};
  auto results = exec.Run(
      &index, std::span<const quasii::Query<3>>(queries),
      [&](std::size_t i, const quasii::BatchResult& r) {
        called.fetch_add(1);
        callback_ids.fetch_add(i + r.ids.size());
      });
  CHECK_EQ(called.load(), queries.size());
  CHECK_EQ(results.size(), queries.size());
  // Callback saw the same results the return value carries.
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect += i + results[i].ids.size();
  }
  CHECK_EQ(callback_ids.load(), expect);
  // And the results match direct execution.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::vector<ObjectId> direct;
    quasii::VectorSink sink(&direct);
    index.Execute(queries[i], sink);
    CHECK(results[i].ids == direct);
  }
}

// ---------------------------------------------------------------------------
// ExecuteRequest semantics

void TestExecuteRequestOracle() {
  Dataset3 data = MakeData(600, 5);
  QuasiiIndex<3> index(data);
  QuasiiIndex<3> oracle(data);
  for (const Request3& req : RequestMenu()) {
    if (req.kind() == RequestKind::kSnapshot) continue;  // needs hooks
    const Response<3> got = ExecuteRequest<3>(&index, req);
    const Response<3> want = ExecuteRequest<3>(&oracle, req);
    CHECK_EQ(SerializeResponse(got), SerializeResponse(want));
    CHECK(got.status == ResponseStatus::kOk);
  }
  // Spot-check a query against the raw engine.
  std::vector<ObjectId> direct;
  quasii::VectorSink sink(&direct);
  const auto q = quasii::RangeQuery<3>(MakeBox(10, 30));
  oracle.Execute(q, sink);
  const Response<3> resp =
      ExecuteRequest<3>(&index, Request3::MakeQuery(q));
  CHECK(resp.ids == direct);
}

void TestEpochPinning() {
  Dataset3 data = MakeData(100, 6);
  ScanIndex<3> index(data);
  // A fresh store sits at epoch 0 — the unpinned sentinel — so move it
  // first; every pinnable epoch is a post-mutation one.
  CHECK(ExecuteRequest<3>(&index, *Request3::TryInsert(40000, MakeBox(2, 4)))
            .accepted);
  const std::uint64_t epoch = index.store().version();
  CHECK_GT(epoch, 0u);

  Request3 pinned = Request3::MakeQuery(quasii::CountQuery<3>(MakeBox(0, 99)));
  CHECK(pinned.TryPinEpoch(epoch));
  Response<3> ok = ExecuteRequest<3>(&index, pinned);
  CHECK(ok.status == ResponseStatus::kOk);
  CHECK_EQ(ok.epoch, epoch);

  // A mutation moves the epoch; the stale pin now refuses with the current
  // epoch so the client can re-pin.
  CHECK(ExecuteRequest<3>(&index, *Request3::TryInsert(50000, MakeBox(1, 2)))
            .accepted);
  Response<3> stale = ExecuteRequest<3>(&index, pinned);
  CHECK(stale.status == ResponseStatus::kEpochMismatch);
  CHECK_EQ(stale.epoch, index.store().version());
  CHECK_NE(stale.epoch, epoch);

  Request3 repinned =
      Request3::MakeQuery(quasii::CountQuery<3>(MakeBox(0, 99)));
  CHECK(repinned.TryPinEpoch(stale.epoch));
  CHECK(ExecuteRequest<3>(&index, repinned).status == ResponseStatus::kOk);
}

void TestSnapshotHook() {
  Dataset3 data = MakeData(120, 7);
  ScanIndex<3> index(data);
  // No hooks: typed kUnsupported, not a crash.
  CHECK(ExecuteRequest<3>(&index, Request3::MakeSnapshot()).status ==
        ResponseStatus::kUnsupported);

  const std::string path = TempPath("hook.snapshot");
  RequestHooks<3> hooks;
  hooks.snapshot_now = [&path](SpatialIndex<3>& idx, std::uint64_t* lsn) {
    if (quasii::persist::WriteSnapshot<3>(idx, path) !=
        quasii::persist::PersistError::kNone) {
      return false;
    }
    *lsn = idx.store().version();
    return true;
  };
  const Response<3> resp =
      ExecuteRequest<3>(&index, Request3::MakeSnapshot(), &hooks);
  CHECK(resp.status == ResponseStatus::kOk);
  CHECK_EQ(resp.snapshot_lsn, index.store().version());
  const auto snap = quasii::persist::ReadSnapshot<3>(path);
  CHECK(snap.exists);
  CHECK(snap.error == quasii::persist::PersistError::kNone);
  CHECK_EQ(snap.lsn, resp.snapshot_lsn);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Workload log + in-process replay

/// A small mixed read/write stream through the bench generator — the same
/// typed requests the server records.
std::vector<Request3> MixedOps(std::size_t n_data, int count,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Box3> boxes;
  for (int i = 0; i < count; ++i) {
    Box3 b;
    for (int d = 0; d < 3; ++d) {
      const double lo = rng.Uniform(0.0, 80.0);
      b.lo[d] = static_cast<Scalar>(lo);
      b.hi[d] = static_cast<Scalar>(lo + rng.Uniform(2.0, 15.0));
    }
    boxes.push_back(b);
  }
  quasii::bench::WorkloadSpec spec;
  spec.mix.range = 0.5;
  spec.mix.point = 0.1;
  spec.mix.count = 0.15;
  spec.mix.knn = 0.05;
  spec.mix.insert = 0.12;
  spec.mix.erase = 0.08;
  spec.seed = seed + 2;
  return quasii::bench::MakeOpWorkload<3>(boxes, spec, n_data);
}

void TestWorkloadLogRoundTrip() {
  const std::string path = TempPath("roundtrip.workload");
  const std::vector<Request3> ops = MixedOps(200, 60, 11);
  {
    WorkloadRecorder<3> rec;
    CHECK(rec.Open(path) == quasii::persist::PersistError::kNone);
    std::uint64_t client = 0;
    for (const Request3& op : ops) {
      CHECK(rec.Append(client++ % 3, 1, op) ==
            quasii::persist::PersistError::kNone);
    }
    CHECK_EQ(rec.records(), ops.size());
    rec.Close();
  }
  auto log = ReadWorkloadLog<3>(path);
  CHECK(log.exists);
  CHECK(log.error == quasii::persist::PersistError::kNone);
  CHECK(!log.truncated_tail);
  CHECK_EQ(log.records.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    CHECK_EQ(log.records[i].client, i % 3);
    CHECK_EQ(log.records[i].target, 1);
    CHECK_EQ(SerializeRequest(log.records[i].request),
             SerializeRequest(ops[i]));
  }

  // Torn tail: chop mid-frame; the intact prefix still replays.
  std::ifstream in(path, std::ios::binary);
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size() - 5));
  }
  auto torn = ReadWorkloadLog<3>(path);
  CHECK(torn.error == quasii::persist::PersistError::kNone);
  CHECK(torn.truncated_tail);
  CHECK_EQ(torn.records.size(), ops.size() - 1);

  // A mid-log bit flip is corruption, refused with a typed error.
  {
    std::string damaged = raw;
    damaged[damaged.size() / 2] ^= 0x01;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  }
  auto bad = ReadWorkloadLog<3>(path);
  CHECK(bad.error == quasii::persist::PersistError::kWalRecordCorrupt);

  // Header damage is typed too.
  {
    std::string damaged = raw;
    damaged[0] ^= 0x01;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  }
  CHECK(ReadWorkloadLog<3>(path).error ==
        quasii::persist::PersistError::kBadMagic);
  std::remove(path.c_str());
}

void TestInProcessReplayDeterminism() {
  const std::string path = TempPath("replay.workload");
  const std::size_t n = 300;
  Dataset3 data = MakeData(n, 13);
  const std::vector<Request3> ops = MixedOps(n, 80, 13);
  {
    WorkloadRecorder<3> rec;
    CHECK(rec.Open(path) == quasii::persist::PersistError::kNone);
    for (const Request3& op : ops) {
      CHECK(rec.Append(1, 0, op) == quasii::persist::PersistError::kNone);
    }
    rec.Close();
  }
  auto log = ReadWorkloadLog<3>(path);
  CHECK(log.error == quasii::persist::PersistError::kNone);

  auto run_once = [&] {
    ScanIndex<3> scan(data);
    QuasiiIndex<3> quasii_idx(data);
    std::vector<SpatialIndex<3>*> roster = {&scan, &quasii_idx};
    // Only target 0 was recorded, but the roster shape matches the server's.
    return ReplayWorkload<3>(std::span<SpatialIndex<3>* const>(roster),
                             log.records);
  };
  const auto first = run_once();
  const auto second = run_once();
  CHECK(first.ok);
  CHECK(second.ok);
  CHECK_EQ(first.requests, ops.size());
  CHECK_EQ(first.response_checksum, second.response_checksum);
  CHECK(first.index_checksums == second.index_checksums);

  // Out-of-roster target: typed refusal.
  auto bad_records = log.records;
  bad_records.front().target = 9;
  ScanIndex<3> scan(data);
  std::vector<SpatialIndex<3>*> roster = {&scan};
  const auto rejected = ReplayWorkload<3>(
      std::span<SpatialIndex<3>* const>(roster), bad_records);
  CHECK(!rejected.ok);
  CHECK(rejected.error == quasii::persist::PersistError::kReplayRejected);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end server over socketpairs

struct ServerFixture {
  Dataset3 data;
  ScanIndex<3> scan;
  QuasiiIndex<3> quasii_idx;
  QueryServer<3> server;
  WireClient<3> client;

  explicit ServerFixture(QueryServer<3>::Options options,
                         std::size_t n = 400, std::uint64_t seed = 21,
                         bool start = true)
      : data(MakeData(n, seed)),
        scan(data),
        quasii_idx(data),
        server({&scan, &quasii_idx}, options) {
    if (start) {
      std::string error;
      CHECK(server.Start(&error));
    }
    SocketPair sp;
    server.AddConnection(sp.ReleaseA());
    const int client_fd = sp.b;
    sp.b = -1;
    client.Adopt(client_fd);
    CHECK(client.Handshake());
  }
};

void TestServerEndToEnd() {
  ServerFixture fx({});
  // An oracle roster receives the identical request sequence in-process.
  Dataset3 data = MakeData(400, 21);
  ScanIndex<3> oracle_scan(data);
  QuasiiIndex<3> oracle_quasii(data);
  std::vector<SpatialIndex<3>*> oracle = {&oracle_scan, &oracle_quasii};

  for (std::uint8_t target = 0; target < 2; ++target) {
    for (const Request3& req : RequestMenu()) {
      if (req.kind() == RequestKind::kSnapshot) continue;  // no path set
      auto reply = fx.client.Call(target, req);
      CHECK(reply.has_value());
      const Response<3> want = ExecuteRequest<3>(oracle[target], req);
      CHECK_EQ(reply->body, SerializeResponse(want));
    }
  }
  // Snapshot without a configured path answers kUnsupported, typed.
  auto snap = fx.client.Call(0, Request3::MakeSnapshot());
  CHECK(snap.has_value());
  CHECK(snap->response.status == ResponseStatus::kUnsupported);

  fx.server.Stop();
  CHECK(fx.server.IndexChecksums() ==
        std::vector<std::uint64_t>({IndexContentChecksum(oracle_scan),
                                    IndexContentChecksum(oracle_quasii)}));
}

void TestServerMalformedInputs() {
  ServerFixture fx({});
  // Valid frame, garbage request bytes: typed kMalformed, connection lives.
  {
    std::string envelope;
    ByteWriter w(&envelope);
    w.U64(77);
    w.U8(0);
    w.U8(250);  // unknown request kind
    CHECK(WriteFrame(fx.client.fd(), envelope));
    auto reply = fx.client.Recv();
    CHECK(reply.has_value());
    CHECK_EQ(reply->seq, 77u);
    CHECK(reply->response.status == ResponseStatus::kMalformed);
  }
  // Out-of-roster target: also kMalformed, and the connection still works.
  {
    std::string envelope;
    ByteWriter w(&envelope);
    w.U64(78);
    w.U8(9);
    Request3::MakePing().Serialize(&w);
    CHECK(WriteFrame(fx.client.fd(), envelope));
    auto reply = fx.client.Recv();
    CHECK(reply.has_value());
    CHECK(reply->response.status == ResponseStatus::kMalformed);
  }
  auto ping = fx.client.Call(0, Request3::MakePing());
  CHECK(ping.has_value());
  CHECK(ping->response.status == ResponseStatus::kOk);

  // A corrupt frame is unrecoverable: the server drops the connection.
  {
    std::string frame;
    ByteWriter w(&frame);
    const std::string payload = "not a real envelope";
    w.U32(static_cast<std::uint32_t>(payload.size()));
    w.U32(quasii::persist::Crc32c(payload.data(), payload.size()) ^ 1);
    w.Bytes(payload.data(), payload.size());
    CHECK(quasii::server::WriteFull(fx.client.fd(), frame.data(),
                                    frame.size()));
    CHECK(!fx.client.Recv().has_value());
  }
  fx.server.Stop();
  const auto counters = fx.server.counters();
  CHECK_EQ(counters.malformed, 2u);
  CHECK_GE(counters.frame_errors, 1u);
}

void TestServerOverloadAndDrain() {
  // Exec thread deliberately NOT started: the queue fills to max_inflight,
  // the excess is refused with typed kOverloaded, and a late Start() drains
  // every accepted request — none is dropped.
  QueryServer<3>::Options options;
  options.max_inflight = 4;
  ServerFixture fx(options, 200, 23, /*start=*/false);
  const Request3 req =
      Request3::MakeQuery(quasii::CountQuery<3>(MakeBox(0, 99)));
  const int total = 10;
  for (int i = 0; i < total; ++i) {
    CHECK(fx.client.Send(0, req).has_value());
  }
  // Overload rejections come back immediately, before any execution.
  int overloaded = 0;
  for (int i = 0; i < total - 4; ++i) {
    auto reply = fx.client.Recv();
    CHECK(reply.has_value());
    CHECK(reply->response.status == ResponseStatus::kOverloaded);
    ++overloaded;
  }
  std::string error;
  CHECK(fx.server.Start(&error));
  int ok = 0;
  for (int i = 0; i < 4; ++i) {
    auto reply = fx.client.Recv();
    CHECK(reply.has_value());
    CHECK(reply->response.status == ResponseStatus::kOk);
    ++ok;
  }
  fx.server.Stop();
  const auto counters = fx.server.counters();
  CHECK_EQ(counters.accepted, 4u);
  CHECK_EQ(counters.overloaded, static_cast<std::uint64_t>(overloaded));
  CHECK_EQ(ok, 4);
}

void TestServerBatchesConvergedReads() {
  // Same delayed-start trick, but under the cap: all queued requests are
  // unpinned converged reads against one target, so the exec thread's first
  // pop batches them onto the pool — and the responses still arrive in
  // admission order with oracle-identical bodies.
  QueryServer<3>::Options options;
  options.max_batch = 64;
  ServerFixture fx(options, 500, 29, /*start=*/false);
  Dataset3 data = MakeData(500, 29);
  ScanIndex<3> oracle(data);

  std::vector<Request3> reads;
  for (int i = 0; i < 24; ++i) {
    reads.push_back(Request3::MakeQuery(
        quasii::RangeQuery<3>(MakeBox(static_cast<Scalar>(i % 50), 70))));
  }
  for (const Request3& req : reads) {
    CHECK(fx.client.Send(0, req).has_value());
  }
  std::string error;
  CHECK(fx.server.Start(&error));
  std::uint64_t expect_seq = 1;
  for (const Request3& req : reads) {
    auto reply = fx.client.Recv();
    CHECK(reply.has_value());
    CHECK_EQ(reply->seq, expect_seq++);  // admission order preserved
    const Response<3> want = ExecuteRequest<3>(&oracle, req);
    CHECK_EQ(reply->body, SerializeResponse(want));
  }
  fx.server.Stop();
  const auto counters = fx.server.counters();
  CHECK_GE(counters.batches, 1u);
  CHECK_GT(counters.batched_queries, 1u);
}

void TestServerEpochPinningOverWire() {
  ServerFixture fx({});
  // Move the store off the unpinned-sentinel epoch 0 first.
  CHECK(fx.client.Call(0, *Request3::TryInsert(59999, MakeBox(2, 4)))
            ->response.accepted);
  auto stats = fx.client.Call(0, Request3::MakeStats());
  CHECK(stats.has_value());
  const std::uint64_t epoch = stats->response.epoch;
  CHECK_GT(epoch, 0u);

  Request3 pinned = Request3::MakeQuery(quasii::CountQuery<3>(MakeBox(0, 99)));
  CHECK(pinned.TryPinEpoch(epoch));
  auto ok = fx.client.Call(0, pinned);
  CHECK(ok.has_value());
  CHECK(ok->response.status == ResponseStatus::kOk);

  CHECK(fx.client.Call(0, *Request3::TryInsert(60000, MakeBox(1, 3)))
            ->response.accepted);
  auto stale = fx.client.Call(0, pinned);
  CHECK(stale.has_value());
  CHECK(stale->response.status == ResponseStatus::kEpochMismatch);
  CHECK_NE(stale->response.epoch, epoch);
  fx.server.Stop();
}

void TestServerSnapshotRequest() {
  QueryServer<3>::Options options;
  options.snapshot_path = TempPath("served.snapshot");
  ServerFixture fx(options);
  // Mutate first so the captured LSN is a real post-mutation epoch.
  CHECK(fx.client.Call(1, *Request3::TryInsert(61000, MakeBox(5, 6)))
            ->response.accepted);
  auto reply = fx.client.Call(1, Request3::MakeSnapshot());
  CHECK(reply.has_value());
  CHECK(reply->response.status == ResponseStatus::kOk);
  CHECK_GT(reply->response.snapshot_lsn, 0u);
  const std::string path = options.snapshot_path + ".1";
  const auto snap = quasii::persist::ReadSnapshot<3>(path);
  CHECK(snap.exists);
  CHECK(snap.error == quasii::persist::PersistError::kNone);
  CHECK_EQ(snap.lsn, reply->response.snapshot_lsn);
  std::remove(path.c_str());
  fx.server.Stop();
}

void TestServedRunReplaysBitIdentically() {
  // The acceptance gate in miniature: record a served mixed run, then
  // reproduce it (a) in-process and (b) over a fresh server socket, and
  // require bit-identical response streams and final index checksums.
  const std::string path = TempPath("served.workload");
  const std::size_t n = 300;
  const std::vector<Request3> ops = MixedOps(n, 90, 31);

  std::uint64_t live_checksum = kFnvBasis;
  std::vector<std::uint64_t> live_index_checksums;
  {
    QueryServer<3>::Options options;
    options.record_path = path;
    ServerFixture fx(options, n, 31);
    for (const Request3& op : ops) {
      auto reply = fx.client.Call(0, op);
      CHECK(reply.has_value());
      live_checksum = FnvBytes(live_checksum, reply->body);
    }
    fx.server.Stop();
    CHECK_EQ(fx.server.recorded(), ops.size());
    live_index_checksums = fx.server.IndexChecksums();
  }

  auto log = ReadWorkloadLog<3>(path);
  CHECK(log.error == quasii::persist::PersistError::kNone);
  CHECK_EQ(log.records.size(), ops.size());

  // (a) in-process replay.
  {
    Dataset3 data = MakeData(n, 31);
    ScanIndex<3> scan(data);
    QuasiiIndex<3> quasii_idx(data);
    std::vector<SpatialIndex<3>*> roster = {&scan, &quasii_idx};
    const auto replay = ReplayWorkload<3>(
        std::span<SpatialIndex<3>* const>(roster), log.records);
    CHECK(replay.ok);
    CHECK_EQ(replay.response_checksum, live_checksum);
    CHECK(replay.index_checksums == live_index_checksums);
  }

  // (b) over-the-socket replay against a fresh server.
  {
    ServerFixture fx({}, n, 31);
    std::uint64_t socket_checksum = kFnvBasis;
    for (const auto& rec : log.records) {
      auto reply = fx.client.Call(rec.target, rec.request);
      CHECK(reply.has_value());
      socket_checksum = FnvBytes(socket_checksum, reply->body);
    }
    fx.server.Stop();
    CHECK_EQ(socket_checksum, live_checksum);
    CHECK(fx.server.IndexChecksums() == live_index_checksums);
  }
  std::remove(path.c_str());
}

void TestServerConcurrentClients() {
  // Several pipelining clients at once: per-client responses arrive in that
  // client's admission order with matching seq numbers, and shutdown drains
  // every accepted request.
  QueryServer<3>::Options options;
  options.max_inflight = 1024;
  ServerFixture fx(options, 400, 37);
  const int extra_clients = 3;
  std::vector<std::unique_ptr<WireClient<3>>> clients;
  for (int c = 0; c < extra_clients; ++c) {
    SocketPair sp;
    fx.server.AddConnection(sp.ReleaseA());
    auto client = std::make_unique<WireClient<3>>();
    const int fd = sp.b;
    sp.b = -1;
    client->Adopt(fd);
    CHECK(client->Handshake());
    clients.push_back(std::move(client));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < extra_clients; ++c) {
    threads.emplace_back([&, c] {
      WireClient<3>& client = *clients[c];
      for (int i = 0; i < 40; ++i) {
        const std::uint8_t target = static_cast<std::uint8_t>(i % 2);
        auto reply = client.Call(
            target, Request3::MakeQuery(quasii::CountQuery<3>(
                        MakeBox(static_cast<Scalar>(c * 10 + i % 10), 80))));
        if (!reply || reply->response.status != ResponseStatus::kOk) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CHECK_EQ(failures.load(), 0);
  fx.server.Stop();
  CHECK_EQ(fx.server.counters().accepted, 3u * 40u);
}

}  // namespace

int main() {
  RUN_TEST(TestRequestRoundTrip);
  RUN_TEST(TestRequestFactoryRejects);
  RUN_TEST(TestRequestParseRejects);
  RUN_TEST(TestResponseRoundTrip);
  RUN_TEST(TestRequestFuzz);
  RUN_TEST(TestFrameRoundTrip);
  RUN_TEST(TestFrameTornAndCorrupt);
  RUN_TEST(TestFrameFuzz);
  RUN_TEST(TestThreadPoolShutdownDrains);
  RUN_TEST(TestBatchExecutorCallback);
  RUN_TEST(TestExecuteRequestOracle);
  RUN_TEST(TestEpochPinning);
  RUN_TEST(TestSnapshotHook);
  RUN_TEST(TestWorkloadLogRoundTrip);
  RUN_TEST(TestInProcessReplayDeterminism);
  RUN_TEST(TestServerEndToEnd);
  RUN_TEST(TestServerMalformedInputs);
  RUN_TEST(TestServerOverloadAndDrain);
  RUN_TEST(TestServerBatchesConvergedReads);
  RUN_TEST(TestServerEpochPinningOverWire);
  RUN_TEST(TestServerSnapshotRequest);
  RUN_TEST(TestServedRunReplaysBitIdentically);
  RUN_TEST(TestServerConcurrentClients);
  std::printf("test_server: all tests passed\n");
  return 0;
}
