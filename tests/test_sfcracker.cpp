// SFCracker invariant tests: crack boundaries must exactly partition the
// Z-code array after arbitrary query sequences, and query results must match
// the scan baseline.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "scan/scan_index.h"
#include "sfc/sfcracker_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box3;
using quasii::Dataset3;
using quasii::ObjectId;
using quasii::Point3;
using quasii::Rng;
using quasii::ScanIndex;
using quasii::SfcrackerIndex;
using quasii::ZEntry;

Box3 TestUniverse() {
  Box3 u;
  for (int d = 0; d < 3; ++d) {
    u.lo[d] = 0;
    u.hi[d] = 1000;
  }
  return u;
}

/// After any sequence of cracks, every learned boundary (v -> pos) must
/// split the entry array into `code < v` before `pos` and `code >= v` from
/// `pos` on. With positions monotone in the boundary values this is
/// equivalent to: each segment between adjacent boundaries holds exactly the
/// codes in the corresponding value interval — checkable in one pass.
void CheckBoundaryInvariants(const SfcrackerIndex<3>& index) {
  const std::vector<ZEntry> entries = index.MaterializeEntries();
  std::size_t seg_begin = 0;
  std::uint64_t seg_lo = 0;  // codes in the segment are in [seg_lo, value)
  for (const auto& [value, pos] : index.boundaries()) {
    CHECK_LE(pos, entries.size());
    CHECK_GE(pos, seg_begin);
    for (std::size_t i = seg_begin; i < pos; ++i) {
      CHECK_GE(static_cast<std::uint64_t>(entries[i].code), seg_lo);
      CHECK_LT(entries[i].code, value);
    }
    seg_begin = pos;
    seg_lo = value;
  }
  for (std::size_t i = seg_begin; i < entries.size(); ++i) {
    CHECK_GE(static_cast<std::uint64_t>(entries[i].code), seg_lo);
  }
}

void TestCrackBoundariesAfterQueries() {
  Rng rng(101);
  const Box3 universe = TestUniverse();
  const Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(5000, universe, 8.0f, &rng);
  SfcrackerIndex<3> cracker(data, universe);
  ScanIndex<3> scan(data);

  quasii::datagen::UniformQueryParams qp;
  qp.count = 60;
  qp.selectivity = 1e-3;
  qp.seed = 5;
  const std::vector<Box3> queries =
      quasii::datagen::MakeUniformQueries(universe, qp);

  std::vector<ObjectId> got, want;
  for (const Box3& q : queries) {
    got.clear();
    want.clear();
    RangeQueryInto(cracker, q, &got);
    RangeQueryInto(scan, q, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    CHECK(got == want);
    CheckBoundaryInvariants(cracker);
  }
  CHECK(cracker.initialized());
  CHECK_GT(cracker.num_boundaries(), 0u);
  // Cracking reorders but never loses or duplicates entries.
  const std::vector<ZEntry> entries = cracker.MaterializeEntries();
  CHECK_EQ(entries.size(), data.size());
  std::vector<bool> seen(data.size(), false);
  for (const ZEntry& e : entries) {
    CHECK_LT(e.id, data.size());
    CHECK(!seen[e.id]);
    seen[e.id] = true;
  }
}

void TestRepeatedQueryAddsNoCracks() {
  Rng rng(13);
  const Box3 universe = TestUniverse();
  const Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(3000, universe, 5.0f, &rng);
  SfcrackerIndex<3> cracker(data, universe);

  Box3 q;
  for (int d = 0; d < 3; ++d) {
    q.lo[d] = 400;
    q.hi[d] = 500;
  }
  std::vector<ObjectId> first, second;
  RangeQueryInto(cracker, q, &first);
  const std::size_t boundaries_after_first = cracker.num_boundaries();
  const auto cracks_after_first = cracker.stats().cracks;
  RangeQueryInto(cracker, q, &second);
  // The same query re-uses all of its boundaries: no new cracks.
  CHECK_EQ(cracker.num_boundaries(), boundaries_after_first);
  CHECK_EQ(cracker.stats().cracks, cracks_after_first);
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  CHECK(first == second);
}

}  // namespace

int main() {
  RUN_TEST(TestCrackBoundariesAfterQueries);
  RUN_TEST(TestRepeatedQueryAddsNoCracks);
  return 0;
}
