// Unit tests for the Z-order toolkit: encode/decode roundtrips, BigMin and
// LitMax against brute force, and ZRangeDecomposer exactness.

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "tests/test_util.h"
#include "zorder/bigmin.h"
#include "zorder/decompose.h"
#include "zorder/zorder.h"

namespace {

using quasii::Rng;
using quasii::zorder::BigMin;
using quasii::zorder::LitMax;
using quasii::zorder::ZCode;
using quasii::zorder::ZInterval;
using quasii::zorder::ZRangeDecomposer;
using quasii::zorder::ZTraits;

template <int D>
using Cells = std::array<std::uint32_t, D>;

template <int D>
constexpr std::uint32_t MaxCoord() {
  return (std::uint32_t{1} << ZTraits<D>::kBitsPerDim) - 1;
}

void TestEncodeDecodeRoundtrip() {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    Cells<2> c2{static_cast<std::uint32_t>(rng.UniformInt(0, MaxCoord<2>())),
                static_cast<std::uint32_t>(rng.UniformInt(0, MaxCoord<2>()))};
    CHECK(ZTraits<2>::Decode(ZTraits<2>::Encode(c2)) == c2);
    Cells<3> c3{static_cast<std::uint32_t>(rng.UniformInt(0, MaxCoord<3>())),
                static_cast<std::uint32_t>(rng.UniformInt(0, MaxCoord<3>())),
                static_cast<std::uint32_t>(rng.UniformInt(0, MaxCoord<3>()))};
    CHECK(ZTraits<3>::Decode(ZTraits<3>::Encode(c3)) == c3);
  }
}

void TestEncodeOrderWithinDim() {
  // Along a single axis (others fixed at 0), the Z-code is monotone.
  ZCode prev = ZTraits<3>::Encode(Cells<3>{0, 0, 0});
  for (std::uint32_t x = 1; x <= MaxCoord<3>(); ++x) {
    const ZCode code = ZTraits<3>::Encode(Cells<3>{x, 0, 0});
    CHECK_GT(code, prev);
    prev = code;
  }
}

/// All Z-codes of the cells inside the rectangle, sorted.
template <int D>
std::vector<ZCode> RectCodes(const Cells<D>& lo, const Cells<D>& hi) {
  std::vector<ZCode> codes;
  Cells<D> c = lo;
  while (true) {
    codes.push_back(ZTraits<D>::Encode(c));
    int d = 0;
    for (; d < D; ++d) {
      if (++c[static_cast<size_t>(d)] <= hi[static_cast<size_t>(d)]) break;
      c[static_cast<size_t>(d)] = lo[static_cast<size_t>(d)];
    }
    if (d == D) break;
  }
  std::sort(codes.begin(), codes.end());
  return codes;
}

/// Random rectangle with sides <= 7 cells anywhere in the grid (small sides
/// keep the brute-force enumeration cheap; positions span the full range).
template <int D>
void RandomRect(Rng* rng, Cells<D>* lo, Cells<D>* hi) {
  for (int d = 0; d < D; ++d) {
    const auto a = static_cast<std::uint32_t>(
        rng->UniformInt(0, static_cast<std::int64_t>(MaxCoord<D>())));
    const auto side = static_cast<std::uint32_t>(rng->UniformInt(0, 7));
    (*lo)[static_cast<size_t>(d)] = a;
    (*hi)[static_cast<size_t>(d)] = std::min(a + side, MaxCoord<D>());
  }
}

template <int D>
void TestBigMinLitMaxAgainstBruteForce() {
  Rng rng(11 + D);
  for (int iter = 0; iter < 200; ++iter) {
    Cells<D> lo, hi;
    RandomRect<D>(&rng, &lo, &hi);
    const std::vector<ZCode> codes = RectCodes<D>(lo, hi);
    const ZCode zmin = ZTraits<D>::Encode(lo);
    const ZCode zmax = ZTraits<D>::Encode(hi);
    CHECK_EQ(codes.front(), zmin);
    CHECK_EQ(codes.back(), zmax);

    for (int probe = 0; probe < 50; ++probe) {
      const ZCode z = static_cast<ZCode>(rng.UniformInt(
          0, std::min<std::int64_t>(static_cast<std::int64_t>(zmax) + 2,
                                    0xFFFFFFFFll)));
      const auto bigmin = BigMin<D>(z, zmin, zmax);
      const auto above = std::upper_bound(codes.begin(), codes.end(), z);
      if (above == codes.end()) {
        CHECK(!bigmin.has_value());
      } else {
        CHECK(bigmin.has_value());
        CHECK_EQ(*bigmin, *above);
      }
      const auto litmax = LitMax<D>(z, zmin, zmax);
      const auto lower = std::lower_bound(codes.begin(), codes.end(), z);
      if (lower == codes.begin()) {
        CHECK(!litmax.has_value());
      } else {
        CHECK(litmax.has_value());
        CHECK_EQ(*litmax, *std::prev(lower));
      }
    }
  }
}

template <int D>
void TestDecomposeExact() {
  Rng rng(23 + D);
  for (int iter = 0; iter < 100; ++iter) {
    Cells<D> lo, hi;
    RandomRect<D>(&rng, &lo, &hi);
    std::vector<ZInterval> intervals;
    ZRangeDecomposer<D>::Decompose(lo, hi, /*max_intervals=*/0, &intervals);

    CHECK(!intervals.empty());
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      CHECK_LE(intervals[i].lo, intervals[i].hi);
      if (i > 0) {
        // Sorted, disjoint, and non-adjacent (adjacent ranges are merged).
        CHECK_GT(static_cast<std::uint64_t>(intervals[i].lo),
                 static_cast<std::uint64_t>(intervals[i - 1].hi) + 1);
      }
      covered += static_cast<std::uint64_t>(intervals[i].hi) -
                 static_cast<std::uint64_t>(intervals[i].lo) + 1;
    }
    // With an unbounded budget the union is exactly the rectangle's cells.
    const std::vector<ZCode> codes = RectCodes<D>(lo, hi);
    CHECK_EQ(covered, codes.size());
    for (const ZCode code : codes) {
      const auto it = std::upper_bound(
          intervals.begin(), intervals.end(), code,
          [](ZCode v, const ZInterval& iv) { return v < iv.lo; });
      CHECK(it != intervals.begin());
      CHECK_GE(code, std::prev(it)->lo);
      CHECK_LE(code, std::prev(it)->hi);
    }
  }
}

template <int D>
void TestDecomposeBudgetIsSuperset() {
  Rng rng(37 + D);
  for (int iter = 0; iter < 50; ++iter) {
    Cells<D> lo, hi;
    RandomRect<D>(&rng, &lo, &hi);
    std::vector<ZInterval> bounded;
    ZRangeDecomposer<D>::Decompose(lo, hi, /*max_intervals=*/4, &bounded);
    // Budgeted output must still cover every cell of the rectangle.
    for (const ZCode code : RectCodes<D>(lo, hi)) {
      bool found = false;
      for (const ZInterval& iv : bounded) {
        if (code >= iv.lo && code <= iv.hi) {
          found = true;
          break;
        }
      }
      CHECK(found);
    }
  }
}

}  // namespace

int main() {
  RUN_TEST(TestEncodeDecodeRoundtrip);
  RUN_TEST(TestEncodeOrderWithinDim);
  RUN_TEST(TestBigMinLitMaxAgainstBruteForce<2>);
  RUN_TEST(TestBigMinLitMaxAgainstBruteForce<3>);
  RUN_TEST(TestDecomposeExact<2>);
  RUN_TEST(TestDecomposeExact<3>);
  RUN_TEST(TestDecomposeBudgetIsSuperset<2>);
  RUN_TEST(TestDecomposeBudgetIsSuperset<3>);
  return 0;
}
