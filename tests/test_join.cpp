// Join and conjunctive-plan suite: every roster implementation — the Scan
// nested loop, the R-Tree synchronized traversal, QUASII's crack-driven
// lockstep descent, and the generic index-nested-loop fallback the rest
// inherit — must produce the exact canonical pair list of a brute-force
// oracle, on uniform, clustered, and degenerate data, in 2D and 3D.
// Conjunctive plans must equal the intersection of their terms' single-
// predicate results; QUASII joins must converge both sides and beat Scan's
// candidate count; concurrent A⋈B / B⋈A joins must neither deadlock nor
// diverge.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/dataset.h"
#include "common/executor.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/spatial_index.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "grid/grid_index.h"
#include "mosaic/mosaic_index.h"
#include "quasii/quasii_index.h"
#include "rtree/rtree_index.h"
#include "scan/scan_index.h"
#include "sfc/sfcracker_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box2;
using quasii::Box3;
using quasii::ConjunctiveTerm;
using quasii::Dataset2;
using quasii::Dataset3;
using quasii::GridAssignment;
using quasii::GridIndex;
using quasii::IdPair;
using quasii::JoinQuery;
using quasii::MosaicIndex;
using quasii::ObjectId;
using quasii::QuasiiIndex;
using quasii::RangePredicate;
using quasii::RangeQuery;
using quasii::Rng;
using quasii::RTreeIndex;
using quasii::ScanIndex;
using quasii::SfcrackerIndex;
using quasii::SpatialIndex;
using quasii::ThreadPool;
using quasii::VectorPairSink;
using quasii::VectorSink;

template <int D>
using IndexFactory = std::function<std::unique_ptr<SpatialIndex<D>>(
    const quasii::Dataset<D>&, const quasii::Box<D>&)>;

/// Every join code path in one list: Scan (the nested-loop oracle), R-Tree
/// (synchronized node-pair traversal), QUASII (crack-driven lockstep
/// descent), and SFCracker / Grid / Mosaic (the generic index-nested-loop
/// default — no override of their own).
template <int D>
std::vector<std::pair<std::string, IndexFactory<D>>> JoinRoster() {
  std::vector<std::pair<std::string, IndexFactory<D>>> roster;
  roster.emplace_back("Scan", [](const quasii::Dataset<D>& d,
                                 const quasii::Box<D>&) {
    return std::make_unique<ScanIndex<D>>(d);
  });
  roster.emplace_back("SFCracker", [](const quasii::Dataset<D>& d,
                                      const quasii::Box<D>& u) {
    return std::make_unique<SfcrackerIndex<D>>(d, u);
  });
  roster.emplace_back("Grid", [](const quasii::Dataset<D>& d,
                                 const quasii::Box<D>& u) {
    typename GridIndex<D>::Params p;
    p.partitions_per_dim = 10;
    p.assignment = GridAssignment::kQueryExtension;
    return std::make_unique<GridIndex<D>>(d, u, p);
  });
  roster.emplace_back("Mosaic", [](const quasii::Dataset<D>& d,
                                   const quasii::Box<D>& u) {
    typename MosaicIndex<D>::Params p;
    p.leaf_capacity = 256;
    return std::make_unique<MosaicIndex<D>>(d, u, p);
  });
  roster.emplace_back("R-Tree", [](const quasii::Dataset<D>& d,
                                   const quasii::Box<D>&) {
    return std::make_unique<RTreeIndex<D>>(d);
  });
  roster.emplace_back("QUASII", [](const quasii::Dataset<D>& d,
                                   const quasii::Box<D>&) {
    typename QuasiiIndex<D>::Params p;
    p.leaf_threshold = 256;
    return std::make_unique<QuasiiIndex<D>>(d, p);
  });
  return roster;
}

/// Brute-force A⋈B oracle over the raw datasets (ids are positions — the
/// same assignment the indexes use). Output is canonical by construction:
/// lexicographically ascending, no duplicates.
template <int D>
std::vector<IdPair> OraclePairs(const quasii::Dataset<D>& a,
                                const quasii::Dataset<D>& b) {
  std::vector<IdPair> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (a[i].Intersects(b[j])) {
        out.emplace_back(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
      }
    }
  }
  return out;
}

/// Brute-force self-join oracle: each unordered pair once, no diagonal.
template <int D>
std::vector<IdPair> OracleSelfPairs(const quasii::Dataset<D>& a) {
  std::vector<IdPair> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      if (a[i].Intersects(a[j])) {
        out.emplace_back(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
      }
    }
  }
  return out;
}

template <int D>
std::vector<IdPair> RunJoin(SpatialIndex<D>& left, SpatialIndex<D>& right) {
  std::vector<IdPair> pairs;
  VectorPairSink sink(&pairs);
  left.Execute(JoinQuery<D>(right), sink);
  return pairs;
}

/// Checks the canonical-order guarantee directly: strictly increasing
/// lexicographic sequence (which implies uniqueness), and for self-joins
/// additionally `left < right` (no diagonal, each unordered pair once).
void CheckCanonical(const std::vector<IdPair>& pairs, bool self_join,
                    const char* label) {
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (self_join) CHECK_LT(pairs[i].first, pairs[i].second);
    if (i > 0 && !(pairs[i - 1] < pairs[i])) {
      std::fprintf(stderr, "[%s] pair %zu out of order\n", label, i);
      CHECK(pairs[i - 1] < pairs[i]);
    }
  }
}

template <int D>
void CheckJoinMatrix(const quasii::Dataset<D>& a, const quasii::Dataset<D>& b,
                     const quasii::Box<D>& universe, const char* label) {
  const std::vector<IdPair> expected = OraclePairs<D>(a, b);
  const auto roster = JoinRoster<D>();
  for (const auto& [name_a, make_a] : roster) {
    for (const auto& [name_b, make_b] : roster) {
      auto left = make_a(a, universe);
      auto right = make_b(b, universe);
      left->Build();
      right->Build();
      // Twice: the first join cracks the adaptive sides, the second runs
      // over the converged structure (possibly shared-locked) — both must
      // produce the identical canonical list.
      for (int round = 0; round < 2; ++round) {
        const std::vector<IdPair> got = RunJoin<D>(*left, *right);
        CheckCanonical(got, /*self_join=*/false, label);
        if (got != expected) {
          std::fprintf(stderr,
                       "[%s] %s ⋈ %s round %d: %zu pairs, want %zu\n", label,
                       name_a.c_str(), name_b.c_str(), round, got.size(),
                       expected.size());
          CHECK(got == expected);
        }
      }
    }
  }
}

template <int D>
void CheckSelfJoins(const quasii::Dataset<D>& a,
                    const quasii::Box<D>& universe, const char* label) {
  const std::vector<IdPair> expected = OracleSelfPairs<D>(a);
  for (const auto& [name, make] : JoinRoster<D>()) {
    auto index = make(a, universe);
    index->Build();
    for (int round = 0; round < 2; ++round) {
      const std::vector<IdPair> got = RunJoin<D>(*index, *index);
      CheckCanonical(got, /*self_join=*/true, label);
      if (got != expected) {
        std::fprintf(stderr, "[%s] %s self-join round %d: %zu pairs, want "
                             "%zu\n",
                     label, name.c_str(), round, got.size(), expected.size());
        CHECK(got == expected);
      }
    }
  }
}

template <int D>
quasii::Box<D> MakeCube(float lo, float hi) {
  quasii::Box<D> b;
  for (int d = 0; d < D; ++d) {
    b.lo[d] = lo;
    b.hi[d] = hi;
  }
  return b;
}

void TestIndexJoinMatrix3d() {
  quasii::datagen::UniformDatasetParams pa;
  pa.count = 1200;
  pa.seed = 7;
  const Dataset3 a = quasii::datagen::MakeUniformDataset(pa);
  const Box3 universe = quasii::datagen::UniformUniverse(pa);
  Rng rng(11);
  const Dataset3 b =
      quasii::datagen::MakeRandomBoxes<3>(900, universe, 30.0f, &rng);
  CheckJoinMatrix<3>(a, b, universe, "uniform3d");
}

void TestIndexJoinMatrix2d() {
  Rng rng(13);
  const Box2 universe = MakeCube<2>(-500, 500);
  const Dataset2 a =
      quasii::datagen::MakeRandomBoxes<2>(1000, universe, 25.0f, &rng);
  const Dataset2 b =
      quasii::datagen::MakeRandomBoxes<2>(800, universe, 40.0f, &rng);
  CheckJoinMatrix<2>(a, b, universe, "random2d");
}

void TestClusteredJoin3d() {
  // Clustered left side against a uniform right side: dense pair hotspots
  // exercise the synchronized traversals' pruning far from the clusters.
  quasii::datagen::UniformDatasetParams pu;
  pu.count = 1000;
  pu.seed = 19;
  const Dataset3 b = quasii::datagen::MakeUniformDataset(pu);
  const Box3 universe = quasii::datagen::UniformUniverse(pu);
  Rng rng(23);
  Dataset3 a;
  for (int c = 0; c < 5; ++c) {
    quasii::Point<3> centre;
    for (int d = 0; d < 3; ++d) {
      centre[d] = static_cast<float>(rng.Uniform(universe.lo[d] + 100,
                                                 universe.hi[d] - 100));
    }
    for (int i = 0; i < 200; ++i) {
      Box3 box;
      for (int d = 0; d < 3; ++d) {
        const float lo = centre[d] + static_cast<float>(rng.Uniform(-50, 50));
        box.lo[d] = lo;
        box.hi[d] = lo + static_cast<float>(rng.Uniform(0, 10));
      }
      a.push_back(box);
    }
  }
  CheckJoinMatrix<3>(a, b, universe, "clustered3d");
}

void TestSelfJoinSemantics() {
  // Duplicate-heavy data: 60 identical boxes form a 60-choose-2 clique;
  // every implementation must report each unordered pair exactly once and
  // never the diagonal, in identical canonical order.
  quasii::datagen::UniformDatasetParams p;
  p.count = 700;
  p.seed = 29;
  Dataset3 a = quasii::datagen::MakeUniformDataset(p);
  const Box3 universe = quasii::datagen::UniformUniverse(p);
  const Box3 dup = MakeCube<3>(100, 130);
  for (int i = 0; i < 60; ++i) a.push_back(dup);
  CheckSelfJoins<3>(a, universe, "self3d");

  Rng rng(31);
  const Box2 universe2 = MakeCube<2>(0, 1000);
  Dataset2 a2 =
      quasii::datagen::MakeRandomBoxes<2>(800, universe2, 35.0f, &rng);
  for (int i = 0; i < 40; ++i) a2.push_back(MakeCube<2>(400, 420));
  CheckSelfJoins<2>(a2, universe2, "self2d");
}

void TestZeroExtentAndDegenerateJoins() {
  const Box3 universe = MakeCube<3>(0, 100);

  // Zero-extent boxes on both sides: coincident points must join (closed
  // boxes intersect at a shared point), as must a point sitting exactly on
  // another box's corner — and the same data self-joins correctly.
  Dataset3 a;
  a.push_back(MakeCube<3>(10, 10));  // point P
  a.push_back(MakeCube<3>(10, 10));  // duplicate of P
  a.push_back(MakeCube<3>(20, 30));  // volume whose corner is (20,20,20)
  a.push_back(MakeCube<3>(50, 50));  // isolated point
  Dataset3 b;
  b.push_back(MakeCube<3>(10, 10));  // P again: meets both copies
  b.push_back(MakeCube<3>(20, 20));  // point on the volume's corner
  b.push_back(MakeCube<3>(5, 10));   // volume whose corner is P
  b.push_back(MakeCube<3>(70, 70));  // matches nothing
  CheckJoinMatrix<3>(a, b, universe, "zero-extent");
  CheckSelfJoins<3>(a, universe, "zero-extent-self");

  // Empty datasets on either side (or both) produce no pairs and no crash.
  const Dataset3 empty;
  for (const auto& [name, make] : JoinRoster<3>()) {
    auto ia = make(a, universe);
    auto ib = make(empty, universe);
    ia->Build();
    ib->Build();
    CHECK(RunJoin<3>(*ia, *ib).empty());
    CHECK(RunJoin<3>(*ib, *ia).empty());
    CHECK(RunJoin<3>(*ib, *ib).empty());
  }
}

void TestStreamJoin() {
  quasii::datagen::UniformDatasetParams p;
  p.count = 2000;
  p.seed = 37;
  const Dataset3 a = quasii::datagen::MakeUniformDataset(p);
  const Box3 universe = quasii::datagen::UniformUniverse(p);

  quasii::datagen::UniformQueryParams qp;
  qp.count = 30;
  qp.selectivity = 1e-2;
  qp.seed = 41;
  std::vector<Box3> stream = quasii::datagen::MakeUniformQueries(universe, qp);
  stream.push_back(MakeCube<3>(600, 400));  // inverted: matches nothing
  stream.push_back(Box3(a[0].Center(), a[0].Center()));  // zero-extent hit

  // Oracle: (object id, stream position) for every non-empty stream box.
  std::vector<IdPair> expected;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < stream.size(); ++j) {
      if (!stream[j].IsEmpty() && a[i].Intersects(stream[j])) {
        expected.emplace_back(static_cast<ObjectId>(i),
                              static_cast<ObjectId>(j));
      }
    }
  }
  CHECK_GT(expected.size(), 0u);

  const std::vector<Box3> empty_stream;
  for (const auto& [name, make] : JoinRoster<3>()) {
    auto index = make(a, universe);
    index->Build();
    for (int round = 0; round < 2; ++round) {
      std::vector<IdPair> got;
      VectorPairSink sink(&got);
      index->Execute(JoinQuery<3>(stream), sink);
      CheckCanonical(got, /*self_join=*/false, "stream");
      if (got != expected) {
        std::fprintf(stderr, "[stream] %s round %d: %zu pairs, want %zu\n",
                     name.c_str(), round, got.size(), expected.size());
        CHECK(got == expected);
      }
    }
    std::vector<IdPair> none;
    VectorPairSink none_sink(&none);
    index->Execute(JoinQuery<3>(empty_stream), none_sink);
    CHECK(none.empty());
  }
}

void TestConjunctivePlansMatchIntersectedTerms() {
  quasii::datagen::UniformDatasetParams p;
  p.count = 4000;
  p.seed = 43;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(p);
  const Box3 universe = quasii::datagen::UniformUniverse(p);
  ScanIndex<3> scan(data);

  Rng rng(47);
  const auto random_box = [&](double frac) {
    Box3 b;
    for (int d = 0; d < 3; ++d) {
      const float extent = universe.Extent(d);
      const float len = static_cast<float>(frac) * extent;
      const float lo = universe.lo[d] +
                       static_cast<float>(rng.Uniform(0, 1)) * (extent - len);
      b.lo[d] = lo;
      b.hi[d] = lo + len;
    }
    return b;
  };

  auto roster = JoinRoster<3>();
  std::vector<std::unique_ptr<SpatialIndex<3>>> indexes;
  for (const auto& [name, make] : roster) {
    indexes.push_back(make(data, universe));
    indexes.back()->Build();
  }

  std::uint64_t nonempty = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<ConjunctiveTerm<3>> terms;
    const int nterms = 1 + trial % 3;
    for (int t = 0; t < nterms; ++t) {
      ConjunctiveTerm<3> term;
      term.box = random_box(0.35 + 0.2 * t);
      // Every third trial mixes a containment predicate into the plan.
      if (trial % 3 == 2 && t == 1) {
        term.predicate = RangePredicate::kContainedBy;
      }
      terms.push_back(term);
    }

    // Reference: intersect the terms' individual single-predicate results.
    std::vector<ObjectId> want;
    for (int t = 0; t < nterms; ++t) {
      std::vector<ObjectId> ids;
      VectorSink sink(&ids);
      scan.Execute(RangeQuery<3>(terms[static_cast<std::size_t>(t)].box,
                                 terms[static_cast<std::size_t>(t)].predicate),
                   sink);
      std::sort(ids.begin(), ids.end());
      if (t == 0) {
        want = ids;
      } else {
        std::vector<ObjectId> merged;
        std::set_intersection(want.begin(), want.end(), ids.begin(), ids.end(),
                              std::back_inserter(merged));
        want = std::move(merged);
      }
    }
    nonempty += want.empty() ? 0 : 1;

    const quasii::Query3 q = quasii::ConjunctiveQuery<3>(terms);
    for (std::size_t i = 0; i < indexes.size(); ++i) {
      std::vector<ObjectId> got;
      VectorSink sink(&got);
      indexes[i]->Execute(q, sink);
      std::sort(got.begin(), got.end());
      if (got != want) {
        std::fprintf(stderr, "[conjunction] %s trial %d: %zu ids, want %zu\n",
                     roster[i].first.c_str(), trial, got.size(), want.size());
        CHECK(got == want);
      }
    }
  }
  CHECK_GT(nonempty, 0u);  // the trials actually exercised non-empty plans
}

void TestConjunctionWithDisjointTermsStillSound() {
  // An object can straddle two disjoint term boxes — intersecting the term
  // boxes up front would wrongly prune it. The wide slab below intersects
  // both distant terms; the small boxes match only one each.
  const Box3 universe = MakeCube<3>(0, 1000);
  Dataset3 data;
  Box3 slab = MakeCube<3>(0, 1000);  // spans everything
  data.push_back(slab);
  data.push_back(MakeCube<3>(100, 120));  // inside term 1 only
  data.push_back(MakeCube<3>(800, 820));  // inside term 2 only
  std::vector<ConjunctiveTerm<3>> terms(2);
  terms[0].box = MakeCube<3>(90, 130);
  terms[1].box = MakeCube<3>(790, 830);
  CHECK(!terms[0].box.Intersects(terms[1].box));

  const quasii::Query3 q = quasii::ConjunctiveQuery<3>(terms);
  for (const auto& [name, make] : JoinRoster<3>()) {
    auto index = make(data, universe);
    index->Build();
    std::vector<ObjectId> got;
    VectorSink sink(&got);
    index->Execute(q, sink);
    CHECK_EQ(got.size(), 1u);
    CHECK_EQ(got[0], 0u);
  }
}

void TestQuasiiJoinConvergenceInvariants() {
  quasii::datagen::UniformDatasetParams pa;
  pa.count = 4096;
  pa.seed = 53;
  const Dataset3 a = quasii::datagen::MakeUniformDataset(pa);
  const Box3 universe = quasii::datagen::UniformUniverse(pa);
  Rng rng(59);
  const Dataset3 b =
      quasii::datagen::MakeRandomBoxes<3>(3000, universe, 25.0f, &rng);

  // Self-join: the join's own crack traffic must fully converge the index —
  // afterwards ConvergedFor(kJoin) answers true (the replayed partitions
  // are all within threshold) and a repeated join adds zero cracks.
  {
    QuasiiIndex<3> q(a);
    q.Build();
    const quasii::Query3 self = JoinQuery<3>(q);
    CHECK(!q.ConvergedFor(self));  // untouched index still cracks
    const std::vector<IdPair> first = RunJoin<3>(q, q);
    CHECK(first == OracleSelfPairs<3>(a));
    CHECK_GT(q.stats().cracks, 0u);
    CHECK(q.ConvergedFor(self));
    const std::uint64_t cracks_after_first = q.stats().cracks;
    const std::uint64_t moved_after_first = q.stats().objects_moved;
    const std::vector<IdPair> second = RunJoin<3>(q, q);
    CHECK(second == first);
    CHECK_EQ(q.stats().cracks, cracks_after_first);
    CHECK_EQ(q.stats().objects_moved, moved_after_first);
    CHECK(q.ConvergedFor(self));
  }

  // Two-index join: both hierarchies converge from join traffic alone — a
  // repeated join cracks neither side.
  {
    QuasiiIndex<3> qa(a);
    QuasiiIndex<3> qb(b);
    qa.Build();
    qb.Build();
    const std::vector<IdPair> expected = OraclePairs<3>(a, b);
    const std::vector<IdPair> first = RunJoin<3>(qa, qb);
    CHECK(first == expected);
    const std::uint64_t cracks_a = qa.stats().cracks;
    const std::uint64_t cracks_b = qb.stats().cracks;
    CHECK_GT(cracks_a, 0u);
    CHECK_GT(cracks_b, 0u);
    const std::vector<IdPair> second = RunJoin<3>(qa, qb);
    CHECK(second == expected);
    CHECK_EQ(qa.stats().cracks, cracks_a);
    CHECK_EQ(qb.stats().cracks, cracks_b);
    // The transposed join reuses the converged structures too.
    std::vector<IdPair> transposed = RunJoin<3>(qb, qa);
    for (IdPair& pr : transposed) std::swap(pr.first, pr.second);
    std::sort(transposed.begin(), transposed.end());
    CHECK(transposed == expected);
    CHECK_EQ(qa.stats().cracks, cracks_a);
    CHECK_EQ(qb.stats().cracks, cracks_b);
  }

  // The headline claim: identical pair output at strictly fewer candidate
  // tests than the Scan nested loop.
  {
    ScanIndex<3> scan(a);
    scan.Build();
    scan.ResetStats();
    const std::vector<IdPair> scan_pairs = RunJoin<3>(scan, scan);
    QuasiiIndex<3> q(a);
    q.Build();
    q.ResetStats();
    const std::vector<IdPair> quasii_pairs = RunJoin<3>(q, q);
    CHECK(quasii_pairs == scan_pairs);
    CHECK_GT(scan.stats().objects_tested, 0u);
    CHECK_LT(q.stats().objects_tested, scan.stats().objects_tested);
  }
}

void TestConcurrentJoins() {
  quasii::datagen::UniformDatasetParams pa;
  pa.count = 2000;
  pa.seed = 61;
  const Dataset3 a = quasii::datagen::MakeUniformDataset(pa);
  const Box3 universe = quasii::datagen::UniformUniverse(pa);
  Rng rng(67);
  const Dataset3 b =
      quasii::datagen::MakeRandomBoxes<3>(1500, universe, 30.0f, &rng);

  std::vector<IdPair> expected_ab = OraclePairs<3>(a, b);
  std::vector<IdPair> expected_ba = OraclePairs<3>(b, a);

  QuasiiIndex<3> qa(a);
  QuasiiIndex<3> qb(b);
  qa.Build();
  qb.Build();

  // Four workers, half joining A⋈B and half B⋈A concurrently: the global
  // address-order lock acquisition must neither deadlock nor let a shared
  // join observe a half-cracked partner. A fifth lane interleaves range
  // queries (their cracks contend with the joins' exclusive phases).
  constexpr int kRounds = 6;
  std::atomic<std::uint64_t> failures{0};
  ThreadPool pool(5);
  for (int w = 0; w < 4; ++w) {
    const bool forward = (w % 2 == 0);
    pool.Submit([&, forward] {
      for (int r = 0; r < kRounds; ++r) {
        const std::vector<IdPair> got = forward ? RunJoin<3>(qa, qb)
                                                : RunJoin<3>(qb, qa);
        const std::vector<IdPair>& want = forward ? expected_ab : expected_ba;
        if (got != want) failures.fetch_add(1);
      }
    });
  }
  pool.Submit([&] {
    Rng qrng(71);
    std::vector<ObjectId> ids;
    VectorSink sink(&ids);
    for (int r = 0; r < 40; ++r) {
      Box3 probe;
      for (int d = 0; d < 3; ++d) {
        const float lo = universe.lo[d] +
                         static_cast<float>(qrng.Uniform(0, 1)) *
                             universe.Extent(d) * 0.8f;
        probe.lo[d] = lo;
        probe.hi[d] = lo + universe.Extent(d) * 0.1f;
      }
      ids.clear();
      qa.Execute(RangeQuery<3>(probe), sink);
      ids.clear();
      qb.Execute(RangeQuery<3>(probe), sink);
    }
  });
  pool.Wait();
  CHECK_EQ(failures.load(), 0u);
}

}  // namespace

int main() {
  RUN_TEST(TestIndexJoinMatrix3d);
  RUN_TEST(TestIndexJoinMatrix2d);
  RUN_TEST(TestClusteredJoin3d);
  RUN_TEST(TestSelfJoinSemantics);
  RUN_TEST(TestZeroExtentAndDegenerateJoins);
  RUN_TEST(TestStreamJoin);
  RUN_TEST(TestConjunctivePlansMatchIntersectedTerms);
  RUN_TEST(TestConjunctionWithDisjointTermsStillSound);
  RUN_TEST(TestQuasiiJoinConvergenceInvariants);
  RUN_TEST(TestConcurrentJoins);
  return 0;
}
