// Cross-index equivalence suite: for generated query workloads over the
// uniform, neuro, and random-box datasets, every index must return exactly
// the Scan baseline's result set.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "common/spatial_index.h"
#include "datagen/neuro.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "grid/grid_index.h"
#include "mosaic/mosaic_index.h"
#include "quasii/quasii_index.h"
#include "rtree/rtree_index.h"
#include "scan/scan_index.h"
#include "sfc/sfc_index.h"
#include "sfc/sfcracker_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box2;
using quasii::Box3;
using quasii::BoundingBoxOf;
using quasii::Dataset2;
using quasii::Dataset3;
using quasii::GridAssignment;
using quasii::GridIndex;
using quasii::MosaicIndex;
using quasii::ObjectId;
using quasii::QuasiiIndex;
using quasii::Rng;
using quasii::RTreeIndex;
using quasii::ScanIndex;
using quasii::SfcIndex;
using quasii::SfcQueryStrategy;
using quasii::SfcrackerIndex;
using quasii::SpatialIndex;

template <int D>
std::vector<std::unique_ptr<SpatialIndex<D>>> MakeChallengers(
    const quasii::Dataset<D>& data, const quasii::Box<D>& universe) {
  std::vector<std::unique_ptr<SpatialIndex<D>>> v;
  v.push_back(std::make_unique<SfcIndex<D>>(data, universe));
  {
    typename SfcIndex<D>::Params p;
    p.strategy = SfcQueryStrategy::kBigMinScan;
    v.push_back(std::make_unique<SfcIndex<D>>(data, universe, p));
  }
  v.push_back(std::make_unique<SfcrackerIndex<D>>(data, universe));
  {
    typename GridIndex<D>::Params p;
    p.partitions_per_dim = 20;
    p.assignment = GridAssignment::kQueryExtension;
    v.push_back(std::make_unique<GridIndex<D>>(data, universe, p));
  }
  {
    typename GridIndex<D>::Params p;
    p.partitions_per_dim = 20;
    p.assignment = GridAssignment::kReplication;
    v.push_back(std::make_unique<GridIndex<D>>(data, universe, p));
  }
  {
    typename MosaicIndex<D>::Params p;
    p.leaf_capacity = 256;
    v.push_back(std::make_unique<MosaicIndex<D>>(data, universe, p));
  }
  v.push_back(std::make_unique<RTreeIndex<D>>(data));
  {
    typename QuasiiIndex<D>::Params p;
    p.leaf_threshold = 256;
    v.push_back(std::make_unique<QuasiiIndex<D>>(data, p));
  }
  return v;
}

template <int D>
void CheckAllAgainstScan(const quasii::Dataset<D>& data,
                         const quasii::Box<D>& universe,
                         const std::vector<quasii::Box<D>>& queries,
                         const char* label) {
  ScanIndex<D> scan(data);
  auto challengers = MakeChallengers<D>(data, universe);
  for (auto& index : challengers) index->Build();

  std::vector<ObjectId> want, got;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    want.clear();
    RangeQueryInto(scan, queries[qi], &want);
    std::sort(want.begin(), want.end());
    for (auto& index : challengers) {
      got.clear();
      RangeQueryInto(*index, queries[qi], &got);
      std::sort(got.begin(), got.end());
      if (got != want) {
        std::fprintf(stderr, "[%s] %s disagrees with Scan on query %zu "
                             "(got %zu ids, want %zu)\n",
                     label, std::string(index->name()).c_str(), qi,
                     got.size(), want.size());
        CHECK(got == want);
      }
    }
  }
}

/// ~50 uniform + ~50 clustered queries, the mix the paper evaluates.
template <int D>
std::vector<quasii::Box<D>> MixedWorkload(const quasii::Box<D>& universe,
                                          const quasii::Dataset<D>& data,
                                          double selectivity,
                                          std::uint64_t seed) {
  quasii::datagen::UniformQueryParams up;
  up.count = 50;
  up.selectivity = selectivity;
  up.seed = seed;
  std::vector<quasii::Box<D>> queries =
      quasii::datagen::MakeUniformQueries(universe, up);
  quasii::datagen::ClusteredQueryParams cp;
  cp.clusters = 5;
  cp.queries_per_cluster = 10;
  cp.selectivity = selectivity;
  cp.seed = seed + 1;
  const std::vector<quasii::Box<D>> clustered =
      quasii::datagen::MakeClusteredQueries(universe, data, cp);
  queries.insert(queries.end(), clustered.begin(), clustered.end());
  return queries;
}

void TestUniformDatasetEquivalence() {
  quasii::datagen::UniformDatasetParams p;
  p.count = 20000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(p);
  const Box3 universe = quasii::datagen::UniformUniverse(p);
  const auto queries = MixedWorkload<3>(universe, data, 1e-3, 9);
  CheckAllAgainstScan<3>(data, universe, queries, "uniform");
}

void TestNeuroDatasetEquivalence() {
  quasii::datagen::NeuroDatasetParams p;
  p.count = 20000;
  const Dataset3 data = quasii::datagen::MakeNeuroDataset(p);
  const Box3 universe = quasii::datagen::NeuroUniverse(p);
  const auto queries = MixedWorkload<3>(universe, data, 1e-3, 17);
  CheckAllAgainstScan<3>(data, universe, queries, "neuro");
}

void TestRandomBoxes2dEquivalence() {
  Rng rng(29);
  Box2 universe;
  for (int d = 0; d < 2; ++d) {
    universe.lo[d] = -500;
    universe.hi[d] = 500;
  }
  const Dataset2 data =
      quasii::datagen::MakeRandomBoxes<2>(15000, universe, 12.0f, &rng);
  const auto queries = MixedWorkload<2>(universe, data, 1e-3, 31);
  CheckAllAgainstScan<2>(data, universe, queries, "random2d");
}

void TestDegenerateDatasets() {
  // Empty dataset: no index may crash or return anything.
  const Dataset3 empty;
  Box3 universe;
  for (int d = 0; d < 3; ++d) {
    universe.lo[d] = 0;
    universe.hi[d] = 100;
  }
  Box3 q;
  for (int d = 0; d < 3; ++d) {
    q.lo[d] = 10;
    q.hi[d] = 20;
  }
  for (auto& index : MakeChallengers<3>(empty, universe)) {
    index->Build();
    std::vector<ObjectId> got;
    RangeQueryInto(*index, q, &got);
    CHECK(got.empty());
  }

  // All-identical boxes: stresses duplicate-key handling (QUASII freezing,
  // Mosaic's depth cap).
  Dataset3 dup;
  Box3 b;
  for (int d = 0; d < 3; ++d) {
    b.lo[d] = 40;
    b.hi[d] = 42;
  }
  for (int i = 0; i < 5000; ++i) dup.push_back(b);
  const auto queries = MixedWorkload<3>(universe, dup, 1e-2, 43);
  CheckAllAgainstScan<3>(dup, universe, queries, "duplicates");
}

/// Zero-extent queries (`lo == hi` in some or all dimensions) are valid
/// closed boxes — point, line, and plane probes — and must never be
/// swallowed by the `IsEmpty()` guards (`box.h` documents the semantics:
/// only `lo > hi` is empty). Roster-wide equivalence against Scan, with
/// probes at object centres so non-empty results prove nothing was dropped.
void TestZeroExtentQueriesAcrossRoster() {
  quasii::datagen::UniformDatasetParams p;
  p.count = 12000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(p);
  const Box3 universe = quasii::datagen::UniformUniverse(p);

  Rng rng(71);
  std::vector<Box3> queries;
  for (int i = 0; i < 40; ++i) {
    // Centre of a random object: guaranteed at least one hit.
    const auto centre =
        data[static_cast<std::size_t>(rng.UniformInt(
                 0, static_cast<std::int64_t>(data.size()) - 1))]
            .Center();
    queries.push_back(Box3(centre, centre));  // fully zero-extent (point)
    Box3 plane(centre, centre);               // zero-extent in dim 0 only
    plane.lo[1] = universe.lo[1];
    plane.hi[1] = universe.hi[1];
    plane.lo[2] = universe.lo[2];
    plane.hi[2] = universe.hi[2];
    queries.push_back(plane);
  }
  for (const Box3& q : queries) CHECK(!q.IsEmpty());

  // Every zero-extent probe at an object centre must find that object.
  ScanIndex<3> scan(data);
  std::uint64_t total = 0;
  for (const Box3& q : queries) {
    std::vector<ObjectId> got;
    RangeQueryInto(scan, q, &got);
    CHECK_GT(got.size(), 0u);
    total += got.size();
  }
  CHECK_GT(total, 0u);

  CheckAllAgainstScan<3>(data, universe, queries, "zero-extent");
}

void TestInvertedQueryReturnsNothingEverywhere() {
  // An inverted (empty) query box must return nothing from any index and,
  // crucially, must not corrupt the incremental indexes' internal order:
  // subsequent valid queries still match Scan.
  quasii::datagen::UniformDatasetParams p;
  p.count = 8000;
  Dataset3 data = quasii::datagen::MakeUniformDataset(p);
  const Box3 universe = quasii::datagen::UniformUniverse(p);
  // An object spanning the inverted gap: the naive closed-interval
  // `Intersects` would report it for the inverted box below, so only an
  // explicit `IsEmpty` guard keeps the result empty.
  data.push_back(universe);
  Box3 inverted;
  for (int d = 0; d < 3; ++d) {
    inverted.lo[d] = 600;
    inverted.hi[d] = 400;  // lo > hi: empty by construction
  }
  CHECK(inverted.IsEmpty());

  ScanIndex<3> scan(data);
  auto challengers = MakeChallengers<3>(data, universe);
  std::vector<ObjectId> got, want;
  for (auto& index : challengers) {
    index->Build();
    got.clear();
    RangeQueryInto(*index, inverted, &got);
    CHECK(got.empty());
  }
  const auto queries = MixedWorkload<3>(universe, data, 1e-3, 57);
  for (const Box3& q : queries) {
    want.clear();
    RangeQueryInto(scan, q, &want);
    std::sort(want.begin(), want.end());
    for (auto& index : challengers) {
      got.clear();
      RangeQueryInto(*index, q, &got);
      std::sort(got.begin(), got.end());
      CHECK(got == want);
    }
    // Interleave more inverted queries between the valid ones.
    for (auto& index : challengers) {
      got.clear();
      RangeQueryInto(*index, inverted, &got);
      CHECK(got.empty());
    }
  }
}

}  // namespace

int main() {
  RUN_TEST(TestUniformDatasetEquivalence);
  RUN_TEST(TestNeuroDatasetEquivalence);
  RUN_TEST(TestRandomBoxes2dEquivalence);
  RUN_TEST(TestDegenerateDatasets);
  RUN_TEST(TestZeroExtentQueriesAcrossRoster);
  RUN_TEST(TestInvertedQueryReturnsNothingEverywhere);
  return 0;
}
