#!/usr/bin/env bash
# End-to-end serving smoke + replay determinism gate.
#
#   1. Start a server with a recorded workload log and drive a mixed
#      read/write workload at 4 concurrent clients; assert roster agreement
#      on a read-only pass first (every index answers reads identically).
#   2. Replay the recorded log twice, each time against a FRESH server with
#      the same dataset flags, and require bit-identical response-stream
#      checksums across the two replays.
#   3. Require the two replay servers' final index checksums to agree with
#      each other AND with an original-run rerun — same accepted requests,
#      same final state, regardless of transport timing.
#
# Usage: server_replay_gate.sh <quasii_server> <quasii_client> <workdir>
set -euo pipefail

SERVER="$1"
CLIENT="$2"
WORKDIR="$3"

N=4096
SEED=7
QUERIES=120
MIX="range:0.55,point:0.1,count:0.1,knn:0.05,join:0.05,insert:0.1,erase:0.05"
INDEXES="Scan,QUASII,R-Tree"

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"
cd "$WORKDIR"

SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

# Starts a server, waits for its READY line, sets SERVER_PID.
start_server() {
  local sock="$1" out="$2"
  shift 2
  : > server.stdout
  "$SERVER" --socket="$sock" --n=$N --seed=$SEED --indexes="$INDEXES" \
            --out="$out" "$@" > server.stdout &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if grep -q '^READY ' server.stdout 2>/dev/null; then
      return 0
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "FAIL: server died before READY" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "FAIL: server never became ready" >&2
  exit 1
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=""
}

json_field() {
  # json_field FILE KEY — first numeric/boolean value of "KEY" in FILE.
  grep -o "\"$2\":[a-z0-9]*" "$1" | head -n1 | cut -d: -f2
}

# ---- 1. roster agreement on reads, then the recorded mixed run ----------
start_server quasii.sock server_record.json --record=run.workload
"$CLIENT" --socket=quasii.sock --n=$N --seed=$SEED --queries=$QUERIES \
          --mix="range:0.6,point:0.15,count:0.15,knn:0.1" \
          --targets=0,1,2 --agree --out=agree.json
"$CLIENT" --socket=quasii.sock --n=$N --seed=$SEED --queries=$QUERIES \
          --mix="$MIX" --clients=4 --targets=0,1,2 --out=workload.json
stop_server
if [[ "$(json_field workload.json transport_ok)" != "true" ]]; then
  echo "FAIL: workload run had transport errors" >&2
  exit 1
fi
if ! grep -q '"p99_ms":' workload.json; then
  echo "FAIL: workload report lacks p99" >&2
  exit 1
fi
ORIG_CHECKSUMS=$(grep -o '"checksum":[0-9]*' server_record.json | tr '\n' ' ')
RECORDED=$(json_field server_record.json recorded)
if [[ -z "$RECORDED" || "$RECORDED" == "0" ]]; then
  echo "FAIL: nothing was recorded" >&2
  exit 1
fi

# ---- 2. replay twice against fresh servers ------------------------------
for i in 1 2; do
  start_server "replay$i.sock" "server_replay$i.json"
  "$CLIENT" --socket="replay$i.sock" --replay=run.workload \
            --out="replay$i.json"
  stop_server
done

CK1=$(json_field replay1.json response_checksum)
CK2=$(json_field replay2.json response_checksum)
if [[ -z "$CK1" || "$CK1" != "$CK2" ]]; then
  echo "FAIL: replay response checksums diverge: $CK1 vs $CK2" >&2
  exit 1
fi

# ---- 3. final index state must agree across all three servers -----------
IDX1=$(grep -o '"checksum":[0-9]*' server_replay1.json | tr '\n' ' ')
IDX2=$(grep -o '"checksum":[0-9]*' server_replay2.json | tr '\n' ' ')
if [[ -z "$IDX1" || "$IDX1" != "$IDX2" || "$IDX1" != "$ORIG_CHECKSUMS" ]]; then
  echo "FAIL: final index checksums diverge" >&2
  echo "  original: $ORIG_CHECKSUMS" >&2
  echo "  replay1:  $IDX1" >&2
  echo "  replay2:  $IDX2" >&2
  exit 1
fi

echo "PASS: $RECORDED recorded requests replay bit-identically" \
     "(responses $CK1, index state $IDX1)"
