// Crash-safe durability suite (src/persist/): snapshot + WAL round trips
// for every roster index, the deterministic fault-injection crash matrix
// (fork a child, arm a counted failpoint, let the process die mid-write,
// recover, and compare bit-identically against an uninterrupted prefix
// run), and typed-error refusal of every corruption class — torn tails,
// bit flips, truncation, wrong magic/format/kind/dimension, LSN gaps.
//
// Artifacts land in $QUASII_PERSIST_ARTIFACTS when set (CI uploads the
// directory on failure), else in a fresh mkdtemp under /tmp. Passing tests
// clean up after themselves; an aborting CHECK leaves the evidence behind.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/query.h"
#include "common/rng.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "grid/grid_index.h"
#include "mosaic/mosaic_index.h"
#include "persist/failpoint.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "quasii/quasii_index.h"
#include "rtree/rtree_index.h"
#include "scan/scan_index.h"
#include "sfc/sfc_index.h"
#include "sfc/sfcracker_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box;
using quasii::Box3;
using quasii::Dataset;
using quasii::Dataset3;
using quasii::GridAssignment;
using quasii::GridIndex;
using quasii::MosaicIndex;
using quasii::ObjectId;
using quasii::QuasiiIndex;
using quasii::Rng;
using quasii::RTreeIndex;
using quasii::Scalar;
using quasii::ScanIndex;
using quasii::SfcIndex;
using quasii::SfcrackerIndex;
using quasii::SpatialIndex;
using quasii::persist::FailPoints;
using quasii::persist::PersistError;
using quasii::persist::PersistErrorName;
using quasii::persist::RecoverIndex;
using quasii::persist::RecoveryResult;
using quasii::persist::WalOp;
using quasii::persist::WalRecord;
using quasii::persist::WalWriter;
using quasii::persist::WriteSnapshot;

// ---------------------------------------------------------------------------
// Artifacts directory

std::string ArtifactsDir() {
  static std::string dir = [] {
    if (const char* env = std::getenv("QUASII_PERSIST_ARTIFACTS")) {
      ::mkdir(env, 0755);  // best-effort; may already exist
      return std::string(env);
    }
    char tmpl[] = "/tmp/quasii_persist_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    CHECK(made != nullptr);
    return std::string(made);
  }();
  return dir;
}

std::string ArtifactPath(const std::string& name) {
  return ArtifactsDir() + "/" + name;
}

void RemoveArtifact(const std::string& path) { std::remove(path.c_str()); }

// ---------------------------------------------------------------------------
// Deterministic inputs

Box3 UnitCube(Scalar lo, Scalar hi) {
  Box3 b;
  for (int d = 0; d < 3; ++d) {
    b.lo[d] = lo;
    b.hi[d] = hi;
  }
  return b;
}

Box3 RandomBox(Rng* rng, const Box3& universe, double max_extent_frac) {
  Box3 b;
  for (int d = 0; d < 3; ++d) {
    const double lo = static_cast<double>(universe.lo[d]);
    const double hi = static_cast<double>(universe.hi[d]);
    const double centre = rng->Uniform(lo, hi);
    const double half = (hi - lo) * rng->Uniform(0, max_extent_frac) / 2;
    b.lo[d] = static_cast<Scalar>(centre - half);
    b.hi[d] = static_cast<Scalar>(centre + half);
  }
  return b;
}

Dataset3 RandomDataset(Rng* rng, const Box3& universe, std::size_t n) {
  Dataset3 data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back(RandomBox(rng, universe, 0.03));
  }
  return data;
}

struct Mutation {
  bool is_insert = false;
  ObjectId id = 0;
  Box3 box;
};

/// The recorded mutation workload: deterministic in (seed, data_size,
/// count), every mutation accepted by construction — inserts use fresh
/// ids, erases pick a currently-live victim.
std::vector<Mutation> MakeMutationScript(std::uint64_t seed,
                                         std::size_t data_size, int count,
                                         const Box3& universe) {
  Rng rng(seed);
  std::vector<ObjectId> live(data_size);
  for (ObjectId i = 0; i < data_size; ++i) live[i] = i;
  ObjectId next_id = static_cast<ObjectId>(data_size);
  std::vector<Mutation> script;
  script.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Mutation m;
    if (live.empty() || rng.Uniform(0, 1) < 0.6) {
      m.is_insert = true;
      m.id = next_id++;
      m.box = RandomBox(&rng, universe, 0.05);
      live.push_back(m.id);
    } else {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      m.id = live[victim];
      live[victim] = live.back();
      live.pop_back();
    }
    script.push_back(m);
  }
  return script;
}

/// Applies the first `count` script mutations directly (no logging) — the
/// uninterrupted prefix oracle the crash matrix compares against.
void ApplyScript(SpatialIndex<3>* index, const std::vector<Mutation>& script,
                 std::size_t count) {
  CHECK_LE(count, script.size());
  for (std::size_t i = 0; i < count; ++i) {
    const Mutation& m = script[i];
    const bool ok = m.is_insert ? index->Insert(m.id, m.box)
                                : index->Erase(m.id);
    CHECK(ok);
  }
}

/// Applies the script with WAL logging (and optional periodic snapshots) —
/// the durability path under test. Returns the first persistence error.
PersistError RunLoggedWorkload(SpatialIndex<3>* index,
                               const std::vector<Mutation>& script,
                               const std::string& wal_path,
                               const std::string& snapshot_path,
                               std::size_t snapshot_every) {
  WalWriter<3> wal;
  PersistError err = wal.Open(wal_path, quasii::persist::FsyncPolicy::kEveryOp,
                              /*every_n=*/1);
  if (err != PersistError::kNone) return err;
  std::size_t accepted = 0;
  for (const Mutation& m : script) {
    const bool ok = m.is_insert ? index->Insert(m.id, m.box)
                                : index->Erase(m.id);
    CHECK(ok);
    WalRecord<3> rec;
    rec.lsn = index->store().version();
    rec.id = m.id;
    if (m.is_insert) {
      rec.op = WalOp::kInsert;
      rec.box = m.box;
    } else {
      rec.op = WalOp::kErase;
    }
    err = wal.Append(rec);
    if (err != PersistError::kNone) return err;
    ++accepted;
    if (snapshot_every > 0 && accepted % snapshot_every == 0) {
      err = WriteSnapshot<3>(*index, snapshot_path);
      if (err != PersistError::kNone) return err;
    }
  }
  return wal.Sync();
}

/// Bit-identical comparison: both indexes answer the same deterministic
/// range-query set with exactly the same sorted id lists.
void CheckSameResults(SpatialIndex<3>* a, SpatialIndex<3>* b,
                      const Box3& universe, std::uint64_t seed) {
  CHECK_EQ(a->store().live_count(), b->store().live_count());
  Rng rng(seed);
  std::vector<ObjectId> got_a, got_b;
  for (int i = 0; i < 40; ++i) {
    const Box3 q =
        i == 0 ? universe : RandomBox(&rng, universe, 0.3);
    got_a.clear();
    got_b.clear();
    RangeQueryInto(*a, q, &got_a);
    RangeQueryInto(*b, q, &got_b);
    std::sort(got_a.begin(), got_a.end());
    std::sort(got_b.begin(), got_b.end());
    CHECK(got_a == got_b);
  }
}

QuasiiIndex<3>::Params SmallQuasiiParams() {
  QuasiiIndex<3>::Params p;
  p.leaf_threshold = 64;
  return p;
}

/// Converges the index on a deterministic query workload (two passes, so
/// the second finds everything already refined).
void Converge(SpatialIndex<3>* index, const Box3& universe,
              std::uint64_t seed) {
  std::vector<ObjectId> got;
  for (int pass = 0; pass < 2; ++pass) {
    Rng rng(seed);
    for (int i = 0; i < 50; ++i) {
      got.clear();
      RangeQueryInto(*index, RandomBox(&rng, universe, 0.3), &got);
    }
  }
}

void CheckInvariantsOrDie(SpatialIndex<3>* index) {
  std::string why;
  if (!index->CheckInvariants(&why)) {
    std::fprintf(stderr, "CheckInvariants: %s\n", why.c_str());
    CHECK(false);
  }
}

// ---------------------------------------------------------------------------
// Round trips

/// WAL-only replay: the recovered index starts from the same initial
/// dataset and replays every logged mutation.
void TestWalOnlyReplay() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(21);
  const Dataset3 data = RandomDataset(&rng, universe, 600);
  const auto script = MakeMutationScript(22, data.size(), 120, universe);
  const std::string wal = ArtifactPath("wal_only.wal");
  RemoveArtifact(wal);

  QuasiiIndex<3> primary(data, SmallQuasiiParams());
  CHECK_EQ(RunLoggedWorkload(&primary, script, wal, "", 0),
           PersistError::kNone);

  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult rec = RecoverIndex<3>(&recovered, "", wal);
  CHECK(rec.ok());
  CHECK(!rec.snapshot_loaded);
  CHECK_EQ(rec.wal_replayed, script.size());
  CHECK_EQ(rec.recovered_lsn, script.size());
  CheckSameResults(&primary, &recovered, universe, 23);
  CheckInvariantsOrDie(&recovered);
  RemoveArtifact(wal);
}

/// Snapshot round trip of a converged QUASII: the structure blob restores
/// the crack columns and slice hierarchy, so the recovered index answers
/// the very workload that converged it with ZERO cracks.
void TestQuasiiSnapshotConvergedZeroCracks() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(31);
  const Dataset3 data = RandomDataset(&rng, universe, 900);
  const std::string snap = ArtifactPath("quasii_converged.snapshot");
  RemoveArtifact(snap);

  QuasiiIndex<3> primary(data, SmallQuasiiParams());
  Converge(&primary, universe, 32);
  const std::uint64_t cracks_before = primary.stats().cracks;
  CHECK_GT(cracks_before, 0u);
  CHECK_EQ(WriteSnapshot<3>(primary, snap), PersistError::kNone);

  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult rec = RecoverIndex<3>(&recovered, snap, "");
  CHECK(rec.ok());
  CHECK(rec.snapshot_loaded);
  CHECK(rec.structure_restored);
  CheckInvariantsOrDie(&recovered);

  // Replaying the converging workload performs no cracking at all.
  recovered.ResetStats();
  Converge(&recovered, universe, 32);
  CHECK_EQ(recovered.stats().cracks, 0u);
  CHECK_EQ(recovered.stats().objects_moved, 0u);
  CheckSameResults(&primary, &recovered, universe, 33);
  CheckInvariantsOrDie(&recovered);
  RemoveArtifact(snap);
}

/// R-Tree snapshots restore the packed node hierarchy; rebuild-from-store
/// indexes (SFCracker, Mosaic, Grid, SFC, Scan) recover by re-deriving
/// their structure from the restored store. All answer identically.
void TestRosterSnapshotRoundTrips() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(41);
  const Dataset3 data = RandomDataset(&rng, universe, 500);
  const auto script = MakeMutationScript(42, data.size(), 80, universe);

  const auto check_round_trip = [&](SpatialIndex<3>* primary,
                                    SpatialIndex<3>* fresh,
                                    bool expect_structure) {
    ApplyScript(primary, script, script.size());
    Converge(primary, universe, 43);
    const std::string snap = ArtifactPath(
        "roster_" + std::string(primary->name()) + ".snapshot");
    RemoveArtifact(snap);
    CHECK_EQ(WriteSnapshot<3>(*primary, snap), PersistError::kNone);
    const RecoveryResult rec = RecoverIndex<3>(fresh, snap, "");
    CHECK(rec.ok());
    CHECK(rec.snapshot_loaded);
    CHECK_EQ(rec.structure_restored, expect_structure);
    CheckSameResults(primary, fresh, universe, 44);
    CheckInvariantsOrDie(fresh);
    RemoveArtifact(snap);
  };

  {
    RTreeIndex<3> a(data), b(data);
    a.Build();
    check_round_trip(&a, &b, /*expect_structure=*/true);
  }
  {
    SfcrackerIndex<3> a(data, universe), b(data, universe);
    check_round_trip(&a, &b, /*expect_structure=*/false);
  }
  {
    MosaicIndex<3> a(data, universe), b(data, universe);
    check_round_trip(&a, &b, /*expect_structure=*/false);
  }
  {
    GridIndex<3>::Params p;
    p.assignment = GridAssignment::kQueryExtension;
    GridIndex<3> a(data, universe, p), b(data, universe, p);
    a.Build();
    check_round_trip(&a, &b, /*expect_structure=*/false);
  }
  {
    SfcIndex<3> a(data, universe), b(data, universe);
    a.Build();
    check_round_trip(&a, &b, /*expect_structure=*/false);
  }
  {
    ScanIndex<3> a(data), b(data);
    check_round_trip(&a, &b, /*expect_structure=*/false);
  }
}

/// Snapshot + WAL tail: recovery loads the snapshot and replays only the
/// records past its LSN.
void TestSnapshotPlusWalTail() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(51);
  const Dataset3 data = RandomDataset(&rng, universe, 600);
  const auto script = MakeMutationScript(52, data.size(), 100, universe);
  const std::string wal = ArtifactPath("tail.wal");
  const std::string snap = ArtifactPath("tail.snapshot");
  RemoveArtifact(wal);
  RemoveArtifact(snap);

  QuasiiIndex<3> primary(data, SmallQuasiiParams());
  Converge(&primary, universe, 53);
  CHECK_EQ(RunLoggedWorkload(&primary, script, wal, snap,
                             /*snapshot_every=*/32),
           PersistError::kNone);

  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult rec = RecoverIndex<3>(&recovered, snap, wal);
  CHECK(rec.ok());
  CHECK(rec.snapshot_loaded);
  CHECK_EQ(rec.snapshot_lsn, 96u);  // the last multiple of 32
  CHECK_EQ(rec.wal_records, script.size());
  CHECK_EQ(rec.wal_replayed, script.size() - 96);
  CHECK_EQ(rec.recovered_lsn, script.size());
  CheckSameResults(&primary, &recovered, universe, 54);
  CheckInvariantsOrDie(&recovered);

  // The recovered log accepts further appends at the next LSN.
  WalWriter<3> more;
  CHECK_EQ(more.Open(wal, quasii::persist::FsyncPolicy::kNone, 1),
           PersistError::kNone);
  WalRecord<3> next;
  next.lsn = rec.recovered_lsn + 1;
  next.op = WalOp::kInsert;
  next.id = 999000;
  next.box = UnitCube(1, 2);
  CHECK_EQ(more.Append(next), PersistError::kNone);
  const auto reread = quasii::persist::ReadWal<3>(wal);
  CHECK_EQ(reread.error, PersistError::kNone);
  CHECK_EQ(reread.records.size(), script.size() + 1);
  RemoveArtifact(wal);
  RemoveArtifact(snap);
}

// ---------------------------------------------------------------------------
// Corruption: every damage class yields a typed error (satellite 3)

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CHECK(in.good());
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return raw;
}

void DumpFile(const std::string& path, const std::string& raw) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CHECK(out.good());
  out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
}

void TestWalTornTailTruncatedAndRecovered() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(61);
  const Dataset3 data = RandomDataset(&rng, universe, 400);
  const auto script = MakeMutationScript(62, data.size(), 40, universe);
  const std::string wal = ArtifactPath("torn.wal");
  RemoveArtifact(wal);

  QuasiiIndex<3> primary(data, SmallQuasiiParams());
  CHECK_EQ(RunLoggedWorkload(&primary, script, wal, "", 0),
           PersistError::kNone);

  // Tear the final record in half — the residue of a crash mid-append.
  std::string raw = SlurpFile(wal);
  DumpFile(wal, raw.substr(0, raw.size() - 10));

  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult rec = RecoverIndex<3>(&recovered, "", wal);
  CHECK(rec.ok());
  CHECK(rec.wal_tail_truncated);
  CHECK_EQ(rec.wal_replayed, script.size() - 1);
  CheckInvariantsOrDie(&recovered);

  // Recovery physically truncated the tear: a re-read is torn no more.
  const auto reread = quasii::persist::ReadWal<3>(wal);
  CHECK_EQ(reread.error, PersistError::kNone);
  CHECK(!reread.truncated_tail);
  CHECK_EQ(reread.records.size(), script.size() - 1);
  RemoveArtifact(wal);
}

void TestWalCorruptRecordRefused() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(71);
  const Dataset3 data = RandomDataset(&rng, universe, 300);
  const auto script = MakeMutationScript(72, data.size(), 30, universe);
  const std::string wal = ArtifactPath("bitflip.wal");
  RemoveArtifact(wal);

  QuasiiIndex<3> primary(data, SmallQuasiiParams());
  CHECK_EQ(RunLoggedWorkload(&primary, script, wal, "", 0),
           PersistError::kNone);

  // Flip one bit inside the final record's payload: the frame is complete
  // (so this is provably corruption, not a torn tail) and its CRC no
  // longer matches.
  std::string raw = SlurpFile(wal);
  raw[raw.size() - 1] = static_cast<char>(raw[raw.size() - 1] ^ 0x10);
  DumpFile(wal, raw);

  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult rec = RecoverIndex<3>(&recovered, "", wal);
  CHECK_EQ(rec.error, PersistError::kWalRecordCorrupt);
  RemoveArtifact(wal);
}

void TestWalLsnGapRefused() {
  const std::string wal = ArtifactPath("gap.wal");
  RemoveArtifact(wal);
  WalWriter<3> writer;
  CHECK_EQ(writer.Open(wal, quasii::persist::FsyncPolicy::kNone, 1),
           PersistError::kNone);
  WalRecord<3> rec;
  rec.op = WalOp::kInsert;
  rec.box = UnitCube(1, 2);
  rec.lsn = 1;
  rec.id = 10;
  CHECK_EQ(writer.Append(rec), PersistError::kNone);
  rec.lsn = 3;  // skips 2
  rec.id = 11;
  CHECK_EQ(writer.Append(rec), PersistError::kNone);
  const auto contents = quasii::persist::ReadWal<3>(wal);
  CHECK_EQ(contents.error, PersistError::kWalLsnGap);
  RemoveArtifact(wal);
}

void TestWalDimensionMismatchRefused() {
  const std::string wal = ArtifactPath("dim.wal");
  RemoveArtifact(wal);
  WalWriter<2> writer;  // a 2-D log...
  CHECK_EQ(writer.Open(wal, quasii::persist::FsyncPolicy::kNone, 1),
           PersistError::kNone);
  WalRecord<2> rec;
  rec.op = WalOp::kErase;
  rec.lsn = 1;
  rec.id = 1;
  CHECK_EQ(writer.Append(rec), PersistError::kNone);
  const auto contents = quasii::persist::ReadWal<3>(wal);  // ...read as 3-D
  CHECK_EQ(contents.error, PersistError::kDimensionMismatch);
  RemoveArtifact(wal);
}

void TestWalReplayRejectedRefused() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(81);
  const Dataset3 data = RandomDataset(&rng, universe, 100);
  const std::string wal = ArtifactPath("rejected.wal");
  RemoveArtifact(wal);
  WalWriter<3> writer;
  CHECK_EQ(writer.Open(wal, quasii::persist::FsyncPolicy::kNone, 1),
           PersistError::kNone);
  WalRecord<3> rec;
  rec.op = WalOp::kErase;
  rec.lsn = 1;
  rec.id = 5000000;  // never lived
  CHECK_EQ(writer.Append(rec), PersistError::kNone);

  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult recres = RecoverIndex<3>(&recovered, "", wal);
  CHECK_EQ(recres.error, PersistError::kReplayRejected);
  RemoveArtifact(wal);
}

void TestSnapshotCorruptionClassesRefused() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(91);
  const Dataset3 data = RandomDataset(&rng, universe, 300);
  const std::string snap = ArtifactPath("corrupt.snapshot");
  RemoveArtifact(snap);

  QuasiiIndex<3> primary(data, SmallQuasiiParams());
  Converge(&primary, universe, 92);
  CHECK_EQ(WriteSnapshot<3>(primary, snap), PersistError::kNone);
  const std::string good = SlurpFile(snap);

  const auto recover_expecting = [&](PersistError want) {
    QuasiiIndex<3> fresh(data, SmallQuasiiParams());
    const RecoveryResult rec = RecoverIndex<3>(&fresh, snap, "");
    if (rec.error != want) {
      std::fprintf(stderr, "expected %s, got %s (%s)\n",
                   PersistErrorName(want), PersistErrorName(rec.error),
                   rec.detail.c_str());
      CHECK(false);
    }
  };

  // Truncated mid-payload.
  DumpFile(snap, good.substr(0, good.size() / 2));
  recover_expecting(PersistError::kSnapshotTruncated);

  // Truncated inside the fixed header.
  DumpFile(snap, good.substr(0, 9));
  recover_expecting(PersistError::kSnapshotTruncated);

  // One flipped payload bit.
  {
    std::string bad = good;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x01);
    DumpFile(snap, bad);
    recover_expecting(PersistError::kSnapshotCorrupt);
  }

  // Wrong magic.
  {
    std::string bad = good;
    bad[0] = 'X';
    DumpFile(snap, bad);
    recover_expecting(PersistError::kBadMagic);
  }

  // Unknown format version.
  {
    std::string bad = good;
    bad[4] = static_cast<char>(0x7F);
    DumpFile(snap, bad);
    recover_expecting(PersistError::kBadFormatVersion);
  }

  // A valid snapshot of a different index kind.
  {
    ScanIndex<3> scan(data);
    CHECK_EQ(WriteSnapshot<3>(scan, snap), PersistError::kNone);
    recover_expecting(PersistError::kIndexKindMismatch);
  }
  RemoveArtifact(snap);
}

// ---------------------------------------------------------------------------
// Fault injection

void TestFailPointRegistry() {
  FailPoints& fp = FailPoints::Instance();
  fp.Clear();
  CHECK(!FailPoints::Hit("nothing_armed"));

  // Counted trigger: fires on exactly the N-th hit, once.
  CHECK(fp.Arm("site_a=3"));
  CHECK(!FailPoints::Hit("site_a"));
  CHECK(!FailPoints::Hit("site_a"));
  CHECK(FailPoints::Hit("site_a"));
  CHECK(!FailPoints::Hit("site_a"));

  // Bare name means =1; other sites unaffected.
  CHECK(fp.Arm("site_b,site_c=2"));
  CHECK(FailPoints::Hit("site_b"));
  CHECK(!FailPoints::Hit("site_c"));
  CHECK(FailPoints::Hit("site_c"));

  // Malformed specs are rejected.
  CHECK(!fp.Arm("site_d=0"));
  CHECK(!fp.Arm("site_d=-1"));
  CHECK(!fp.Arm("site_d=7x"));
  CHECK(!fp.Arm("=4"));
  fp.Clear();
}

/// Armed fsync failure surfaces as a typed error, not a crash.
void TestFsyncFailureIsTypedError() {
  const std::string wal = ArtifactPath("fsync_fail.wal");
  RemoveArtifact(wal);
  FailPoints::Instance().Clear();
  CHECK(FailPoints::Instance().Arm("wal_fsync_fail=1"));
  WalWriter<3> writer;
  CHECK_EQ(writer.Open(wal, quasii::persist::FsyncPolicy::kEveryOp, 1),
           PersistError::kNone);
  WalRecord<3> rec;
  rec.op = WalOp::kErase;
  rec.lsn = 1;
  rec.id = 1;
  CHECK_EQ(writer.Append(rec), PersistError::kIo);
  FailPoints::Instance().Clear();
  RemoveArtifact(wal);
}

/// The armed bit flip lands a corrupt record on disk, which recovery then
/// refuses with the same typed error as hand-made corruption.
void TestInjectedBitFlipRefused() {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(101);
  const Dataset3 data = RandomDataset(&rng, universe, 200);
  const auto script = MakeMutationScript(102, data.size(), 20, universe);
  const std::string wal = ArtifactPath("injected_flip.wal");
  RemoveArtifact(wal);

  FailPoints::Instance().Clear();
  CHECK(FailPoints::Instance().Arm("wal_bitflip=7"));
  QuasiiIndex<3> primary(data, SmallQuasiiParams());
  CHECK_EQ(RunLoggedWorkload(&primary, script, wal, "", 0),
           PersistError::kNone);
  FailPoints::Instance().Clear();

  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult rec = RecoverIndex<3>(&recovered, "", wal);
  CHECK_EQ(rec.error, PersistError::kWalRecordCorrupt);
  RemoveArtifact(wal);
}

/// The crash matrix: fork a child that arms one counted crash site and
/// runs the logged workload until the injected `_Exit`. The parent
/// recovers from whatever reached disk and checks the result is EXACTLY
/// some prefix of the mutation script — bit-identical query results
/// against an uninterrupted run of that prefix.
struct CrashCase {
  const char* site;
  int trigger;
  std::size_t snapshot_every;
};

void RunCrashCase(const CrashCase& c, int case_index) {
  const Box3 universe = UnitCube(0, 100);
  Rng rng(111);
  const Dataset3 data = RandomDataset(&rng, universe, 500);
  const auto script = MakeMutationScript(112, data.size(), 60, universe);
  const std::string tag = "crash_" + std::to_string(case_index);
  const std::string wal = ArtifactPath(tag + ".wal");
  const std::string snap = ArtifactPath(tag + ".snapshot");
  RemoveArtifact(wal);
  RemoveArtifact(snap);
  RemoveArtifact(snap + ".tmp");

  const pid_t pid = fork();
  CHECK_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the crash site, run until the plug gets pulled. `_Exit`
    // everywhere — the child must not run the parent's atexit state.
    const std::string spec =
        std::string(c.site) + "=" + std::to_string(c.trigger);
    if (!FailPoints::Instance().Arm(spec)) std::_Exit(3);
    QuasiiIndex<3> index(data, SmallQuasiiParams());
    Converge(&index, universe, 113);
    RunLoggedWorkload(&index, script, wal, snap, c.snapshot_every);
    std::_Exit(4);  // reached the end without crashing: the case is broken
  }
  int status = 0;
  CHECK_EQ(waitpid(pid, &status, 0), pid);
  CHECK(WIFEXITED(status));
  CHECK_EQ(WEXITSTATUS(status), quasii::persist::kCrashExitCode);

  // Recover from the debris.
  QuasiiIndex<3> recovered(data, SmallQuasiiParams());
  const RecoveryResult rec = RecoverIndex<3>(&recovered, snap, wal);
  if (!rec.ok()) {
    std::fprintf(stderr, "[%s=%d] recovery failed: %s (%s)\n", c.site,
                 c.trigger, PersistErrorName(rec.error), rec.detail.c_str());
    CHECK(false);
  }
  CheckInvariantsOrDie(&recovered);

  // The recovered LSN names the surviving prefix; an uninterrupted run of
  // exactly that prefix must agree bit-identically.
  const std::size_t prefix = static_cast<std::size_t>(rec.recovered_lsn);
  CHECK_LE(prefix, script.size());
  QuasiiIndex<3> oracle(data, SmallQuasiiParams());
  Converge(&oracle, universe, 113);
  ApplyScript(&oracle, script, prefix);
  CheckSameResults(&oracle, &recovered, universe, 114);

  RemoveArtifact(wal);
  RemoveArtifact(snap);
  RemoveArtifact(snap + ".tmp");
}

void TestCrashMatrix() {
  const CrashCase cases[] = {
      {"wal_crash_before_append", 1, 0},
      {"wal_crash_before_append", 17, 0},
      {"wal_crash_after_append", 1, 0},
      {"wal_crash_after_append", 33, 0},
      {"wal_short_write", 1, 0},
      {"wal_short_write", 25, 0},
      {"wal_short_write", 60, 0},
      {"wal_crash_before_append", 9, 16},
      {"wal_crash_after_append", 40, 16},
      {"snapshot_short_write", 1, 16},
      {"snapshot_short_write", 2, 16},
      {"snapshot_crash_before_rename", 1, 16},
      {"snapshot_crash_before_rename", 3, 16},
  };
  int i = 0;
  for (const CrashCase& c : cases) {
    RunCrashCase(c, i++);
  }
}

}  // namespace

int main() {
  RUN_TEST(TestWalOnlyReplay);
  RUN_TEST(TestQuasiiSnapshotConvergedZeroCracks);
  RUN_TEST(TestRosterSnapshotRoundTrips);
  RUN_TEST(TestSnapshotPlusWalTail);
  RUN_TEST(TestWalTornTailTruncatedAndRecovered);
  RUN_TEST(TestWalCorruptRecordRefused);
  RUN_TEST(TestWalLsnGapRefused);
  RUN_TEST(TestWalDimensionMismatchRefused);
  RUN_TEST(TestWalReplayRejectedRefused);
  RUN_TEST(TestSnapshotCorruptionClassesRefused);
  RUN_TEST(TestFailPointRegistry);
  RUN_TEST(TestFsyncFailureIsTypedError);
  RUN_TEST(TestInjectedBitFlipRefused);
  RUN_TEST(TestCrashMatrix);
  return 0;
}
