// QUASII index tests: structural invariants of the slice hierarchy,
// correctness against Scan, and the paper's headline behaviour — less work
// than Scan and per-query cost that converges as the index refines itself
// (Section 6.2).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "common/crack_array.h"
#include "common/dataset.h"
#include "common/rng.h"
#include "common/timer.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "quasii/quasii_index.h"
#include "scan/scan_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box3;
using quasii::CrackArray;
using quasii::Dataset3;
using quasii::ObjectId;
using quasii::QuasiiIndex;
using quasii::Rng;
using quasii::Scalar;
using quasii::ScanIndex;
using quasii::Timer;

/// Walks one level's slice list and recurses into children, verifying:
/// sibling ranges tile the parent range in order, value intervals are
/// ordered and contain their entries' keys, and any slice that has been
/// descended into (has children) obeys its level threshold unless frozen.
template <int D>
void CheckSliceList(const QuasiiIndex<D>& index,
                    const std::vector<typename QuasiiIndex<D>::Slice>& slices,
                    int level, std::size_t begin, std::size_t end) {
  std::size_t pos = begin;
  Scalar prev_hi = -std::numeric_limits<Scalar>::infinity();
  for (const auto& s : slices) {
    CHECK_EQ(s.level, level);
    CHECK_EQ(s.begin, pos);
    pos = s.end;
    CHECK_LT(s.lo, s.hi);
    CHECK_GE(s.lo, prev_hi);
    prev_hi = s.hi;
    for (std::size_t k = s.begin; k < s.end; ++k) {
      const Scalar key = index.array().key(level, k);
      CHECK_GE(key, s.lo);
      CHECK_LT(key, s.hi);
    }
    if (!s.children.empty()) {
      CHECK_LT(level, D - 1);
      CHECK(s.frozen || s.size() <= index.LevelThreshold(level));
      CheckSliceList(index, s.children, level + 1, s.begin, s.end);
    }
  }
  CHECK_EQ(pos, end);
}

template <int D>
void CheckInvariants(const QuasiiIndex<D>& index, std::size_t n) {
  const CrackArray<D>& array = index.array();
  CHECK_EQ(array.size(), n);
  CheckSliceList(index, index.root_slices(), 0, 0, n);
  // Cracking permutes rows but never loses or duplicates them, and the key
  // columns stay consistent with the co-moved boxes.
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const ObjectId id = array.id(i);
    CHECK_LT(id, n);
    CHECK(!seen[id]);
    seen[id] = true;
    for (int d = 0; d < D; ++d) {
      CHECK_EQ(array.key(d, i), CrackArray<D>::CenterKey(array.box(i), d));
    }
  }
}

void TestThresholdProgression() {
  quasii::datagen::UniformDatasetParams p;
  p.count = 100000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(p);
  QuasiiIndex<3> index(data);
  Box3 q;
  for (int d = 0; d < 3; ++d) {
    q.lo[d] = 100;
    q.hi[d] = 200;
  }
  std::vector<ObjectId> result;
  RangeQueryInto(index, q, &result);
  // Geometric progression: leaf threshold tau, each level above rho times
  // larger, D refinements from n down to tau.
  CHECK_EQ(index.LevelThreshold(2), 1024u);
  CHECK_GT(index.LevelThreshold(1), index.LevelThreshold(2));
  CHECK_GT(index.LevelThreshold(0), index.LevelThreshold(1));
  CHECK_LT(index.LevelThreshold(0), p.count);
}

void TestInvariantsAfterQueries() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 30000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  QuasiiIndex<3>::Params params;
  params.leaf_threshold = 256;
  QuasiiIndex<3> index(data, params);
  ScanIndex<3> scan(data);

  quasii::datagen::UniformQueryParams qp;
  qp.count = 50;
  qp.selectivity = 1e-3;
  qp.seed = 77;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);

  std::vector<ObjectId> got, want;
  for (const Box3& q : queries) {
    got.clear();
    want.clear();
    RangeQueryInto(index, q, &got);
    RangeQueryInto(scan, q, &want);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    CHECK(got == want);
    CheckInvariants(index, data.size());
  }
}

void TestScanStatsBaseline() {
  // ScanIndex's objects_tested is exactly n per query — the closed form the
  // workload test below compares against.
  Rng rng(3);
  Box3 universe;
  for (int d = 0; d < 3; ++d) {
    universe.lo[d] = 0;
    universe.hi[d] = 100;
  }
  const Dataset3 data =
      quasii::datagen::MakeRandomBoxes<3>(1234, universe, 3.0f, &rng);
  ScanIndex<3> scan(data);
  std::vector<ObjectId> result;
  Box3 q;
  for (int d = 0; d < 3; ++d) {
    q.lo[d] = 1;
    q.hi[d] = 2;
  }
  for (int i = 0; i < 7; ++i) RangeQueryInto(scan, q, &result);
  CHECK_EQ(scan.stats().objects_tested, 1234u * 7u);
}

/// The acceptance workload: 1000 uniform queries over the uniform dataset.
/// QUASII must (a) test far fewer objects than Scan would, and (b) converge:
/// the first (index-building) query is much more expensive than the steady
/// state, in both reorganization work and wall-clock latency.
void TestWorkloadBeatsScanAndConverges() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 100000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  QuasiiIndex<3> index(data);

  quasii::datagen::UniformQueryParams qp;
  qp.count = 1000;
  qp.selectivity = 1e-3;
  qp.seed = 4;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);

  std::vector<double> latency_s;
  std::vector<std::uint64_t> cracks_per_query;
  std::vector<ObjectId> result;
  std::uint64_t results_total = 0;
  for (const Box3& q : queries) {
    result.clear();
    const std::uint64_t cracks_before = index.stats().cracks;
    Timer t;
    RangeQueryInto(index, q, &result);
    latency_s.push_back(t.Seconds());
    cracks_per_query.push_back(index.stats().cracks - cracks_before);
    results_total += result.size();
  }
  CHECK_GT(results_total, 0u);

  // (a) Strictly less intersection work than Scan's n-per-query.
  const std::uint64_t scan_tested =
      static_cast<std::uint64_t>(data.size()) * queries.size();
  CHECK_LT(index.stats().objects_tested, scan_tested);

  // (b) Convergence. Reorganization: the last 100 queries together crack
  // less than the very first query alone.
  const std::uint64_t first_cracks = cracks_per_query.front();
  const std::uint64_t tail_cracks =
      std::accumulate(cracks_per_query.end() - 100, cracks_per_query.end(),
                      std::uint64_t{0});
  CHECK_GT(first_cracks, 0u);
  CHECK_LT(tail_cracks, first_cracks);

  // Latency: the first query (copies + cracks the whole array) must be well
  // above the steady-state mean of the last 100 queries.
  const double tail_mean =
      std::accumulate(latency_s.end() - 100, latency_s.end(), 0.0) / 100.0;
  CHECK_GT(latency_s.front(), 3.0 * tail_mean);

  CheckInvariants(index, data.size());
}

void TestStatsAccounting() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 20000;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  QuasiiIndex<3> index(data);

  quasii::datagen::UniformQueryParams qp;
  qp.count = 20;
  qp.seed = 8;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);
  std::vector<ObjectId> result;
  for (const Box3& q : queries) RangeQueryInto(index, q, &result);

  // A refining workload must register all four counter families.
  CHECK_GT(index.stats().cracks, 0u);
  CHECK_GT(index.stats().objects_moved, 0u);
  CHECK_GT(index.stats().partitions_visited, 0u);
  CHECK_GT(index.stats().objects_tested, 0u);

  // Repeating one query on the now-refined region adds no cracks.
  const std::uint64_t cracks = index.stats().cracks;
  result.clear();
  RangeQueryInto(index, queries.front(), &result);
  CHECK_EQ(index.stats().cracks, cracks);
}

}  // namespace

int main() {
  RUN_TEST(TestThresholdProgression);
  RUN_TEST(TestInvariantsAfterQueries);
  RUN_TEST(TestScanStatsBaseline);
  RUN_TEST(TestWorkloadBeatsScanAndConverges);
  RUN_TEST(TestStatsAccounting);
  return 0;
}
