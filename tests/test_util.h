#ifndef QUASII_TESTS_TEST_UTIL_H_
#define QUASII_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/query.h"
#include "common/spatial_index.h"

// Assertion-style test support: CHECK* abort the binary with a message, so
// ctest reports the failing binary and line. No framework dependency.

/// Appends to `*out` the ids of all objects whose MBB intersects `q` — the
/// single-shot convenience the tests use now that everything goes through
/// the typed `Execute(Query, Sink)` engine.
template <int D>
void RangeQueryInto(quasii::SpatialIndex<D>& index, const quasii::Box<D>& q,
                    std::vector<quasii::ObjectId>* out) {
  quasii::VectorSink sink(out);
  index.Execute(quasii::RangeQuery<D>(q), sink);
}

#define CHECK(cond)                                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "%s:%d: CHECK failed: %s\n", __FILE__,         \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define CHECK_OP(a, op, b)                                                \
  do {                                                                    \
    const auto va_ = (a);                                                 \
    const auto vb_ = (b);                                                 \
    if (!(va_ op vb_)) {                                                  \
      std::ostringstream oss_;                                            \
      oss_ << va_ << " vs " << vb_;                                       \
      std::fprintf(stderr, "%s:%d: CHECK failed: %s %s %s (%s)\n",        \
                   __FILE__, __LINE__, #a, #op, #b, oss_.str().c_str());  \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define CHECK_EQ(a, b) CHECK_OP(a, ==, b)
#define CHECK_NE(a, b) CHECK_OP(a, !=, b)
#define CHECK_LT(a, b) CHECK_OP(a, <, b)
#define CHECK_LE(a, b) CHECK_OP(a, <=, b)
#define CHECK_GT(a, b) CHECK_OP(a, >, b)
#define CHECK_GE(a, b) CHECK_OP(a, >=, b)

#define RUN_TEST(fn)                           \
  do {                                         \
    std::printf("[ RUN  ] %s\n", #fn);         \
    fn();                                      \
    std::printf("[ OK   ] %s\n", #fn);         \
  } while (0)

#endif  // QUASII_TESTS_TEST_UTIL_H_
