// Intra-query execution layer suite: the work-stealing TaskScheduler
// (nested submission without deadlock at any pool size, steal accounting,
// ParallelFor grain edge cases) and the determinism contract of morsel-
// parallel QUASII execution — a serial and a multi-threaded run of the
// same cold query stream must produce bit-identical columns, identical
// crack/objects_tested counters, and identical results, for range queries
// and crack-driven joins alike. The final stress test races parallel
// scans/cracks against roster mutations and is the CI TSan leg's fodder.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/dataset.h"
#include "common/query.h"
#include "common/task_scheduler.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "quasii/quasii_index.h"
#include "tests/test_util.h"

namespace {

using quasii::Box3;
using quasii::Dataset3;
using quasii::IntraQueryThreads;
using quasii::JoinQuery;
using quasii::MorselGrain;
using quasii::ObjectId;
using quasii::ParallelFor;
using quasii::QuasiiIndex;
using quasii::RangeQuery;
using quasii::Scalar;
using quasii::SetIntraQueryThreads;
using quasii::TaskScheduler;
using quasii::VectorPairSink;
using quasii::VectorSink;
using IdPair = std::pair<ObjectId, ObjectId>;

/// Restores the global intra-query thread count on scope exit so a failing
/// CHECK in one test cannot leak parallelism into the next.
struct ScopedThreads {
  explicit ScopedThreads(int n) : prev(IntraQueryThreads()) {
    SetIntraQueryThreads(n);
  }
  ~ScopedThreads() { SetIntraQueryThreads(prev); }
  int prev;
};

void TestInlineExecutionWithoutWorkers() {
  TaskScheduler s(0);
  CHECK(!s.parallel());
  std::atomic<int> ran{0};
  {
    TaskScheduler::Group g(&s);
    for (int i = 0; i < 16; ++i) {
      g.Run([&ran] { ran.fetch_add(1); });
    }
    g.Wait();
  }
  CHECK_EQ(ran.load(), 16);
  CHECK_EQ(s.stats().inlined, 16u);
  CHECK_EQ(s.stats().executed, 0u);
}

void TestNestedSubmissionNoDeadlockPoolSizeOne() {
  // One worker, three levels of nested fan-out: every Wait must help run
  // queued tasks instead of blocking, or this test hangs (ctest timeout).
  TaskScheduler s(1);
  std::atomic<int> leaves{0};
  {
    TaskScheduler::Group outer(&s);
    for (int i = 0; i < 4; ++i) {
      outer.Run([&s, &leaves] {
        TaskScheduler::Group mid(&s);
        for (int j = 0; j < 4; ++j) {
          mid.Run([&s, &leaves] {
            TaskScheduler::Group inner(&s);
            for (int k = 0; k < 4; ++k) {
              inner.Run([&leaves] { leaves.fetch_add(1); });
            }
            inner.Wait();
          });
        }
        mid.Wait();
      });
    }
    outer.Wait();
  }
  CHECK_EQ(leaves.load(), 64);
  const TaskScheduler::Stats st = s.stats();
  CHECK_EQ(st.executed + st.helped, 84u);  // 4 + 16 + 64 tasks, none lost
}

void TestWorkStealing() {
  // A task running on one worker spawns two children into that worker's
  // own deque, and each child blocks on a two-party barrier: they can only
  // both finish if some OTHER thread (the sibling worker or the helping
  // waiter) takes one — i.e. a steal happens, and is counted. The main
  // thread spins (not Wait) until the spawner has started, so a worker —
  // not the helping waiter — owns the deque the children land in.
  TaskScheduler s(2);
  std::atomic<bool> started{false};
  std::atomic<int> arrived{0};
  {
    TaskScheduler::Group outer(&s);
    outer.Run([&s, &started, &arrived] {
      started.store(true);
      TaskScheduler::Group inner(&s);
      for (int i = 0; i < 2; ++i) {
        inner.Run([&arrived] {
          arrived.fetch_add(1);
          while (arrived.load() < 2) std::this_thread::yield();
        });
      }
      inner.Wait();
    });
    while (!started.load()) std::this_thread::yield();
    outer.Wait();
  }
  CHECK_EQ(arrived.load(), 2);
  CHECK_GE(s.stats().stolen, 1u);
}

void TestParallelForGrainEdgeCases() {
  TaskScheduler s(2);
  // Empty range: zero morsels, the body never runs.
  {
    std::atomic<int> calls{0};
    ParallelFor(&s, 5, 5, 4, [&](std::size_t, std::size_t) {
      calls.fetch_add(1);
    });
    CHECK_EQ(calls.load(), 0);
  }
  // Every combination of awkward range × grain (single element, odd
  // remainder, grain 0 clamped to 1, grain wider than the range) must
  // cover each index exactly once with contiguous, tiling morsels.
  const std::size_t kCases[][3] = {
      {0, 1, 1}, {0, 7, 3}, {2, 9, 0}, {0, 3, 100}, {1, 64, 5},
  };
  for (const auto& c : kCases) {
    const std::size_t begin = c[0];
    const std::size_t end = c[1];
    const std::size_t grain = c[2];
    std::vector<std::atomic<int>> hits(end);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> morsels;
    ParallelFor(&s, begin, end, grain, [&](std::size_t b, std::size_t e) {
      CHECK_LT(b, e);
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      morsels.emplace_back(b, e);
    });
    for (std::size_t i = begin; i < end; ++i) CHECK_EQ(hits[i].load(), 1);
    std::sort(morsels.begin(), morsels.end());
    std::size_t pos = begin;
    const std::size_t g = std::max<std::size_t>(1, grain);
    for (const auto& m : morsels) {
      CHECK_EQ(m.first, pos);
      CHECK_LE(m.second - m.first, g);
      pos = m.second;
    }
    CHECK_EQ(pos, end);
  }
}

void TestEnvCapAndThreadCount() {
  // Runs both bare and under the force-serial CI leg: with no
  // QUASII_EXEC_THREADS requests pass through; with the cap set, every
  // request is clamped to it (that clamping IS the leg's test subject).
  ScopedThreads guard(1);
  CHECK_EQ(IntraQueryThreads(), 1);
  CHECK(!quasii::IntraQueryScheduler().parallel());
  const char* cap_env = std::getenv("QUASII_EXEC_THREADS");
  const int cap = cap_env != nullptr && *cap_env != '\0'
                      ? std::atoi(cap_env)
                      : 0;
  const int want = cap > 0 ? std::min(4, cap) : 4;
  CHECK_EQ(SetIntraQueryThreads(4), want);
  CHECK_EQ(quasii::IntraQueryScheduler().workers(), want - 1);
  CHECK_GE(MorselGrain(), 1u);
}

/// Runs `queries` cold on a fresh index at the given thread count and
/// returns the per-query sorted results; exposes the index for column and
/// counter comparison.
struct ColdRun {
  std::vector<std::vector<ObjectId>> results;
  std::uint64_t cracks = 0;
  std::uint64_t objects_tested = 0;
  std::uint64_t objects_moved = 0;
  std::vector<Scalar> keys0;
  std::vector<ObjectId> ids;
};

ColdRun RunCold(const Dataset3& data, const std::vector<Box3>& queries,
                int threads) {
  ScopedThreads guard(threads);
  QuasiiIndex<3> index(data);
  ColdRun run;
  for (const Box3& q : queries) {
    std::vector<ObjectId> got;
    VectorSink sink(&got);
    index.Execute(RangeQuery<3>(q), sink);
    std::sort(got.begin(), got.end());
    run.results.push_back(std::move(got));
  }
  CHECK(index.CheckInvariants());
  run.cracks = index.stats().cracks;
  run.objects_tested = index.stats().objects_tested;
  run.objects_moved = index.stats().objects_moved;
  run.keys0 = index.array().keys(0);
  run.ids = index.array().ids();
  return run;
}

void TestColdStartSerialParallelIdentical() {
  // n above the chunked-partition threshold (2^16) so the cold first query
  // exercises the parallel partition, the parallel split worklist, and the
  // deferred leaf scans — and still must match the serial run bit for bit:
  // same results, same crack/objects_tested counters, same physical column
  // order.
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 1u << 17;
  dp.seed = 9;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  quasii::datagen::UniformQueryParams qp;
  qp.count = 30;
  qp.selectivity = 1e-3;
  qp.seed = 41;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);

  const ColdRun serial = RunCold(data, queries, 1);
  const ColdRun parallel = RunCold(data, queries, 4);

  CHECK_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    CHECK(serial.results[i] == parallel.results[i]);
  }
  CHECK_EQ(serial.cracks, parallel.cracks);
  CHECK_EQ(serial.objects_tested, parallel.objects_tested);
  CHECK_EQ(serial.objects_moved, parallel.objects_moved);
  // Bit-identical layout: the strongest form of the determinism contract.
  CHECK(serial.keys0 == parallel.keys0);
  CHECK(serial.ids == parallel.ids);
}

void TestParallelJoinMatchesSerial() {
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 20000;
  dp.seed = 5;
  const Dataset3 left_data = quasii::datagen::MakeUniformDataset(dp);
  dp.seed = 6;
  const Dataset3 right_data = quasii::datagen::MakeUniformDataset(dp);

  auto run = [&](int threads) {
    ScopedThreads guard(threads);
    QuasiiIndex<3> left(left_data);
    QuasiiIndex<3> right(right_data);
    std::vector<IdPair> pairs;
    VectorPairSink sink(&pairs);
    left.Execute(JoinQuery<3>(right), sink);
    CHECK(left.CheckInvariants());
    CHECK(right.CheckInvariants());
    return std::make_pair(pairs, left.stats().cracks + right.stats().cracks);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  CHECK(serial.first == parallel.first);  // emitter output is canonical
  CHECK_EQ(serial.second, parallel.second);
}

void TestParallelScansRaceRosterMutations() {
  // TSan stress: with intra-query workers active, several reader threads
  // drive range queries (deferred parallel scans, parallel cracking inside
  // refinement) while a writer thread churns inserts and erases through
  // the index's locked mutation path. The lock contract must keep worker
  // reads and roster writes apart; afterwards the structure must validate.
  quasii::datagen::UniformDatasetParams dp;
  dp.count = 30000;
  dp.seed = 13;
  const Dataset3 data = quasii::datagen::MakeUniformDataset(dp);
  const Box3 universe = quasii::datagen::UniformUniverse(dp);
  quasii::datagen::UniformQueryParams qp;
  qp.count = 60;
  qp.selectivity = 2e-3;
  qp.seed = 99;
  const auto queries = quasii::datagen::MakeUniformQueries(universe, qp);

  ScopedThreads guard(3);
  QuasiiIndex<3> index(data);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&index, &queries, &stop, t] {
      quasii::ScopedStatsSlot slot(10 + t);
      for (int pass = 0; pass < 3; ++pass) {
        for (const Box3& q : queries) {
          std::vector<ObjectId> got;
          VectorSink sink(&got);
          index.Execute(RangeQuery<3>(q), sink);
          if (stop.load()) return;
        }
      }
    });
  }
  std::thread writer([&index, &data] {
    quasii::ScopedStatsSlot slot(12);
    // Erase and re-insert a rotating window of ids; each op takes the
    // exclusive lock and must serialize against the parallel executions.
    for (int round = 0; round < 4; ++round) {
      for (ObjectId id = 0; id < 400; ++id) {
        const ObjectId victim = id + static_cast<ObjectId>(round) * 400;
        index.Erase(victim);
        index.Insert(victim, data[victim]);
      }
    }
  });
  writer.join();
  stop.store(true);
  for (std::thread& r : readers) r.join();
  CHECK(index.CheckInvariants());
}

}  // namespace

int main() {
  RUN_TEST(TestInlineExecutionWithoutWorkers);
  RUN_TEST(TestNestedSubmissionNoDeadlockPoolSizeOne);
  RUN_TEST(TestWorkStealing);
  RUN_TEST(TestParallelForGrainEdgeCases);
  RUN_TEST(TestEnvCapAndThreadCount);
  RUN_TEST(TestColdStartSerialParallelIdentical);
  RUN_TEST(TestParallelJoinMatchesSerial);
  RUN_TEST(TestParallelScansRaceRosterMutations);
  return 0;
}
