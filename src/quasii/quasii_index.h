#ifndef QUASII_QUASII_QUASII_INDEX_H_
#define QUASII_QUASII_QUASII_INDEX_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/crack_array.h"
#include "common/packed_column.h"
#include "common/dataset.h"
#include "common/query.h"
#include "common/query_stats.h"
#include "common/spatial_index.h"
#include "common/task_scheduler.h"
#include "geometry/box.h"

namespace quasii {

/// QUASII (Sections 4–5): the paper's query-aware spatial incremental index.
///
/// The structure is a hierarchy of *slices*, one level per dimension: level-d
/// slices partition their parent's entry range along dimension d, so a fully
/// refined index resembles a lazily built STR packing (see `StrSort`). All
/// work happens inside query execution: a query descends the hierarchy and
/// refines only the slices it touches, cracking them at the query bounds
/// (`CrackOnAxis`) and then sub-slicing the query-covered piece at median
/// keys until it obeys the level's size threshold. Untouched regions keep
/// their coarse slices, so reorganization cost is proportional to what the
/// workload actually asks for — the contrast with Mosaic's eager splitting
/// and SFCracker's many-cracks-per-query behaviour (Section 6.3).
///
/// Per-level size thresholds follow the paper's geometric progression: the
/// leaf (level D-1) threshold is `tau` and each level above is allowed
/// `rho = (n / tau)^(1/D)` times more, so `D` refinements take a slice from
/// `n` down to `tau`.
///
/// Extended objects use the query-extension strategy [40], exactly like
/// `SfcrackerIndex`: an entry is keyed by its MBB centre, queries are
/// extended by half the maximum object extent per dimension, and candidates
/// are filtered against the original query box.
///
/// Storage is the shared structure-of-arrays `CrackArray` core: cracks and
/// median splits compare precomputed 4-byte keys instead of loading whole
/// entry structs, and leaf scans are `CrackArray::StreamScan` — branchless
/// vectorizable passes over the per-dimension bound columns that stream the
/// survivors straight into the query's `Sink`.
///
/// Every query type of the engine drives cracking:
///  - point queries are zero-extent ranges and refine the slices around the
///    probed point;
///  - count queries descend and crack exactly like ranges but resolve
///    leaves via anonymous `AddMatches` — the id column is never read;
///  - kNN runs an expanding ring of range probes through the normal descent,
///    so nearest-neighbor workloads build the index too;
///  - joins against another QUASII index descend both slice hierarchies in
///    lockstep, cracking each side at the other's slice bounds before
///    walking the overlapping slice pairs — so both indexes converge from
///    join traffic alone (see `JoinVisit`).
///
/// Mutations are handled incrementally, in the spirit of the paper's
/// query-driven refinement:
///  - inserts land in the crack array's unsorted pending tail; the next
///    query promotes the tail to a root-level slice with open value bounds
///    (consecutive promotions merge while the previous one is still
///    unrefined), which subsequent queries crack down lazily exactly like
///    initial data — an insert itself never cracks anything;
///  - erases tombstone the object's row in place (O(1) via the id → row
///    map); leaf scans skip tombstones branchlessly through the live mask,
///    refinement sweeps the dead rows of a cracked slice aside in passing,
///    and once tombstones exceed a quarter of the array the whole structure
///    is rebuilt from the live set;
///  - both mutations re-derive the per-level size thresholds from the live
///    count, so the slice hierarchy's geometric progression keeps tracking
///    the population as it grows and shrinks.
///
/// Concurrency (the `SpatialIndex` contract): warm-up queries serialize on
/// the exclusive lock while they crack; once `ConvergedFor` observes that a
/// query's descent touches only within-threshold or frozen slices — and no
/// pending tail or compaction is due — that query runs under the shared
/// lock with any number of peers, since converged leaf scans write only
/// thread-local scratch and the caller's stats shard.
template <int D>
class QuasiiIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Maximum size of a level-(D-1) slice before it is scanned (the paper's
    /// tau, ~1000).
    std::size_t leaf_threshold = 1024;
  };

  /// One slice: a contiguous range `[begin, end)` of the crack array whose
  /// centre keys along dimension `level` all lie in the half-open value
  /// interval `[lo, hi)`. Slices of level `D-1` are leaves; others hold
  /// child slices of the next level once a query has descended into them.
  struct Slice {
    int level = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    Scalar lo = 0;
    Scalar hi = 0;
    /// Set when every key in the range is identical: the slice cannot shrink
    /// below its threshold by cracking along `level` and is accepted as-is.
    bool frozen = false;
    std::vector<Slice> children;
    /// Bit-packed bound columns of a final leaf (within threshold or
    /// `frozen`): such a slice is never reorganized again, so its columns
    /// are re-encoded once at freeze time and leaf scans read the packed
    /// form instead of the raw floats. Null until frozen (or when packing
    /// is disabled); shared so slice moves/copies stay cheap.
    std::shared_ptr<const PackedLeaf<D>> packed;

    std::size_t size() const { return end - begin; }
  };

  explicit QuasiiIndex(const Dataset<D>& data, const Params& params = Params{})
      : SpatialIndex<D>(data), params_(params) {}

  std::string_view name() const override { return "QUASII"; }

  /// Incremental index: `Build()` is a no-op; all work happens at query
  /// time.
  void Build() override {}

  /// Structural accessors for tests and analyses.
  const std::vector<Slice>& root_slices() const { return root_; }
  const CrackArray<D>& array() const { return array_; }
  std::size_t LevelThreshold(int level) const {
    return threshold_[static_cast<std::size_t>(level)];
  }
  bool initialized() const { return initialized_; }

  /// Scan working set: `raw_bytes` counts every per-row column (keys, lo/hi
  /// bounds, id, live byte); `resident_bytes` replaces, for each packed
  /// (frozen) leaf, its key and bound columns with the packed bound columns
  /// — a final leaf is never cracked again, so its keys and raw bounds are
  /// dead weight a scan-serving replica would not keep hot.
  typename SpatialIndex<D>::ColumnMemory column_memory() const override {
    typename SpatialIndex<D>::ColumnMemory m;
    constexpr std::uint64_t kRawRow = static_cast<std::uint64_t>(D) *
                                          (3 * sizeof(Scalar)) +
                                      sizeof(ObjectId) + 1;
    constexpr std::uint64_t kPackedAway =
        static_cast<std::uint64_t>(D) * (3 * sizeof(Scalar));
    m.raw_bytes = static_cast<std::uint64_t>(array_.size()) * kRawRow;
    m.resident_bytes =
        m.raw_bytes - packed_rows_ * kPackedAway + packed_bytes_;
    m.packed_leaves = packed_leaves_;
    m.packed_rows = packed_rows_;
    return m;
  }

  /// A/B toggle for the microbench: when false, leaf scans read the raw
  /// columns even where a packed leaf exists (freezing itself is unaffected).
  /// Not thread-safe — flip between batches, never mid-query.
  void set_packed_scan_enabled(bool on) { packed_scan_enabled_ = on; }
  bool packed_scan_enabled() const { return packed_scan_enabled_; }

  /// Freeze-time packing kill switch: `QUASII_NO_PACK=1` in the environment
  /// disables column compression entirely (resident == raw). Read once.
  static bool PackingEnabled() {
    static const bool enabled = [] {
      const char* v = std::getenv("QUASII_NO_PACK");
      return !(v != nullptr && v[0] == '1' && v[1] == '\0');
    }();
    return enabled;
  }

  /// Snapshot structure blob: the crack-array columns plus the slice
  /// hierarchy, so a recovered index resumes exactly as converged as it
  /// was — a replayed query workload cracks nothing.
  bool SerializeStructure(ByteWriter& w) const override {
    w.U8(initialized_ ? 1 : 0);
    if (!initialized_) return true;
    array_.EncodeTo(&w);
    for (int d = 0; d < D; ++d) w.F(half_extent_[d]);
    EncodeSlices(root_, &w);
    return true;
  }

  bool DeserializeStructure(std::string_view bytes) override {
    ByteReader r(bytes);
    const bool init = r.U8() != 0;
    if (!r.ok()) return false;
    if (!init) {
      // Captured before the first query: stay lazy, initialize on demand.
      RebuildFromStore();
      return r.remaining() == 0;
    }
    if (!array_.DecodeFrom(&r)) return false;
    for (int d = 0; d < D; ++d) half_extent_[d] = r.F();
    root_.clear();
    ResetPacking();
    if (!DecodeSlices(&r, /*level=*/0, array_.size(), &root_) || !r.ok() ||
        r.remaining() != 0) {
      RebuildFromStore();  // leave no half-decoded structure behind
      return false;
    }
    ComputeThresholds(LiveRows());
    // The snapshot carries only the raw columns and the slice tree; packed
    // leaf columns are derived state and are re-frozen here, so a restored
    // index scans compressed immediately and still replays with zero cracks.
    RepackLoaded(&root_);
    initialized_ = true;
    return true;
  }

  void RebuildFromStore() override {
    initialized_ = false;
    array_.Clear();
    root_.clear();
    ResetPacking();
    half_extent_ = Point<D>{};
  }

  /// Extends the store check with crack-array column agreement, the
  /// live-row ↔ store bijection (every live row's id is alive and its
  /// columns match the store's box bit-for-bit), slice-range tiling, and
  /// key containment in every slice's value interval.
  bool CheckInvariants(std::string* why = nullptr) const override {
    if (!SpatialIndex<D>::CheckInvariants(why)) return false;
    if (!initialized_) return true;
    if (!array_.CheckColumns(why)) return false;
    std::size_t live_rows = 0;
    for (std::size_t i = 0; i < array_.size(); ++i) {
      if (!array_.live(i)) continue;
      ++live_rows;
      const ObjectId id = array_.id(i);
      if (!this->store_.alive(id)) {
        if (why) *why = "quasii: live row for a non-live id";
        return false;
      }
      const Box<D>& b = this->store_.box(id);
      for (int d = 0; d < D; ++d) {
        if (array_.key(d, i) != CrackArray<D>::CenterKey(b, d) ||
            array_.lo_col(d)[i] != b.lo[d] || array_.hi_col(d)[i] != b.hi[d]) {
          if (why) *why = "quasii: row columns disagree with the store box";
          return false;
        }
      }
    }
    if (live_rows != this->store_.live_count()) {
      if (why) *why = "quasii: live rows != store live count";
      return false;
    }
    if (threshold_ != ThresholdsFor(LiveRows(), params_.leaf_threshold)) {
      if (why) *why = "quasii: thresholds not derived from the live count";
      return false;
    }
    // The pending tail is structure-less by definition; slices must tile
    // the structured prefix exactly.
    if (!CheckSlices(root_, 0, array_.pending_begin(), 0, why)) return false;
    // Every packed leaf must agree with its raw columns value-for-value (in
    // mapped space — the packed form never materializes floats).
    return CheckPacked(root_, why);
  }

  /// A query is converged — safe to execute concurrently under the shared
  /// lock — when nothing about its execution can reorganize: the array is
  /// initialized, has no pending tail to promote and no compaction due,
  /// and a read-only replay of the descent touches only slices that are
  /// within their level threshold or frozen, and (above the leaf level)
  /// already have children to descend into. kNN stays conservative: its
  /// expanding ring probes regions the triggering query never names. A
  /// join touches the whole structure and cracks wherever the partner has
  /// slice bounds, so it replays an unbounded descent: only full
  /// convergence guarantees a join is a pure read of this side.
  bool ConvergedFor(const Query<D>& query) const override {
    if (!initialized_) return false;
    if (query.type() == QueryType::kKNearest) return false;
    if (array_.pending_count() > 0) return false;
    const std::size_t dead = array_.tombstones();
    if (dead >= kMinCompactTombstones && dead * 4 >= array_.size()) {
      return false;  // the next ExecuteBox will compact
    }
    if (array_.empty()) return true;
    if (query.type() == QueryType::kJoin) {
      return SlicesConverged(root_, Box<D>::Infinite());
    }
    const Box<D> box = DescentBox(query);
    if (box.IsEmpty()) return true;
    Box<D> ext;
    for (int d = 0; d < D; ++d) {
      ext.lo[d] = box.lo[d] - half_extent_[d];
      ext.hi[d] = std::nextafter(box.hi[d] + half_extent_[d],
                                 std::numeric_limits<Scalar>::infinity());
    }
    return SlicesConverged(root_, ext);
  }

 protected:
  /// Inserts never reorganize: the new row joins the pending tail and the
  /// next query drains it through the normal refinement machinery.
  void OnInsert(ObjectId id, const Box<D>& box) override {
    if (!initialized_) return;  // Initialize() reads the store wholesale
    array_.Append(id, box);
    for (int d = 0; d < D; ++d) {
      half_extent_[d] = std::max(half_extent_[d], box.Extent(d) / 2);
    }
    ComputeThresholds(LiveRows());
  }

  /// Erases tombstone in place; scans skip the row branchlessly until a
  /// refinement sweeps it aside or a compaction reclaims it.
  void OnErase(ObjectId id) override {
    if (!initialized_) return;
    array_.EraseId(id);
    ComputeThresholds(LiveRows());
  }

  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    PrepareArray();
    if (array_.empty()) return;
    // Half-open extended query: `[lo, hi)` per dimension covers every centre
    // key of an object whose MBB can intersect `q` (centre-based assignment
    // plus half the maximum extent on both sides). Containment predicates
    // imply intersection, so the same descent generates their candidates.
    Box<D> ext;
    for (int d = 0; d < D; ++d) {
      ext.lo[d] = q.lo[d] - half_extent_[d];
      ext.hi[d] = std::nextafter(q.hi[d] + half_extent_[d],
                                 std::numeric_limits<Scalar>::infinity());
    }
    MatchEmitter emit(count_only, &sink);
    TaskScheduler& exec = IntraQueryScheduler();
    std::vector<LeafScanJob> jobs;
    const BoxExec ctx{&q, predicate, &emit, exec.parallel() ? &jobs : nullptr};
    Visit(&root_, ctx, ext, 0u);
    if (!jobs.empty()) RunLeafScans(jobs, ctx, &exec);
    emit.Flush();
  }

  /// Expanding-ring kNN: range probes of doubling radius run through the
  /// normal descent, so each probe cracks the slices it touches — the index
  /// keeps converging under nearest-neighbor workloads.
  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!initialized_) Initialize();
    this->RingKNearest(pt, k, sink);
  }

  /// The crack-driven join (the two-set extension of the paper's
  /// query-driven refinement): when the partner is a QUASII index too, both
  /// slice hierarchies are descended in lockstep and each side is cracked
  /// at the other side's slice bounds before the overlapping slice pairs
  /// are walked — the join itself is the workload that converges both
  /// structures, and a repeated join runs crack-free over the slices the
  /// first one carved. Any other partner falls back to the base class's
  /// index-nested-loop (whose probes still crack this side). Self-joins
  /// descend the one hierarchy against itself; pair canonicalization
  /// (unordered-once, no diagonal) lives in the emitter's flush.
  void ExecuteJoin(SpatialIndex<D>& other_base, JoinEmitter& emit) override {
    auto* other = dynamic_cast<QuasiiIndex<D>*>(&other_base);
    if (other == nullptr) {
      SpatialIndex<D>::ExecuteJoin(other_base, emit);
      return;
    }
    PrepareArray();
    if (other != this) other->PrepareArray();
    if (array_.empty() || other->array_.empty()) return;
    JoinVisit(other, &root_, &other->root_, emit);
  }

 private:
  /// One leaf scan deferred for morsel-parallel execution. Captured BY
  /// VALUE during the descent — `Slice` pointers dangle the moment a later
  /// refinement rebuilds a slice list, but the row range of a processed
  /// leaf never moves within one query (subsequent refinements reorganize
  /// only other, disjoint ranges), so (begin, end, covered) plus a shared
  /// handle on the packed columns is all a scan needs.
  struct LeafScanJob {
    std::size_t begin = 0;
    std::size_t end = 0;
    unsigned covered = 0;
    std::shared_ptr<const PackedLeaf<D>> packed;
  };

  /// Box-execution context (see `SpatialIndex::ExecuteBox` for the shared
  /// contract); threaded through the recursive slice descent. When `jobs`
  /// is non-null (intra-query workers available), leaf scans are recorded
  /// there in visit order instead of executing inline, and run after the
  /// descent completes.
  struct BoxExec {
    const Box<D>* q;
    RangePredicate predicate;
    MatchEmitter* emit;
    std::vector<LeafScanJob>* jobs = nullptr;
  };

  /// Adapts a partner-slice `StreamScan` into join pairs: every id the scan
  /// emits pairs with the currently fixed left-side object.
  class LeftFixedSink final : public Sink {
   public:
    explicit LeftFixedSink(JoinEmitter* emit) : emit_(emit) {}
    void set_left(ObjectId left) { left_ = left; }
    void Emit(ObjectId id) override { emit_->Add(left_, id); }
    void EmitRun(const ObjectId* ids, std::size_t n) override {
      for (std::size_t i = 0; i < n; ++i) emit_->Add(left_, ids[i]);
    }
    void AddMatches(std::uint64_t) override {}

   private:
    JoinEmitter* emit_;
    ObjectId left_ = 0;
  };

  /// `LeftFixedSink`'s task-local twin: collects (left, id) pairs into a
  /// plain buffer instead of an emitter, so parallel leaf-pair walks stay
  /// off the shared `JoinEmitter` until their deterministic merge.
  class PairListSink final : public Sink {
   public:
    explicit PairListSink(std::vector<std::pair<ObjectId, ObjectId>>* out)
        : out_(out) {}
    void set_left(ObjectId left) { left_ = left; }
    void Emit(ObjectId id) override { out_->emplace_back(left_, id); }
    void EmitRun(const ObjectId* ids, std::size_t n) override {
      for (std::size_t i = 0; i < n; ++i) out_->emplace_back(left_, ids[i]);
    }
    void AddMatches(std::uint64_t) override {}

   private:
    std::vector<std::pair<ObjectId, ObjectId>>* out_;
    ObjectId left_ = 0;
  };

  /// The shared entry ritual of every reorganizing execution: first-query
  /// initialization, tombstone compaction when due, and promotion of the
  /// pending insert tail into the slice hierarchy. A no-op (pure read) when
  /// `ConvergedFor` already approved the triggering query.
  void PrepareArray() {
    if (!initialized_) Initialize();
    MaybeCompact();
    AbsorbPending();
  }

  /// Read-only replay of `Visit`'s routing decisions: false as soon as some
  /// touched slice would be refined or would materialize a first child.
  bool SlicesConverged(const std::vector<Slice>& slices,
                       const Box<D>& ext) const {
    for (const Slice& s : slices) {
      const int d = s.level;
      if (s.size() == 0 || s.lo >= ext.hi[d] || s.hi <= ext.lo[d]) continue;
      if (s.size() > threshold_[static_cast<std::size_t>(d)] && !s.frozen) {
        return false;
      }
      if (d == D - 1) continue;
      if (s.children.empty()) return false;
      if (!SlicesConverged(s.children, ext)) return false;
    }
    return true;
  }

  std::size_t LiveRows() const {
    return array_.size() - array_.tombstones();
  }

  /// First-query (and compaction) work: build the structure-of-arrays
  /// columns from the live object set and derive the per-level thresholds
  /// and the query-extension amounts.
  void Initialize() {
    array_.Clear();
    ResetPacking();
    half_extent_ = Point<D>{};
    this->store_.ForEachLive([this](ObjectId id, const Box<D>& b) {
      array_.Append(id, b);
      for (int d = 0; d < D; ++d) {
        half_extent_[d] = std::max(half_extent_[d], b.Extent(d) / 2);
      }
    });
    array_.SealPending();
    ComputeThresholds(array_.size());
    root_.clear();
    Slice root;
    root.level = 0;
    root.begin = 0;
    root.end = array_.size();
    root.lo = -std::numeric_limits<Scalar>::infinity();
    root.hi = std::numeric_limits<Scalar>::infinity();
    root_.push_back(std::move(root));
    initialized_ = true;
  }

  /// Rebuilds from the live set once tombstones dominate: the one O(n)
  /// reclamation backing the otherwise in-passing compaction.
  void MaybeCompact() {
    const std::size_t dead = array_.tombstones();
    if (dead < kMinCompactTombstones || dead * 4 < array_.size()) return;
    this->Stats().objects_moved += LiveRows();
    Initialize();
  }

  /// Drains the pending tail into the slice hierarchy: the tail becomes a
  /// root-level slice with open value bounds that queries refine lazily,
  /// exactly like initial data. While the previously promoted slice is
  /// still unrefined (open bounds, no cracks, no children) the new tail
  /// merges into it, so insert-heavy phases cannot grow the root list by
  /// one slice per query.
  void AbsorbPending() {
    const std::size_t begin = array_.pending_begin();
    const std::size_t end = array_.size();
    if (begin == end) return;
    constexpr Scalar kInf = std::numeric_limits<Scalar>::infinity();
    if (!root_.empty()) {
      Slice& last = root_.back();
      if (last.end == begin && last.children.empty() && !last.frozen &&
          last.lo == -kInf && last.hi == kInf) {
        last.end = end;
        array_.SealPending();
        return;
      }
    }
    Slice tail;
    tail.level = 0;
    tail.begin = begin;
    tail.end = end;
    tail.lo = -kInf;
    tail.hi = kInf;
    root_.push_back(std::move(tail));
    array_.SealPending();
  }

  static std::array<std::size_t, D> ThresholdsFor(std::size_t n,
                                                  std::size_t leaf_threshold) {
    std::array<std::size_t, D> out{};
    const double tau = static_cast<double>(leaf_threshold);
    const double rho = n > leaf_threshold
                           ? std::pow(static_cast<double>(n) / tau, 1.0 / D)
                           : 1.0;
    double t = tau;
    for (int d = D - 1; d >= 0; --d) {
      out[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(std::ceil(t));
      t *= rho;
    }
    return out;
  }

  void ComputeThresholds(std::size_t n) {
    threshold_ = ThresholdsFor(n, params_.leaf_threshold);
  }

  /// Preorder slice serialization: per slice its range, value interval,
  /// frozen flag, and (recursively) its children. Levels are implied by
  /// depth.
  void EncodeSlices(const std::vector<Slice>& slices, ByteWriter* w) const {
    w->U64(slices.size());
    for (const Slice& s : slices) {
      w->U64(s.begin);
      w->U64(s.end);
      w->F(s.lo);
      w->F(s.hi);
      w->U8(s.frozen ? 1 : 0);
      EncodeSlices(s.children, w);
    }
  }

  /// Decodes one slice list, validating as it goes: ranges inside
  /// `array_bound`, recursion no deeper than `D` levels, and a child-list
  /// size the remaining input can actually hold (so corrupt counts fail
  /// fast instead of allocating).
  bool DecodeSlices(ByteReader* r, int level, std::size_t array_bound,
                    std::vector<Slice>* out) {
    constexpr std::size_t kMinSliceBytes = 8 + 8 + 2 * sizeof(Scalar) + 1 + 8;
    const std::uint64_t count = r->U64();
    if (!r->ok() || count > r->remaining() / kMinSliceBytes + 1) return false;
    if (count > 0 && level >= D) return false;
    out->reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      Slice s;
      s.level = level;
      s.begin = static_cast<std::size_t>(r->U64());
      s.end = static_cast<std::size_t>(r->U64());
      s.lo = r->F();
      s.hi = r->F();
      s.frozen = r->U8() != 0;
      if (!r->ok() || s.begin > s.end || s.end > array_bound) return false;
      if (!DecodeSlices(r, level + 1, s.end, &s.children)) return false;
      out->push_back(std::move(s));
    }
    return true;
  }

  /// Structural slice-tree validation: a sibling list tiles `[begin, end)`
  /// contiguously and in position order; children sit one level deeper and
  /// tile their parent; every row of a slice has its key inside the
  /// slice's value interval — except the parked-dead slices
  /// (`lo == hi == +inf`), which must hold only tombstoned rows.
  bool CheckSlices(const std::vector<Slice>& slices, std::size_t begin,
                   std::size_t end, int level, std::string* why) const {
    constexpr Scalar kInf = std::numeric_limits<Scalar>::infinity();
    std::size_t pos = begin;
    for (const Slice& s : slices) {
      if (s.level != level || s.begin != pos || s.end < s.begin ||
          s.end > end) {
        if (why) *why = "quasii: slice list does not tile its range";
        return false;
      }
      pos = s.end;
      const bool parked_dead = s.lo == kInf && s.hi == kInf;
      if (!parked_dead && s.lo > s.hi) {
        if (why) *why = "quasii: inverted slice value interval";
        return false;
      }
      for (std::size_t i = s.begin; i < s.end; ++i) {
        if (parked_dead) {
          if (array_.live(i)) {
            if (why) *why = "quasii: live row in a parked-dead slice";
            return false;
          }
          continue;
        }
        const Scalar k = array_.key(level, i);
        if (!(k >= s.lo && k < s.hi) && !(s.lo == s.hi && k == s.lo)) {
          if (why) *why = "quasii: row key outside its slice interval";
          return false;
        }
      }
      if (!s.children.empty() &&
          !CheckSlices(s.children, s.begin, s.end, level + 1, why)) {
        return false;
      }
      if (!s.children.empty() &&
          (s.children.front().begin != s.begin ||
           s.children.back().end != s.end)) {
        if (why) *why = "quasii: children do not cover their parent";
        return false;
      }
    }
    if (pos != end) {
      if (why) *why = "quasii: slice list does not cover its range";
      return false;
    }
    return true;
  }

  /// Two-sided partition of `[begin, end)` by `key < v` — one crack step.
  std::size_t CrackOnAxis(std::size_t begin, std::size_t end, int d, Scalar v) {
    const std::size_t pos = array_.CrackOnAxis(begin, end, d, v);
    ++this->Stats().cracks;
    this->Stats().objects_moved += end - begin;
    return pos;
  }

  /// Refines an oversized slice against the query's `[lo, hi)` interval in
  /// the slice's dimension: cracks off the (coarse) parts before and after
  /// the query, then sub-slices the query-covered middle at median keys
  /// until every piece obeys the level threshold. The returned pieces are
  /// position- and value-ordered, exactly tile the input slice, and live in
  /// this level's scratch buffer (valid until the next same-level `Refine`).
  ///
  /// When the array carries tombstones, the dead rows of the slice are
  /// first swept behind the live ones and parked in a frozen slice whose
  /// empty value interval (`lo == hi == +inf`) no traversal ever enters —
  /// cracking compacts erased objects out of the hot range in passing.
  std::vector<Slice>& Refine(Slice s, const Box<D>& ext) {
    const int d = s.level;
    const Scalar qlo = ext.lo[d];
    const Scalar qhi = ext.hi[d];
    std::vector<Slice>& out = refine_scratch_[static_cast<std::size_t>(d)];
    out.clear();
    Slice dead;
    bool have_dead = false;
    if (array_.HasDeadIn(s.begin, s.end)) {
      const std::size_t live_end = array_.PartitionLiveFirst(s.begin, s.end);
      if (live_end < s.end) {
        ++this->Stats().cracks;
        this->Stats().objects_moved += s.size();
        dead.level = d;
        dead.begin = live_end;
        dead.end = s.end;
        dead.lo = std::numeric_limits<Scalar>::infinity();
        dead.hi = std::numeric_limits<Scalar>::infinity();
        dead.frozen = true;
        have_dead = true;
        s.end = live_end;
      }
    }
    if (qlo > s.lo) {
      const std::size_t pos = CrackOnAxis(s.begin, s.end, d, qlo);
      if (pos > s.begin) {
        Slice left;
        left.level = d;
        left.begin = s.begin;
        left.end = pos;
        left.lo = s.lo;
        left.hi = qlo;
        out.push_back(std::move(left));
      }
      s.begin = pos;
      s.lo = qlo;
    }
    Slice right;
    bool have_right = false;
    if (qhi < s.hi) {
      const std::size_t pos = CrackOnAxis(s.begin, s.end, d, qhi);
      if (pos < s.end) {
        right.level = d;
        right.begin = pos;
        right.end = s.end;
        right.lo = qhi;
        right.hi = s.hi;
        have_right = true;
      }
      s.end = pos;
      s.hi = qhi;
    }
    SplitToThreshold(std::move(s), &out);
    if (have_right) out.push_back(std::move(right));
    if (have_dead) out.push_back(std::move(dead));
    // Freeze hook: pieces that just reached their final leaf form (within
    // threshold or key-frozen at level D-1) are immutable from here on —
    // pack their bound columns now, under the exclusive lock the refinement
    // already holds.
    for (Slice& piece : out) PackLeafSlice(&piece);
    return out;
  }

  /// Packs the bound columns of a *final* leaf slice — one that no future
  /// query can reorganize: level D-1 and within threshold (or key-frozen).
  /// Only ever called on the exclusive-lock paths (refinement, lazy child
  /// creation, snapshot restore); the converged shared-lock read path never
  /// mutates slices. Tiny leaves are not worth the metadata; parked-dead
  /// slices (`lo == hi == +inf`) are never scanned at all.
  void PackLeafSlice(Slice* s) {
    if (s->level != D - 1 || s->packed != nullptr || !PackingEnabled()) return;
    if (s->size() < kMinPackRows) return;
    if (!(s->frozen || s->size() <= threshold_[static_cast<std::size_t>(D - 1)])) {
      return;
    }
    constexpr Scalar kInf = std::numeric_limits<Scalar>::infinity();
    if (s->lo == kInf && s->hi == kInf) return;  // parked dead
    std::array<const Scalar*, static_cast<std::size_t>(D)> los;
    std::array<const Scalar*, static_cast<std::size_t>(D)> his;
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      los[dd] = array_.lo_col(d).data() + s->begin;
      his[dd] = array_.hi_col(d).data() + s->begin;
    }
    s->packed = MakePackedLeaf<D>(los, his, s->size());
    ++packed_leaves_;
    packed_rows_ += s->size();
    packed_bytes_ += s->packed->bytes();
  }

  /// Re-freezes every final leaf of a just-restored slice tree (packed
  /// columns are derived state and are not serialized).
  void RepackLoaded(std::vector<Slice>* slices) {
    for (Slice& s : *slices) {
      if (s.level == D - 1) {
        PackLeafSlice(&s);
      } else {
        RepackLoaded(&s.children);
      }
    }
  }

  void ResetPacking() {
    packed_leaves_ = 0;
    packed_rows_ = 0;
    packed_bytes_ = 0;
  }

  /// Validates every packed leaf against its raw columns, in mapped space.
  bool CheckPacked(const std::vector<Slice>& slices, std::string* why) const {
    for (const Slice& s : slices) {
      if (s.packed != nullptr) {
        if (s.level != D - 1 || s.packed->rows != s.size()) {
          if (why) *why = "quasii: packed leaf shape mismatch";
          return false;
        }
        for (int d = 0; d < D; ++d) {
          const std::size_t dd = static_cast<std::size_t>(d);
          const PackedColumn& lo_pk = s.packed->lo_cols[dd];
          const PackedColumn& hi_pk = s.packed->hi_cols[dd];
          for (std::size_t i = 0; i < s.size(); ++i) {
            if (lo_pk.GetMapped(i) !=
                    MapOrdered(array_.lo_col(d)[s.begin + i]) ||
                hi_pk.GetMapped(i) !=
                    MapOrdered(array_.hi_col(d)[s.begin + i])) {
              if (why) *why = "quasii: packed leaf disagrees with raw columns";
              return false;
            }
          }
        }
      }
      if (!CheckPacked(s.children, why)) return false;
    }
    return true;
  }

  /// Halves a slice at its median key until every piece is at most the level
  /// threshold. Serial executions run the iterative worklist; with intra-
  /// query workers, large slices fan out as a recursive task tree whose two
  /// halves split concurrently (disjoint row ranges, so the median splits
  /// never touch the same rows). Which splits happen — and therefore the
  /// crack counters and the physical layout — depends only on the data, not
  /// on the worker count: both paths perform the identical split sequence,
  /// the parallel one merely re-orders the wall-clock and buffers the right
  /// half so pieces still emit in left-to-right order. A run of identical
  /// keys that cannot be halved is frozen and accepted oversized (it can
  /// still be sliced in later dimensions).
  void SplitToThreshold(Slice s, std::vector<Slice>* out) {
    if (s.size() == 0) return;
    TaskScheduler& exec = IntraQueryScheduler();
    if (exec.parallel() && s.size() >= kParallelSplitMin) {
      QueryStats local;
      SplitRecursive(std::move(s), out, &local, &exec);
      this->Stats().cracks += local.cracks;
      this->Stats().objects_moved += local.objects_moved;
      return;
    }
    SplitIterative(std::move(s), out, &this->Stats(), &split_stack_);
  }

  /// The classic worklist form (left-to-right emission, no recursion).
  /// Counters land in `st` so parallel tasks can accumulate task-locally
  /// and merge into the caller's shard afterwards; `stack` is caller-owned
  /// because the member worklist cannot be shared across concurrent tasks.
  void SplitIterative(Slice s, std::vector<Slice>* out, QueryStats* st,
                      std::vector<Slice>* stack) {
    const int d = s.level;
    const std::size_t limit = threshold_[static_cast<std::size_t>(d)];
    stack->clear();
    stack->push_back(std::move(s));
    while (!stack->empty()) {
      Slice t = std::move(stack->back());
      stack->pop_back();
      if (t.size() <= limit) {
        out->push_back(std::move(t));
        continue;
      }
      const auto split = array_.MedianSplit(t.begin, t.end, d);
      ++st->cracks;
      st->objects_moved += t.size();
      if (split.frozen) {
        t.frozen = true;
        out->push_back(std::move(t));
        continue;
      }
      Slice left;
      left.level = d;
      left.begin = t.begin;
      left.end = split.pos;
      left.lo = t.lo;
      left.hi = split.bound;
      Slice rest;
      rest.level = d;
      rest.begin = split.pos;
      rest.end = t.end;
      rest.lo = split.bound;
      rest.hi = t.hi;
      // LIFO: push the right half first so the left half is processed (and
      // emitted) before it.
      stack->push_back(std::move(rest));
      stack->push_back(std::move(left));
    }
  }

  /// Task-tree form: splits at the median, forks the right half onto the
  /// scheduler, recurses into the left inline, then appends the right
  /// half's buffered pieces — so the emitted order equals the iterative
  /// worklist's. Small subranges drop back to `SplitIterative` with a local
  /// stack, bounding the recursion depth at log2(n / kParallelSplitMin).
  void SplitRecursive(Slice t, std::vector<Slice>* out, QueryStats* st,
                      TaskScheduler* exec) {
    const int d = t.level;
    const std::size_t limit = threshold_[static_cast<std::size_t>(d)];
    if (t.size() <= limit) {
      out->push_back(std::move(t));
      return;
    }
    if (t.size() < kParallelSplitMin) {
      std::vector<Slice> stack;
      SplitIterative(std::move(t), out, st, &stack);
      return;
    }
    const auto split = array_.MedianSplit(t.begin, t.end, d);
    ++st->cracks;
    st->objects_moved += t.size();
    if (split.frozen) {
      t.frozen = true;
      out->push_back(std::move(t));
      return;
    }
    Slice left;
    left.level = d;
    left.begin = t.begin;
    left.end = split.pos;
    left.lo = t.lo;
    left.hi = split.bound;
    Slice rest;
    rest.level = d;
    rest.begin = split.pos;
    rest.end = t.end;
    rest.lo = split.bound;
    rest.hi = t.hi;
    std::vector<Slice> right_out;
    QueryStats right_stats;
    {
      TaskScheduler::Group g(exec);
      g.Run([this, rest, &right_out, &right_stats, exec]() mutable {
        SplitRecursive(std::move(rest), &right_out, &right_stats, exec);
      });
      SplitRecursive(std::move(left), out, st, exec);
      g.Wait();
    }
    st->cracks += right_stats.cracks;
    st->objects_moved += right_stats.objects_moved;
    for (Slice& piece : right_out) out->push_back(std::move(piece));
  }

  /// Walks one level's slice list: skips slices outside the query, refines
  /// oversized touched slices, and descends (or scans, at the leaf level)
  /// the rest. Refinement pieces are stitched into a rebuilt list in one
  /// pass instead of `erase`+`insert` splicing, so a query that cracks k
  /// slices costs one O(list) rebuild, not k of them.
  void Visit(std::vector<Slice>* slices, const BoxExec& ctx, const Box<D>& ext,
             unsigned covered) {
    const int d = slices->front().level;
    std::vector<Slice>& rebuilt = visit_scratch_[static_cast<std::size_t>(d)];
    bool rebuilding = false;
    for (std::size_t i = 0; i < slices->size(); ++i) {
      Slice& s = (*slices)[i];
      const bool outside =
          s.size() == 0 || s.lo >= ext.hi[d] || s.hi <= ext.lo[d];
      if (!outside && s.size() > threshold_[static_cast<std::size_t>(d)] &&
          !s.frozen) {
        if (!rebuilding) {
          rebuilding = true;
          rebuilt.clear();
          rebuilt.reserve(slices->size() + 8);
          for (std::size_t j = 0; j < i; ++j) {
            rebuilt.push_back(std::move((*slices)[j]));
          }
        }
        std::vector<Slice>& pieces = Refine(std::move(s), ext);
        for (Slice& piece : pieces) {
          Process(&piece, ctx, ext, covered);
          rebuilt.push_back(std::move(piece));
        }
      } else {
        if (!outside) Process(&s, ctx, ext, covered);
        if (rebuilding) rebuilt.push_back(std::move(s));
      }
    }
    if (rebuilding) {
      slices->swap(rebuilt);
      rebuilt.clear();  // drop the moved-from originals, keep the capacity
    }
  }

  /// Handles one within-threshold (or frozen) slice that may overlap the
  /// query: scans it at the leaf level, descends otherwise. `covered` is the
  /// bitmask of dimensions whose slice value range lies inside the query's
  /// own interval — every centre key there is inside `q`, which (as
  /// `box.lo <= centre <= box.hi`) already proves the box overlaps `q` in
  /// that dimension, so the leaf scan skips its bound test (intersection
  /// predicate only; `StreamScan` ignores the mask for containment).
  void Process(Slice* s, const BoxExec& ctx, const Box<D>& ext,
               unsigned covered) {
    const int d = s->level;
    if (s->size() == 0 || s->lo >= ext.hi[d] || s->hi <= ext.lo[d]) return;
    if (ctx.q->lo[d] <= s->lo && s->hi <= ctx.q->hi[d]) covered |= 1u << d;
    ++this->Stats().partitions_visited;
    if (d == D - 1) {
      this->Stats().objects_tested += s->size();
      if (ctx.jobs != nullptr) {
        ctx.jobs->push_back(LeafScanJob{
            s->begin, s->end, covered,
            packed_scan_enabled_ ? s->packed : nullptr});
        return;
      }
      this->Stats().bytes_scanned += array_.StreamScan(
          s->begin, s->end, *ctx.q, ctx.predicate, covered, ctx.emit,
          packed_scan_enabled_ ? s->packed.get() : nullptr);
      return;
    }
    EnsureChild(s);
    Visit(&s->children, ctx, ext, covered);
  }

  /// Executes the deferred leaf scans morsel-parallel: consecutive jobs are
  /// batched until a batch holds at least a grain of rows, every batch runs
  /// the normal `StreamScan` kernels into its own per-job buffer on some
  /// worker, and the buffers drain into the query's emitter in CAPTURE
  /// (= visit) order — so the sink observes the byte-identical id stream a
  /// serial execution produces, and count-only runs the identical total.
  /// Byte counters accumulate per job and merge into the caller's shard
  /// here; the tasks never touch index stats.
  void RunLeafScans(const std::vector<LeafScanJob>& jobs, const BoxExec& ctx,
                    TaskScheduler* exec) {
    struct JobOut {
      std::vector<ObjectId> ids;
      std::uint64_t count = 0;
      std::uint64_t bytes = 0;
    };
    std::vector<JobOut> results(jobs.size());
    const bool count_only = ctx.emit->count_only();
    std::vector<std::size_t> starts;
    starts.push_back(0);
    std::size_t rows = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      rows += jobs[i].end - jobs[i].begin;
      if (rows >= MorselGrain() && i + 1 < jobs.size()) {
        starts.push_back(i + 1);
        rows = 0;
      }
    }
    {
      TaskScheduler::Group g(exec);
      for (std::size_t b = 0; b < starts.size(); ++b) {
        const std::size_t jb = starts[b];
        const std::size_t je =
            b + 1 < starts.size() ? starts[b + 1] : jobs.size();
        g.Run([this, &jobs, &results, &ctx, count_only, jb, je] {
          for (std::size_t j = jb; j < je; ++j) {
            const LeafScanJob& job = jobs[j];
            JobOut& out = results[j];
            if (count_only) {
              CountSink cs;
              MatchEmitter me(/*count_only=*/true, &cs);
              out.bytes = array_.StreamScan(job.begin, job.end, *ctx.q,
                                            ctx.predicate, job.covered, &me,
                                            job.packed.get());
              me.Flush();
              out.count = cs.count();
            } else {
              VectorSink vs(&out.ids);
              MatchEmitter me(/*count_only=*/false, &vs);
              out.bytes = array_.StreamScan(job.begin, job.end, *ctx.q,
                                            ctx.predicate, job.covered, &me,
                                            job.packed.get());
            }
          }
        });
      }
      g.Wait();
    }
    for (JobOut& out : results) {
      if (count_only) {
        ctx.emit->AddAnonymous(out.count);
      } else if (!out.ids.empty()) {
        ctx.emit->AddRun(out.ids.data(), out.ids.size());
      }
      this->Stats().bytes_scanned += out.bytes;
    }
  }

  /// Materializes a non-leaf slice's single open child (the lazy first
  /// level-(d+1) slice covering the whole range) if none exists yet. Only
  /// reorganizing (exclusive-lock) executions ever create one —
  /// `ConvergedFor` declines any query whose descent reaches a childless
  /// non-leaf — so the freeze hook below stays off the shared path.
  void EnsureChild(Slice* s) {
    if (!s->children.empty()) return;
    Slice child;
    child.level = s->level + 1;
    child.begin = s->begin;
    child.end = s->end;
    child.lo = -std::numeric_limits<Scalar>::infinity();
    child.hi = std::numeric_limits<Scalar>::infinity();
    s->children.push_back(std::move(child));
    // A child born at the leaf level and already within threshold is final.
    PackLeafSlice(&s->children.back());
  }

  /// The value intervals of one level's live slices — the crack targets the
  /// join partner refines against. Skips empty slices and the parked-dead
  /// ones (`lo == hi == +inf`).
  static std::vector<std::pair<Scalar, Scalar>> SliceIntervals(
      const std::vector<Slice>& slices) {
    std::vector<std::pair<Scalar, Scalar>> out;
    out.reserve(slices.size());
    for (const Slice& s : slices) {
      if (s.size() == 0 || s.lo >= s.hi) continue;
      out.emplace_back(s.lo, s.hi);
    }
    return out;
  }

  /// The crack half of the join descent: refines this index's level list
  /// against the interval `[lo, hi)` — a partner slice's value range,
  /// pre-extended by the combined half extents — exactly like a query
  /// descent would (crack at the interval bounds, median-split the covered
  /// middle to threshold), but without scanning anything. Must be called on
  /// the index that owns `slices` (it uses that index's array, thresholds,
  /// scratch, and stats shard).
  void RefineForJoin(std::vector<Slice>* slices, Scalar lo, Scalar hi) {
    if (slices->empty()) return;
    const int d = slices->front().level;
    Box<D> ext = Box<D>::Infinite();
    ext.lo[d] = lo;
    ext.hi[d] = hi;
    std::vector<Slice>& rebuilt = visit_scratch_[static_cast<std::size_t>(d)];
    bool rebuilding = false;
    for (std::size_t i = 0; i < slices->size(); ++i) {
      Slice& s = (*slices)[i];
      const bool outside = s.size() == 0 || s.lo >= hi || s.hi <= lo;
      if (!outside && s.size() > threshold_[static_cast<std::size_t>(d)] &&
          !s.frozen) {
        if (!rebuilding) {
          rebuilding = true;
          rebuilt.clear();
          rebuilt.reserve(slices->size() + 8);
          for (std::size_t j = 0; j < i; ++j) {
            rebuilt.push_back(std::move((*slices)[j]));
          }
        }
        std::vector<Slice>& pieces = Refine(std::move(s), ext);
        for (Slice& piece : pieces) {
          rebuilt.push_back(std::move(piece));
        }
      } else if (rebuilding) {
        rebuilt.push_back(std::move(s));
      }
    }
    if (rebuilding) {
      slices->swap(rebuilt);
      rebuilt.clear();  // drop the moved-from originals, keep the capacity
    }
  }

  /// One level of the lockstep join descent over two slice lists (of this
  /// index and `other`; for a self-join both may be the *same* list).
  /// First each side is cracked against a pre-refinement snapshot of the
  /// other side's slice intervals — the snapshot keeps the cross-refinement
  /// from chasing the partner's freshly carved slices, and makes the
  /// self-join refine once instead of twice. Then every overlapping slice
  /// pair is walked: leaf pairs scan, inner pairs descend into their child
  /// lists. Two slices can hold intersecting objects only when their value
  /// intervals come within the combined half extents `h` of each other —
  /// and `sa.hi > sb.lo - h && sb.hi > sa.lo - h` is false for the parked
  /// dead slices (`lo == hi == +inf`), so they are skipped for free. On a
  /// self-join over one list the inner walk starts at `j = i`: the pair
  /// (slice_i, slice_j) already covers both orientations after the
  /// emitter's normalization, so `j < i` would only produce duplicates.
  void JoinVisit(QuasiiIndex<D>* other, std::vector<Slice>* mine,
                 std::vector<Slice>* theirs, JoinEmitter& emit) {
    if (mine->empty() || theirs->empty()) return;
    const int d = mine->front().level;
    const Scalar h = half_extent_[d] + other->half_extent_[d];
    const bool same_list = (mine == theirs);
    const std::vector<std::pair<Scalar, Scalar>> their_iv =
        SliceIntervals(*theirs);
    if (!same_list) {
      const std::vector<std::pair<Scalar, Scalar>> my_iv =
          SliceIntervals(*mine);
      for (const auto& iv : their_iv) {
        RefineForJoin(mine, iv.first - h, iv.second + h);
      }
      for (const auto& iv : my_iv) {
        other->RefineForJoin(theirs, iv.first - h, iv.second + h);
      }
    } else {
      for (const auto& iv : their_iv) {
        RefineForJoin(mine, iv.first - h, iv.second + h);
      }
    }
    // Leaf level with intra-query workers: the remaining work is pure
    // scanning over stable slice lists, so collect the overlapping pairs
    // and fan them out. Inner levels keep the serial walk — their loop
    // bodies mutate (EnsureChild, the recursive refinement).
    if (d == D - 1 && IntraQueryScheduler().parallel()) {
      std::vector<std::pair<const Slice*, const Slice*>> pairs;
      for (std::size_t i = 0; i < mine->size(); ++i) {
        const Slice& sa = (*mine)[i];
        if (sa.size() == 0) continue;
        for (std::size_t j = same_list ? i : 0; j < theirs->size(); ++j) {
          const Slice& sb = (*theirs)[j];
          if (sb.size() == 0) continue;
          if (!(sa.hi > sb.lo - h && sb.hi > sa.lo - h)) continue;
          ++this->Stats().partitions_visited;
          pairs.emplace_back(&sa, &sb);
        }
      }
      if (!pairs.empty()) {
        ParallelLeafJoin(other, pairs, emit, &IntraQueryScheduler());
      }
      return;
    }
    for (std::size_t i = 0; i < mine->size(); ++i) {
      Slice& sa = (*mine)[i];
      if (sa.size() == 0) continue;
      for (std::size_t j = same_list ? i : 0; j < theirs->size(); ++j) {
        Slice& sb = (*theirs)[j];
        if (sb.size() == 0) continue;
        if (!(sa.hi > sb.lo - h && sb.hi > sa.lo - h)) continue;
        ++this->Stats().partitions_visited;
        if (d == D - 1) {
          LeafJoin(other, sa, sb, emit);
        } else {
          EnsureChild(&sa);
          other->EnsureChild(&sb);
          JoinVisit(other, &sa.children, &sb.children, emit);
        }
      }
    }
  }

  /// Scans one leaf-slice pair: each live row of this side's slice streams
  /// through the partner slice's bound columns (`StreamScan` is the exact
  /// box-intersection filter and skips the partner's tombstones itself).
  /// `sink` is either the emitter-backed `LeftFixedSink` (serial path) or a
  /// per-task `PairListSink` (parallel path); counters land in `st` so
  /// tasks accumulate locally.
  template <typename ProbeSink>
  void LeafJoinScan(QuasiiIndex<D>* other, const Slice& sa, const Slice& sb,
                    ProbeSink* sink, QueryStats* st) {
    MatchEmitter me(/*count_only=*/false, sink);
    for (std::size_t r = sa.begin; r < sa.end; ++r) {
      if (!array_.live(r)) continue;
      sink->set_left(array_.id(r));
      st->objects_tested += sb.size();
      const Box<D> probe = array_.box(r);
      st->bytes_scanned += other->array_.StreamScan(
          sb.begin, sb.end, probe, RangePredicate::kIntersects,
          /*covered_dims=*/0u, &me,
          other->packed_scan_enabled_ ? sb.packed.get() : nullptr);
    }
  }

  void LeafJoin(QuasiiIndex<D>* other, const Slice& sa, const Slice& sb,
                JoinEmitter& emit) {
    LeftFixedSink sink(&emit);
    LeafJoinScan(other, sa, sb, &sink, &this->Stats());
  }

  /// Walks a batch of leaf pairs per task, each task collecting its pairs
  /// and counters locally; the caller drains the buffers into the real
  /// emitter in pair-capture order and merges the counters into its own
  /// shard. Safe because at the leaf level nothing mutates: `RefineForJoin`
  /// already ran, `LeafJoinScan` is a pure read, and the slice lists (and
  /// so the captured `Slice*`) are stable for the duration of the walk.
  /// Result sets are unaffected by the batching — the emitter canonicalizes
  /// (sorts, dedups) at Flush.
  void ParallelLeafJoin(
      QuasiiIndex<D>* other,
      const std::vector<std::pair<const Slice*, const Slice*>>& pairs,
      JoinEmitter& emit, TaskScheduler* exec) {
    struct TaskOut {
      std::vector<std::pair<ObjectId, ObjectId>> found;
      QueryStats stats;
    };
    // Batch consecutive pairs by probe work (rows scanned ≈ |a| · |b|)
    // until a batch carries enough to amortize its dispatch.
    std::vector<std::size_t> starts;
    starts.push_back(0);
    std::uint64_t work = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      work += static_cast<std::uint64_t>(pairs[i].first->size()) *
              std::max<std::uint64_t>(1, pairs[i].second->size());
      if (work >= kJoinBatchWork && i + 1 < pairs.size()) {
        starts.push_back(i + 1);
        work = 0;
      }
    }
    std::vector<TaskOut> results(starts.size());
    {
      TaskScheduler::Group g(exec);
      for (std::size_t b = 0; b < starts.size(); ++b) {
        const std::size_t pb = starts[b];
        const std::size_t pe =
            b + 1 < starts.size() ? starts[b + 1] : pairs.size();
        g.Run([this, other, &pairs, &results, b, pb, pe] {
          TaskOut& out = results[b];
          PairListSink sink(&out.found);
          for (std::size_t k = pb; k < pe; ++k) {
            LeafJoinScan(other, *pairs[k].first, *pairs[k].second, &sink,
                         &out.stats);
          }
        });
      }
      g.Wait();
    }
    for (TaskOut& out : results) {
      for (const auto& p : out.found) emit.Add(p.first, p.second);
      this->Stats().objects_tested += out.stats.objects_tested;
      this->Stats().bytes_scanned += out.stats.bytes_scanned;
    }
  }

  /// Tombstone count below which compaction is never worth an O(n) rebuild.
  static constexpr std::size_t kMinCompactTombstones = 64;
  /// Slices below this size split via the iterative worklist even when the
  /// scheduler has workers — a scheduling cutoff only, the split sequence
  /// (and so layout and counters) is identical either way.
  static constexpr std::size_t kParallelSplitMin = std::size_t{1} << 14;
  /// Probe work (|a| · |b| row products) batched into one leaf-join task.
  static constexpr std::uint64_t kJoinBatchWork = std::uint64_t{1} << 18;
  /// Leaves smaller than this are not packed: the per-column metadata and
  /// pad words would eat the savings, and such leaves scan in nanoseconds
  /// anyway.
  static constexpr std::size_t kMinPackRows = 64;

  Params params_;
  bool initialized_ = false;
  bool packed_scan_enabled_ = true;
  /// Packed-leaf aggregates behind `column_memory()` (gauges, maintained at
  /// freeze/reset time — never on the shared read path).
  std::uint64_t packed_leaves_ = 0;
  std::uint64_t packed_rows_ = 0;
  std::uint64_t packed_bytes_ = 0;
  /// Shared structure-of-arrays cracking core (keys, ids, bounds, live).
  CrackArray<D> array_;
  Point<D> half_extent_{};
  std::array<std::size_t, D> threshold_{};
  /// Level-0 slices, ordered by array position (== key order).
  std::vector<Slice> root_;
  /// Reusable buffers: `SplitToThreshold`'s worklist (never live across a
  /// descend) and per-level scratch for `Refine` output / `Visit` rebuilds
  /// (a level's buffer is only reused by the next same-level call, after the
  /// previous contents were consumed).
  std::vector<Slice> split_stack_;
  std::array<std::vector<Slice>, D> refine_scratch_;
  std::array<std::vector<Slice>, D> visit_scratch_;
};

}  // namespace quasii

#endif  // QUASII_QUASII_QUASII_INDEX_H_
