#ifndef QUASII_QUASII_QUASII_INDEX_H_
#define QUASII_QUASII_QUASII_INDEX_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "common/dataset.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// QUASII (Sections 4–5): the paper's query-aware spatial incremental index.
///
/// The structure is a hierarchy of *slices*, one level per dimension: level-d
/// slices partition their parent's entry range along dimension d, so a fully
/// refined index resembles a lazily built STR packing (see `StrSort`). All
/// work happens inside `Query`: a query descends the hierarchy and refines
/// only the slices it touches, cracking them at the query bounds
/// (`CrackOnAxis`) and then sub-slicing the query-covered piece at median
/// keys until it obeys the level's size threshold. Untouched regions keep
/// their coarse slices, so reorganization cost is proportional to what the
/// workload actually asks for — the contrast with Mosaic's eager splitting
/// and SFCracker's many-cracks-per-query behaviour (Section 6.3).
///
/// Per-level size thresholds follow the paper's geometric progression: the
/// leaf (level D-1) threshold is `tau` and each level above is allowed
/// `rho = (n / tau)^(1/D)` times more, so `D` refinements take a slice from
/// `n` down to `tau`.
///
/// Extended objects use the query-extension strategy [40], exactly like
/// `SfcrackerIndex`: an entry is keyed by its MBB centre, queries are
/// extended by half the maximum object extent per dimension, and candidates
/// are filtered against the original query box.
template <int D>
class QuasiiIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Maximum size of a level-(D-1) slice before it is scanned (the paper's
    /// tau, ~1000).
    std::size_t leaf_threshold = 1024;
  };

  /// One slice: a contiguous range `[begin, end)` of the entry array whose
  /// centre keys along dimension `level` all lie in the half-open value
  /// interval `[lo, hi)`. Slices of level `D-1` are leaves; others hold
  /// child slices of the next level once a query has descended into them.
  struct Slice {
    int level = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    Scalar lo = 0;
    Scalar hi = 0;
    /// Set when every key in the range is identical: the slice cannot shrink
    /// below its threshold by cracking along `level` and is accepted as-is.
    bool frozen = false;
    std::vector<Slice> children;

    std::size_t size() const { return end - begin; }
  };

  explicit QuasiiIndex(const Dataset<D>& data, const Params& params = Params{})
      : data_(&data), params_(params) {}

  std::string_view name() const override { return "QUASII"; }

  /// Incremental index: `Build()` is a no-op; all work happens in `Query`.
  void Build() override {}

  void Query(const Box<D>& q, std::vector<ObjectId>* result) override {
    if (q.IsEmpty()) return;  // inverted bounds would corrupt slice order
    if (!initialized_) Initialize();
    if (entries_.empty()) return;
    // Half-open extended query: `[lo, hi)` per dimension covers every centre
    // key of an object whose MBB can intersect `q` (centre-based assignment
    // plus half the maximum extent on both sides).
    Box<D> ext;
    for (int d = 0; d < D; ++d) {
      ext.lo[d] = q.lo[d] - half_extent_[d];
      ext.hi[d] = std::nextafter(q.hi[d] + half_extent_[d],
                                 std::numeric_limits<Scalar>::infinity());
    }
    Visit(&root_, q, ext, result);
  }

  /// Structural accessors for tests and analyses.
  const std::vector<Slice>& root_slices() const { return root_; }
  const std::vector<Entry<D>>& entries() const { return entries_; }
  std::size_t LevelThreshold(int level) const {
    return threshold_[static_cast<std::size_t>(level)];
  }
  bool initialized() const { return initialized_; }

 private:
  static Scalar KeyOf(const Entry<D>& e, int d) {
    return (e.box.lo[d] + e.box.hi[d]) / 2;
  }

  /// First-query work: copy the data into the reorganizable entry array and
  /// derive the per-level thresholds and the query-extension amounts.
  void Initialize() {
    entries_ = MakeEntries(*data_);
    half_extent_ = MaxExtents(*data_);
    for (int d = 0; d < D; ++d) half_extent_[d] /= 2;
    ComputeThresholds(entries_.size());
    root_.clear();
    Slice root;
    root.level = 0;
    root.begin = 0;
    root.end = entries_.size();
    root.lo = -std::numeric_limits<Scalar>::infinity();
    root.hi = std::numeric_limits<Scalar>::infinity();
    root_.push_back(std::move(root));
    initialized_ = true;
  }

  void ComputeThresholds(std::size_t n) {
    const double tau = static_cast<double>(params_.leaf_threshold);
    const double rho =
        n > params_.leaf_threshold
            ? std::pow(static_cast<double>(n) / tau, 1.0 / D)
            : 1.0;
    double t = tau;
    for (int d = D - 1; d >= 0; --d) {
      threshold_[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(std::ceil(t));
      t *= rho;
    }
  }

  /// Two-sided partition of `[begin, end)` by `key < v` — one crack step.
  std::size_t CrackOnAxis(std::size_t begin, std::size_t end, int d, Scalar v) {
    const auto mid = std::partition(
        entries_.begin() + static_cast<std::ptrdiff_t>(begin),
        entries_.begin() + static_cast<std::ptrdiff_t>(end),
        [&](const Entry<D>& e) { return KeyOf(e, d) < v; });
    ++this->stats_.cracks;
    this->stats_.objects_moved += end - begin;
    return static_cast<std::size_t>(mid - entries_.begin());
  }

  /// Refines an oversized slice against the query's `[lo, hi)` interval in
  /// the slice's dimension: cracks off the (coarse) parts before and after
  /// the query, then sub-slices the query-covered middle at median keys
  /// until every piece obeys the level threshold. Returned pieces are
  /// position- and value-ordered and exactly tile the input slice.
  std::vector<Slice> Refine(Slice s, const Box<D>& ext) {
    const int d = s.level;
    const Scalar qlo = ext.lo[d];
    const Scalar qhi = ext.hi[d];
    std::vector<Slice> out;
    if (qlo > s.lo) {
      const std::size_t pos = CrackOnAxis(s.begin, s.end, d, qlo);
      if (pos > s.begin) {
        Slice left;
        left.level = d;
        left.begin = s.begin;
        left.end = pos;
        left.lo = s.lo;
        left.hi = qlo;
        out.push_back(std::move(left));
      }
      s.begin = pos;
      s.lo = qlo;
    }
    Slice right;
    bool have_right = false;
    if (qhi < s.hi) {
      const std::size_t pos = CrackOnAxis(s.begin, s.end, d, qhi);
      if (pos < s.end) {
        right.level = d;
        right.begin = pos;
        right.end = s.end;
        right.lo = qhi;
        right.hi = s.hi;
        have_right = true;
      }
      s.end = pos;
      s.hi = qhi;
    }
    SplitToThreshold(std::move(s), &out);
    if (have_right) out.push_back(std::move(right));
    return out;
  }

  /// Recursively halves a slice at its median key until it is at most the
  /// level threshold. A run of identical keys that cannot be halved is
  /// frozen and accepted oversized (it can still be sliced in later
  /// dimensions).
  void SplitToThreshold(Slice s, std::vector<Slice>* out) {
    if (s.size() == 0) return;
    const int d = s.level;
    if (s.size() <= threshold_[static_cast<std::size_t>(d)]) {
      out->push_back(std::move(s));
      return;
    }
    const std::size_t mid = s.begin + s.size() / 2;
    const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(s.begin);
    const auto nth = entries_.begin() + static_cast<std::ptrdiff_t>(mid);
    const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(s.end);
    std::nth_element(first, nth, last,
                     [&](const Entry<D>& a, const Entry<D>& b) {
                       return KeyOf(a, d) < KeyOf(b, d);
                     });
    ++this->stats_.cracks;
    this->stats_.objects_moved += s.size();
    const Scalar pivot = KeyOf(entries_[mid], d);
    // After nth_element every key below `mid` is <= pivot, so a strict
    // partition of that prefix yields the exact `key < pivot` boundary.
    std::size_t pos = static_cast<std::size_t>(
        std::partition(first, nth,
                       [&](const Entry<D>& e) { return KeyOf(e, d) < pivot; }) -
        entries_.begin());
    Scalar bound = pivot;
    if (pos == s.begin) {
      // The pivot is the minimum key: split above its duplicate run instead.
      pos = static_cast<std::size_t>(
          std::partition(
              nth, last,
              [&](const Entry<D>& e) { return KeyOf(e, d) <= pivot; }) -
          entries_.begin());
      bound =
          std::nextafter(pivot, std::numeric_limits<Scalar>::infinity());
      if (pos == s.end) {  // every key equals the pivot
        s.frozen = true;
        out->push_back(std::move(s));
        return;
      }
    }
    Slice left;
    left.level = d;
    left.begin = s.begin;
    left.end = pos;
    left.lo = s.lo;
    left.hi = bound;
    Slice rest;
    rest.level = d;
    rest.begin = pos;
    rest.end = s.end;
    rest.lo = bound;
    rest.hi = s.hi;
    SplitToThreshold(std::move(left), out);
    SplitToThreshold(std::move(rest), out);
  }

  /// Walks one level's slice list: skips slices outside the query, refines
  /// oversized touched slices in place, and descends (or scans, at the leaf
  /// level) the rest.
  void Visit(std::vector<Slice>* slices, const Box<D>& q, const Box<D>& ext,
             std::vector<ObjectId>* result) {
    for (std::size_t i = 0; i < slices->size();) {
      Slice& s = (*slices)[i];
      const int d = s.level;
      if (s.size() == 0 || s.lo >= ext.hi[d] || s.hi <= ext.lo[d]) {
        ++i;
        continue;
      }
      if (s.size() > threshold_[static_cast<std::size_t>(d)] && !s.frozen) {
        std::vector<Slice> pieces = Refine(std::move(s), ext);
        const auto at =
            slices->erase(slices->begin() + static_cast<std::ptrdiff_t>(i));
        slices->insert(at, std::make_move_iterator(pieces.begin()),
                       std::make_move_iterator(pieces.end()));
        continue;  // reprocess the pieces now occupying position i
      }
      ++this->stats_.partitions_visited;
      if (d == D - 1) {
        for (std::size_t k = s.begin; k < s.end; ++k) {
          ++this->stats_.objects_tested;
          if (entries_[k].box.Intersects(q)) result->push_back(entries_[k].id);
        }
      } else {
        if (s.children.empty()) {
          Slice child;
          child.level = d + 1;
          child.begin = s.begin;
          child.end = s.end;
          child.lo = -std::numeric_limits<Scalar>::infinity();
          child.hi = std::numeric_limits<Scalar>::infinity();
          s.children.push_back(std::move(child));
        }
        Visit(&s.children, q, ext, result);
      }
      ++i;
    }
  }

  const Dataset<D>* data_;
  Params params_;
  bool initialized_ = false;
  std::vector<Entry<D>> entries_;
  Point<D> half_extent_{};
  std::array<std::size_t, D> threshold_{};
  /// Level-0 slices, ordered by array position (== key order).
  std::vector<Slice> root_;
};

}  // namespace quasii

#endif  // QUASII_QUASII_QUASII_INDEX_H_
