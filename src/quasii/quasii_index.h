#ifndef QUASII_QUASII_QUASII_INDEX_H_
#define QUASII_QUASII_QUASII_INDEX_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "common/crack_array.h"
#include "common/dataset.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// QUASII (Sections 4–5): the paper's query-aware spatial incremental index.
///
/// The structure is a hierarchy of *slices*, one level per dimension: level-d
/// slices partition their parent's entry range along dimension d, so a fully
/// refined index resembles a lazily built STR packing (see `StrSort`). All
/// work happens inside query execution: a query descends the hierarchy and
/// refines only the slices it touches, cracking them at the query bounds
/// (`CrackOnAxis`) and then sub-slicing the query-covered piece at median
/// keys until it obeys the level's size threshold. Untouched regions keep
/// their coarse slices, so reorganization cost is proportional to what the
/// workload actually asks for — the contrast with Mosaic's eager splitting
/// and SFCracker's many-cracks-per-query behaviour (Section 6.3).
///
/// Per-level size thresholds follow the paper's geometric progression: the
/// leaf (level D-1) threshold is `tau` and each level above is allowed
/// `rho = (n / tau)^(1/D)` times more, so `D` refinements take a slice from
/// `n` down to `tau`.
///
/// Extended objects use the query-extension strategy [40], exactly like
/// `SfcrackerIndex`: an entry is keyed by its MBB centre, queries are
/// extended by half the maximum object extent per dimension, and candidates
/// are filtered against the original query box.
///
/// Storage is the shared structure-of-arrays `CrackArray` core: cracks and
/// median splits compare precomputed 4-byte keys instead of loading whole
/// entry structs, and leaf scans are `CrackArray::StreamScan` — branchless
/// vectorizable passes over the per-dimension bound columns that stream the
/// survivors straight into the query's `Sink`.
///
/// Every query type of the engine drives cracking:
///  - point queries are zero-extent ranges and refine the slices around the
///    probed point;
///  - count queries descend and crack exactly like ranges but resolve
///    leaves via anonymous `AddMatches` — the id column is never read;
///  - kNN runs an expanding ring of range probes through the normal descent,
///    so nearest-neighbor workloads build the index too.
template <int D>
class QuasiiIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Maximum size of a level-(D-1) slice before it is scanned (the paper's
    /// tau, ~1000).
    std::size_t leaf_threshold = 1024;
  };

  /// One slice: a contiguous range `[begin, end)` of the crack array whose
  /// centre keys along dimension `level` all lie in the half-open value
  /// interval `[lo, hi)`. Slices of level `D-1` are leaves; others hold
  /// child slices of the next level once a query has descended into them.
  struct Slice {
    int level = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    Scalar lo = 0;
    Scalar hi = 0;
    /// Set when every key in the range is identical: the slice cannot shrink
    /// below its threshold by cracking along `level` and is accepted as-is.
    bool frozen = false;
    std::vector<Slice> children;

    std::size_t size() const { return end - begin; }
  };

  explicit QuasiiIndex(const Dataset<D>& data, const Params& params = Params{})
      : data_(&data), params_(params) {}

  std::string_view name() const override { return "QUASII"; }

  /// Incremental index: `Build()` is a no-op; all work happens at query
  /// time.
  void Build() override {}

  /// Structural accessors for tests and analyses.
  const std::vector<Slice>& root_slices() const { return root_; }
  const CrackArray<D>& array() const { return array_; }
  std::size_t LevelThreshold(int level) const {
    return threshold_[static_cast<std::size_t>(level)];
  }
  bool initialized() const { return initialized_; }

 protected:
  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    if (!initialized_) Initialize();
    if (array_.empty()) return;
    // Half-open extended query: `[lo, hi)` per dimension covers every centre
    // key of an object whose MBB can intersect `q` (centre-based assignment
    // plus half the maximum extent on both sides). Containment predicates
    // imply intersection, so the same descent generates their candidates.
    Box<D> ext;
    for (int d = 0; d < D; ++d) {
      ext.lo[d] = q.lo[d] - half_extent_[d];
      ext.hi[d] = std::nextafter(q.hi[d] + half_extent_[d],
                                 std::numeric_limits<Scalar>::infinity());
    }
    MatchEmitter emit(count_only, &sink);
    const BoxExec ctx{&q, predicate, &emit};
    Visit(&root_, ctx, ext, 0u);
    emit.Flush();
  }

  /// Expanding-ring kNN: range probes of doubling radius run through the
  /// normal descent, so each probe cracks the slices it touches — the index
  /// keeps converging under nearest-neighbor workloads.
  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!initialized_) Initialize();
    if (array_.empty()) return;
    this->RingKNearest(*data_, data_bounds_, pt, k, sink);
  }

 private:
  /// One box-driven execution, threaded through the recursive descent.
  struct BoxExec {
    const Box<D>* q;
    RangePredicate predicate;
    MatchEmitter* emit;
  };

  /// First-query work: build the structure-of-arrays columns and derive the
  /// per-level thresholds and the query-extension amounts.
  void Initialize() {
    array_.Reset(*data_);
    half_extent_ = MaxExtents(*data_);
    for (int d = 0; d < D; ++d) half_extent_[d] /= 2;
    data_bounds_ = BoundingBoxOf(*data_);
    ComputeThresholds(array_.size());
    root_.clear();
    Slice root;
    root.level = 0;
    root.begin = 0;
    root.end = array_.size();
    root.lo = -std::numeric_limits<Scalar>::infinity();
    root.hi = std::numeric_limits<Scalar>::infinity();
    root_.push_back(std::move(root));
    initialized_ = true;
  }

  void ComputeThresholds(std::size_t n) {
    const double tau = static_cast<double>(params_.leaf_threshold);
    const double rho =
        n > params_.leaf_threshold
            ? std::pow(static_cast<double>(n) / tau, 1.0 / D)
            : 1.0;
    double t = tau;
    for (int d = D - 1; d >= 0; --d) {
      threshold_[static_cast<std::size_t>(d)] =
          static_cast<std::size_t>(std::ceil(t));
      t *= rho;
    }
  }

  /// Two-sided partition of `[begin, end)` by `key < v` — one crack step.
  std::size_t CrackOnAxis(std::size_t begin, std::size_t end, int d, Scalar v) {
    const std::size_t pos = array_.CrackOnAxis(begin, end, d, v);
    ++this->stats_.cracks;
    this->stats_.objects_moved += end - begin;
    return pos;
  }

  /// Refines an oversized slice against the query's `[lo, hi)` interval in
  /// the slice's dimension: cracks off the (coarse) parts before and after
  /// the query, then sub-slices the query-covered middle at median keys
  /// until every piece obeys the level threshold. The returned pieces are
  /// position- and value-ordered, exactly tile the input slice, and live in
  /// this level's scratch buffer (valid until the next same-level `Refine`).
  std::vector<Slice>& Refine(Slice s, const Box<D>& ext) {
    const int d = s.level;
    const Scalar qlo = ext.lo[d];
    const Scalar qhi = ext.hi[d];
    std::vector<Slice>& out = refine_scratch_[static_cast<std::size_t>(d)];
    out.clear();
    if (qlo > s.lo) {
      const std::size_t pos = CrackOnAxis(s.begin, s.end, d, qlo);
      if (pos > s.begin) {
        Slice left;
        left.level = d;
        left.begin = s.begin;
        left.end = pos;
        left.lo = s.lo;
        left.hi = qlo;
        out.push_back(std::move(left));
      }
      s.begin = pos;
      s.lo = qlo;
    }
    Slice right;
    bool have_right = false;
    if (qhi < s.hi) {
      const std::size_t pos = CrackOnAxis(s.begin, s.end, d, qhi);
      if (pos < s.end) {
        right.level = d;
        right.begin = pos;
        right.end = s.end;
        right.lo = qhi;
        right.hi = s.hi;
        have_right = true;
      }
      s.end = pos;
      s.hi = qhi;
    }
    SplitToThreshold(std::move(s), &out);
    if (have_right) out.push_back(std::move(right));
    return out;
  }

  /// Halves a slice at its median key until every piece is at most the level
  /// threshold, iteratively via a reusable worklist (left-to-right emission
  /// order, no recursion). A run of identical keys that cannot be halved is
  /// frozen and accepted oversized (it can still be sliced in later
  /// dimensions).
  void SplitToThreshold(Slice s, std::vector<Slice>* out) {
    if (s.size() == 0) return;
    const int d = s.level;
    const std::size_t limit = threshold_[static_cast<std::size_t>(d)];
    split_stack_.clear();
    split_stack_.push_back(std::move(s));
    while (!split_stack_.empty()) {
      Slice t = std::move(split_stack_.back());
      split_stack_.pop_back();
      if (t.size() <= limit) {
        out->push_back(std::move(t));
        continue;
      }
      const auto split = array_.MedianSplit(t.begin, t.end, d);
      ++this->stats_.cracks;
      this->stats_.objects_moved += t.size();
      if (split.frozen) {
        t.frozen = true;
        out->push_back(std::move(t));
        continue;
      }
      Slice left;
      left.level = d;
      left.begin = t.begin;
      left.end = split.pos;
      left.lo = t.lo;
      left.hi = split.bound;
      Slice rest;
      rest.level = d;
      rest.begin = split.pos;
      rest.end = t.end;
      rest.lo = split.bound;
      rest.hi = t.hi;
      // LIFO: push the right half first so the left half is processed (and
      // emitted) before it.
      split_stack_.push_back(std::move(rest));
      split_stack_.push_back(std::move(left));
    }
  }

  /// Walks one level's slice list: skips slices outside the query, refines
  /// oversized touched slices, and descends (or scans, at the leaf level)
  /// the rest. Refinement pieces are stitched into a rebuilt list in one
  /// pass instead of `erase`+`insert` splicing, so a query that cracks k
  /// slices costs one O(list) rebuild, not k of them.
  void Visit(std::vector<Slice>* slices, const BoxExec& ctx, const Box<D>& ext,
             unsigned covered) {
    const int d = slices->front().level;
    std::vector<Slice>& rebuilt = visit_scratch_[static_cast<std::size_t>(d)];
    bool rebuilding = false;
    for (std::size_t i = 0; i < slices->size(); ++i) {
      Slice& s = (*slices)[i];
      const bool outside =
          s.size() == 0 || s.lo >= ext.hi[d] || s.hi <= ext.lo[d];
      if (!outside && s.size() > threshold_[static_cast<std::size_t>(d)] &&
          !s.frozen) {
        if (!rebuilding) {
          rebuilding = true;
          rebuilt.clear();
          rebuilt.reserve(slices->size() + 8);
          for (std::size_t j = 0; j < i; ++j) {
            rebuilt.push_back(std::move((*slices)[j]));
          }
        }
        std::vector<Slice>& pieces = Refine(std::move(s), ext);
        for (Slice& piece : pieces) {
          Process(&piece, ctx, ext, covered);
          rebuilt.push_back(std::move(piece));
        }
      } else {
        if (!outside) Process(&s, ctx, ext, covered);
        if (rebuilding) rebuilt.push_back(std::move(s));
      }
    }
    if (rebuilding) {
      slices->swap(rebuilt);
      rebuilt.clear();  // drop the moved-from originals, keep the capacity
    }
  }

  /// Handles one within-threshold (or frozen) slice that may overlap the
  /// query: scans it at the leaf level, descends otherwise. `covered` is the
  /// bitmask of dimensions whose slice value range lies inside the query's
  /// own interval — every centre key there is inside `q`, which (as
  /// `box.lo <= centre <= box.hi`) already proves the box overlaps `q` in
  /// that dimension, so the leaf scan skips its bound test (intersection
  /// predicate only; `StreamScan` ignores the mask for containment).
  void Process(Slice* s, const BoxExec& ctx, const Box<D>& ext,
               unsigned covered) {
    const int d = s->level;
    if (s->size() == 0 || s->lo >= ext.hi[d] || s->hi <= ext.lo[d]) return;
    if (ctx.q->lo[d] <= s->lo && s->hi <= ctx.q->hi[d]) covered |= 1u << d;
    ++this->stats_.partitions_visited;
    if (d == D - 1) {
      this->stats_.objects_tested += s->size();
      array_.StreamScan(s->begin, s->end, *ctx.q, ctx.predicate, covered,
                        ctx.emit);
      return;
    }
    if (s->children.empty()) {
      Slice child;
      child.level = d + 1;
      child.begin = s->begin;
      child.end = s->end;
      child.lo = -std::numeric_limits<Scalar>::infinity();
      child.hi = std::numeric_limits<Scalar>::infinity();
      s->children.push_back(std::move(child));
    }
    Visit(&s->children, ctx, ext, covered);
  }

  const Dataset<D>* data_;
  Params params_;
  bool initialized_ = false;
  /// Shared structure-of-arrays cracking core (keys, ids, boxes).
  CrackArray<D> array_;
  Point<D> half_extent_{};
  /// MBB of the dataset — the expanding-ring kNN termination bound.
  Box<D> data_bounds_;
  std::array<std::size_t, D> threshold_{};
  /// Level-0 slices, ordered by array position (== key order).
  std::vector<Slice> root_;
  /// Reusable buffers: `SplitToThreshold`'s worklist (never live across a
  /// descend) and per-level scratch for `Refine` output / `Visit` rebuilds
  /// (a level's buffer is only reused by the next same-level call, after the
  /// previous contents were consumed).
  std::vector<Slice> split_stack_;
  std::array<std::vector<Slice>, D> refine_scratch_;
  std::array<std::vector<Slice>, D> visit_scratch_;
};

}  // namespace quasii

#endif  // QUASII_QUASII_QUASII_INDEX_H_
