#ifndef QUASII_SFC_SFC_INDEX_H_
#define QUASII_SFC_SFC_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/mutation_overflow.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "sfc/zentry.h"
#include "zorder/bigmin.h"
#include "zorder/decompose.h"
#include "zorder/zgrid.h"
#include "zorder/zorder.h"

namespace quasii {

/// How the static SFC index evaluates a range query.
enum class SfcQueryStrategy {
  /// Decompose the query into Z-intervals up front (Tropf–Herzog [43], the
  /// paper's choice) and binary-search each interval.
  kDecompose,
  /// Scan `[zmin, zmax]` and skip non-qualifying gaps with BIGMIN — the
  /// UB-tree style alternative, kept as an ablation.
  kBigMinScan,
};

/// Static one-dimensional index (Section 6.1 "SFC"): objects are mapped to
/// 32-bit Z-codes via a uniform grid over the universe and sorted once in
/// the pre-processing phase; queries are converted to Z-intervals and
/// resolved with binary search plus an intersection filter.
///
/// Mutations use the overflow pattern of the static roster indexes: inserts
/// join a pending list every query scans exhaustively (no Z-coding until
/// the next rebuild), erases of sorted entries flip a per-id dead bit the
/// interval scans skip, and a rebuild re-sorts the live set once either
/// side outgrows its threshold.
template <int D>
class SfcIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Interval budget for the query decomposition (the paper reports ~197
    /// intervals per query on its workloads; the budget caps pathological
    /// cases, excess is absorbed as false positives).
    int max_intervals = 256;
    SfcQueryStrategy strategy = SfcQueryStrategy::kDecompose;
  };

  SfcIndex(const Dataset<D>& data, const Box<D>& universe,
           const Params& params = Params{})
      : SpatialIndex<D>(data), grid_(universe), params_(params) {}

  std::string_view name() const override { return "SFC"; }

  /// Pre-processing: Z-code every live object's centre cell and sort.
  void Build() override {
    const ObjectStore<D>& store = this->store_;
    entries_.clear();
    entries_.reserve(store.live_count());
    half_extent_ = Point<D>{};
    store.ForEachLive([this](ObjectId id, const Box<D>& b) {
      entries_.push_back(ZEntry{grid_.CodeOf(b.Center()), id});
      for (int d = 0; d < D; ++d) {
        half_extent_[d] = std::max(half_extent_[d], b.Extent(d) / 2);
      }
    });
    std::sort(entries_.begin(), entries_.end(),
              [](const ZEntry& a, const ZEntry& b) { return a.code < b.code; });
    overflow_.Reset(store.slots());
    built_ = true;
  }

  const std::vector<ZEntry>& entries() const { return entries_; }

  /// The sorted code array is immutable at query time (mutations only touch
  /// the overflow lists, under the exclusive lock), so any query is
  /// concurrent-safe once built.
  bool ConvergedFor(const Query<D>&) const override { return built_; }

 protected:
  void OnInsert(ObjectId id, const Box<D>&) override {
    if (!built_) return;  // Build() reads the store wholesale
    overflow_.AddPending(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Build();
  }

  void OnErase(ObjectId id) override {
    if (!built_) return;
    overflow_.Erase(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Build();
  }

  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    if (!built_) Build();
    // Centre-based assignment: extend by half the max extent per dimension
    // so every intersecting object's centre cell is covered (containment
    // predicates imply intersection, so the candidate set stays valid).
    Box<D> extended = q;
    for (int d = 0; d < D; ++d) {
      extended.lo[d] -= half_extent_[d];
      extended.hi[d] += half_extent_[d];
    }
    typename zorder::ZGrid<D>::Cells lo, hi;
    grid_.CellRect(extended, &lo, &hi);
    MatchEmitter emit(count_only, &sink);
    const BoxExec ctx{&q, predicate, &emit};
    if (params_.strategy == SfcQueryStrategy::kDecompose) {
      QueryDecompose(ctx, lo, hi);
    } else {
      QueryBigMinScan(ctx, lo, hi);
    }
    // Pending objects are not Z-coded yet.
    overflow_.ScanPending(this->store_, q, predicate, &emit, &this->Stats());
    emit.Flush();
  }

  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!built_) Build();
    this->RingKNearest(pt, k, sink);
  }

 private:
  using Cells = typename zorder::ZGrid<D>::Cells;

  /// Box-execution context (see `SpatialIndex::ExecuteBox` for the shared
  /// contract); threaded through the interval walks instead of a descent.
  struct BoxExec {
    const Box<D>* q;
    RangePredicate predicate;
    MatchEmitter* emit;
  };

  void Scan(const BoxExec& ctx, std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const ObjectId id = entries_[k].id;
      if (overflow_.dead(id)) continue;
      ++this->Stats().objects_tested;
      if (MatchesPredicate(this->store_.box(id), *ctx.q, ctx.predicate)) {
        ctx.emit->Add(id);
      }
    }
  }

  std::size_t LowerBound(zorder::ZCode code) const {
    return static_cast<std::size_t>(
        std::lower_bound(entries_.begin(), entries_.end(), code,
                         [](const ZEntry& e, zorder::ZCode c) {
                           return e.code < c;
                         }) -
        entries_.begin());
  }

  void QueryDecompose(const BoxExec& ctx, const Cells& lo, const Cells& hi) {
    // Thread-local (concurrent queries must not share an index member) and
    // memoized, so back-to-back identical rectangles decompose once.
    const std::vector<zorder::ZInterval>& intervals =
        zorder::DecomposeCached<D>(lo, hi, params_.max_intervals);
    this->Stats().intervals += intervals.size();
    for (const zorder::ZInterval& iv : intervals) {
      ++this->Stats().partitions_visited;
      const std::size_t begin = LowerBound(iv.lo);
      std::size_t end = entries_.size();
      if (iv.hi != std::numeric_limits<zorder::ZCode>::max()) {
        end = LowerBound(iv.hi + 1);
      }
      Scan(ctx, begin, end);
    }
  }

  void QueryBigMinScan(const BoxExec& ctx, const Cells& lo, const Cells& hi) {
    const zorder::ZCode zmin = zorder::ZTraits<D>::Encode(lo);
    const zorder::ZCode zmax = zorder::ZTraits<D>::Encode(hi);
    std::size_t pos = LowerBound(zmin);
    while (pos < entries_.size() && entries_[pos].code <= zmax) {
      const auto cell = zorder::ZTraits<D>::Decode(entries_[pos].code);
      bool in_rect = true;
      for (int d = 0; d < D; ++d) {
        if (cell[static_cast<size_t>(d)] < lo[static_cast<size_t>(d)] ||
            cell[static_cast<size_t>(d)] > hi[static_cast<size_t>(d)]) {
          in_rect = false;
          break;
        }
      }
      if (in_rect) {
        const ObjectId id = entries_[pos].id;
        if (!overflow_.dead(id)) {
          ++this->Stats().objects_tested;
          if (MatchesPredicate(this->store_.box(id), *ctx.q,
                               ctx.predicate)) {
            ctx.emit->Add(id);
          }
        }
        ++pos;
        continue;
      }
      // Gap: jump to the next code inside the query rectangle.
      ++this->Stats().partitions_visited;
      const auto next =
          zorder::BigMin<D>(entries_[pos].code, zmin, zmax);
      if (!next.has_value()) break;
      pos = LowerBound(*next);
    }
  }

  zorder::ZGrid<D> grid_;
  Params params_;
  bool built_ = false;
  std::vector<ZEntry> entries_;
  Point<D> half_extent_{};
  /// Shared mutation-overflow state (pending inserts + sorted-id
  /// tombstones).
  MutationOverflow<D> overflow_;
};

}  // namespace quasii

#endif  // QUASII_SFC_SFC_INDEX_H_
