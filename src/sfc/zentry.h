#ifndef QUASII_SFC_ZENTRY_H_
#define QUASII_SFC_ZENTRY_H_

#include "common/spatial_index.h"
#include "zorder/zorder.h"

namespace quasii {

/// One object as the SFC-based indexes see it: its Z-code (of the cell
/// containing the object's centre) plus the object id. The actual MBB stays
/// in the dataset and is only consulted for the final intersection filter.
struct ZEntry {
  zorder::ZCode code = 0;
  ObjectId id = 0;
};

}  // namespace quasii

#endif  // QUASII_SFC_ZENTRY_H_
