#ifndef QUASII_SFC_SFCRACKER_INDEX_H_
#define QUASII_SFC_SFCRACKER_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "common/crack_array.h"
#include "common/dataset.h"
#include "common/mutation_overflow.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "sfc/zentry.h"
#include "zorder/decompose.h"
#include "zorder/zgrid.h"
#include "zorder/zorder.h"

namespace quasii {

/// SFCracker (Section 3.1): database cracking [Idreos et al., 18] applied to
/// spatial data via a Z-order transformation.
///
/// The first query pays the multi-d → 1d transformation (Z-coding every
/// object — the paper measures this at 12.9% of full pre-processing, and the
/// first query at 43% once its cracks are added). Every query is decomposed
/// into Z-intervals (Tropf–Herzog [43]); each interval two-sidedly cracks
/// the code array, exactly like relational cracking on the two interval end
/// points, so one spatial query performs many cracks — the weakness the
/// paper demonstrates (Section 6.3).
///
/// Storage is structure-of-arrays (code column + id column) on the same
/// `CrackPartition` primitive as QUASII's `CrackArray`, so crack comparisons
/// stream through the dense 8-byte code column only.
///
/// Mutations cannot join the cracked code array directly (the boundary map
/// pins every learned position), so inserts overflow into a pending list
/// each query scans exhaustively and erases flip a per-id dead bit the
/// interval scans skip; once either side outgrows its threshold the
/// transformation restarts from the live set (the cracker re-learns its
/// boundaries from subsequent queries, the paper's incremental setting).
template <int D>
class SfcrackerIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    int max_intervals = 256;
  };

  SfcrackerIndex(const Dataset<D>& data, const Box<D>& universe,
                 const Params& params = Params{})
      : SpatialIndex<D>(data), grid_(universe), params_(params) {}

  std::string_view name() const override { return "SFCracker"; }

  /// Incremental index: `Build()` is a no-op; all work happens inside query
  /// execution.
  void Build() override {}

  /// Rebuild-from-store restore (no structure blob): reset so the next
  /// query re-reads the recovered store wholesale.
  void RebuildFromStore() override { initialized_ = false; }

  /// A box query is converged when every Z-interval it decomposes into has
  /// both of its crack boundaries already learned — then `CrackAt` is a
  /// pure map lookup and the interval scans (plus the read-only pending
  /// scan) mutate nothing. kNN stays conservative: its expanding ring
  /// probes regions the triggering query never names — as do joins, whose
  /// nested-loop probes crack around every partner box.
  bool ConvergedFor(const Query<D>& query) const override {
    if (!initialized_) return false;
    if (query.type() == QueryType::kKNearest ||
        query.type() == QueryType::kJoin) {
      return false;
    }
    const Box<D> box = DescentBox(query);
    if (box.IsEmpty()) return true;
    Box<D> extended = box;
    for (int d = 0; d < D; ++d) {
      extended.lo[d] -= half_extent_[d];
      extended.hi[d] += half_extent_[d];
    }
    typename zorder::ZGrid<D>::Cells lo, hi;
    grid_.CellRect(extended, &lo, &hi);
    for (const zorder::ZInterval& iv :
         zorder::DecomposeCached<D>(lo, hi, params_.max_intervals)) {
      if (boundaries_.find(iv.lo) == boundaries_.end()) return false;
      if (iv.hi != std::numeric_limits<zorder::ZCode>::max() &&
          boundaries_.find(iv.hi + 1) == boundaries_.end()) {
        return false;
      }
    }
    return true;
  }

 protected:
  void OnInsert(ObjectId id, const Box<D>&) override {
    if (!initialized_) return;  // Initialize() reads the store wholesale
    overflow_.AddPending(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Initialize();
  }

  void OnErase(ObjectId id) override {
    if (!initialized_) return;
    overflow_.Erase(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Initialize();
  }

  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    if (!initialized_) Initialize();

    Box<D> extended = q;
    for (int d = 0; d < D; ++d) {
      extended.lo[d] -= half_extent_[d];
      extended.hi[d] += half_extent_[d];
    }
    typename zorder::ZGrid<D>::Cells lo, hi;
    grid_.CellRect(extended, &lo, &hi);
    // Thread-local (concurrent converged queries must not share an index
    // member) and memoized: when `Execute`'s ConvergedFor pre-check just
    // decomposed this same rectangle, the cached intervals are reused.
    const std::vector<zorder::ZInterval>& intervals =
        zorder::DecomposeCached<D>(lo, hi, params_.max_intervals);
    this->Stats().intervals += intervals.size();

    MatchEmitter emit(count_only, &sink);
    for (const zorder::ZInterval& iv : intervals) {
      ++this->Stats().partitions_visited;
      const std::size_t begin = CrackAt(iv.lo);
      std::size_t end = codes_.size();
      if (iv.hi != std::numeric_limits<zorder::ZCode>::max()) {
        end = CrackAt(iv.hi + 1);
      }
      for (std::size_t k = begin; k < end; ++k) {
        const ObjectId id = ids_[k];
        if (overflow_.dead(id)) continue;
        ++this->Stats().objects_tested;
        if (MatchesPredicate(this->store_.box(id), q, predicate)) {
          emit.Add(id);
        }
      }
    }
    // Pending objects are not Z-coded yet.
    overflow_.ScanPending(this->store_, q, predicate, &emit, &this->Stats());
    emit.Flush();
  }

  /// Expanding-ring kNN over the cracker's own range machinery — each probe
  /// decomposes and cracks, so kNN workloads refine the code array exactly
  /// like range workloads do.
  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!initialized_) Initialize();
    this->RingKNearest(pt, k, sink);
  }

 public:

  /// Number of crack boundaries learned so far (for tests/analysis).
  std::size_t num_boundaries() const { return boundaries_.size(); }
  /// The cracker index itself (code -> position), for invariant tests.
  const std::map<zorder::ZCode, std::size_t>& boundaries() const {
    return boundaries_;
  }
  const std::vector<zorder::ZCode>& codes() const { return codes_; }
  const std::vector<ObjectId>& ids() const { return ids_; }
  /// AoS view for tests that inspect (code, id) rows together. Materializes
  /// a fresh O(n) copy on every call — named accordingly so nobody holds
  /// pointers or iterators into the temporary.
  std::vector<ZEntry> MaterializeEntries() const {
    std::vector<ZEntry> rows;
    rows.reserve(codes_.size());
    for (std::size_t i = 0; i < codes_.size(); ++i) {
      rows.push_back(ZEntry{codes_[i], ids_[i]});
    }
    return rows;
  }
  bool initialized() const { return initialized_; }

 private:
  /// First-query (and mutation-overflow restart) work: the multi- to
  /// one-dimensional transformation over the live set. Learned boundaries
  /// reset; subsequent queries re-crack.
  void Initialize() {
    const ObjectStore<D>& store = this->store_;
    codes_.clear();
    ids_.clear();
    codes_.reserve(store.live_count());
    ids_.reserve(store.live_count());
    half_extent_ = Point<D>{};
    store.ForEachLive([this](ObjectId id, const Box<D>& b) {
      codes_.push_back(grid_.CodeOf(b.Center()));
      ids_.push_back(id);
      for (int d = 0; d < D; ++d) {
        half_extent_[d] = std::max(half_extent_[d], b.Extent(d) / 2);
      }
    });
    boundaries_.clear();
    overflow_.Reset(store.slots());
    initialized_ = true;
  }

  /// Returns the position `p` such that `codes_[0, p)` are < `v` and
  /// `codes_[p, n)` are >= `v`, cracking the containing piece if the
  /// boundary is not yet known (incremental quicksort step of [18]).
  std::size_t CrackAt(zorder::ZCode v) {
    const auto exact = boundaries_.find(v);
    if (exact != boundaries_.end()) return exact->second;

    std::size_t piece_lo = 0;
    std::size_t piece_hi = codes_.size();
    const auto next = boundaries_.upper_bound(v);
    if (next != boundaries_.end()) piece_hi = next->second;
    if (next != boundaries_.begin()) piece_lo = std::prev(next)->second;

    const std::size_t pos = CrackPartition(
        codes_.data(), piece_lo, piece_hi,
        [v](zorder::ZCode c) { return c < v; },
        [this](std::size_t i, std::size_t j) {
          std::swap(codes_[i], codes_[j]);
          std::swap(ids_[i], ids_[j]);
        });
    boundaries_[v] = pos;
    ++this->Stats().cracks;
    this->Stats().objects_moved += piece_hi - piece_lo;
    return pos;
  }

  zorder::ZGrid<D> grid_;
  Params params_;
  bool initialized_ = false;
  /// Structure-of-arrays cracker storage: Z-code column + id column,
  /// permuted in lockstep by `CrackPartition`.
  std::vector<zorder::ZCode> codes_;
  std::vector<ObjectId> ids_;
  Point<D> half_extent_{};
  /// Cracker index: boundary value -> array position (AVL tree in [18]).
  std::map<zorder::ZCode, std::size_t> boundaries_;
  /// Shared mutation-overflow state (pending inserts + cracked-id
  /// tombstones).
  MutationOverflow<D> overflow_;
};

}  // namespace quasii

#endif  // QUASII_SFC_SFCRACKER_INDEX_H_
