#ifndef QUASII_SFC_SFCRACKER_INDEX_H_
#define QUASII_SFC_SFCRACKER_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <map>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "sfc/zentry.h"
#include "zorder/decompose.h"
#include "zorder/zgrid.h"
#include "zorder/zorder.h"

namespace quasii {

/// SFCracker (Section 3.1): database cracking [Idreos et al., 18] applied to
/// spatial data via a Z-order transformation.
///
/// The first query pays the multi-d → 1d transformation (Z-coding every
/// object — the paper measures this at 12.9% of full pre-processing, and the
/// first query at 43% once its cracks are added). Every query is decomposed
/// into Z-intervals (Tropf–Herzog [43]); each interval two-sidedly cracks
/// the code array, exactly like relational cracking on the two interval end
/// points, so one spatial query performs many cracks — the weakness the
/// paper demonstrates (Section 6.3).
template <int D>
class SfcrackerIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    int max_intervals = 256;
  };

  SfcrackerIndex(const Dataset<D>& data, const Box<D>& universe,
                 const Params& params = Params{})
      : data_(&data), grid_(universe), params_(params) {}

  std::string_view name() const override { return "SFCracker"; }

  /// Incremental index: `Build()` is a no-op; all work happens in `Query`.
  void Build() override {}

  void Query(const Box<D>& q, std::vector<ObjectId>* result) override {
    if (!initialized_) Initialize();
    const Dataset<D>& data = *data_;

    Box<D> extended = q;
    for (int d = 0; d < D; ++d) {
      extended.lo[d] -= half_extent_[d];
      extended.hi[d] += half_extent_[d];
    }
    typename zorder::ZGrid<D>::Cells lo, hi;
    grid_.CellRect(extended, &lo, &hi);
    intervals_.clear();
    zorder::ZRangeDecomposer<D>::Decompose(lo, hi, params_.max_intervals,
                                           &intervals_);
    this->stats_.intervals += intervals_.size();

    for (const zorder::ZInterval& iv : intervals_) {
      ++this->stats_.partitions_visited;
      const std::size_t begin = CrackAt(iv.lo);
      std::size_t end = entries_.size();
      if (iv.hi != std::numeric_limits<zorder::ZCode>::max()) {
        end = CrackAt(iv.hi + 1);
      }
      for (std::size_t k = begin; k < end; ++k) {
        ++this->stats_.objects_tested;
        const ObjectId id = entries_[k].id;
        if (data[id].Intersects(q)) result->push_back(id);
      }
    }
  }

  /// Number of crack boundaries learned so far (for tests/analysis).
  std::size_t num_boundaries() const { return boundaries_.size(); }
  /// The cracker index itself (code -> position), for invariant tests.
  const std::map<zorder::ZCode, std::size_t>& boundaries() const {
    return boundaries_;
  }
  const std::vector<ZEntry>& entries() const { return entries_; }
  bool initialized() const { return initialized_; }

 private:
  /// First-query work: the multi- to one-dimensional transformation.
  void Initialize() {
    const Dataset<D>& data = *data_;
    entries_.clear();
    entries_.reserve(data.size());
    half_extent_ = Point<D>{};
    for (ObjectId i = 0; i < data.size(); ++i) {
      entries_.push_back(ZEntry{grid_.CodeOf(data[i].Center()), i});
      for (int d = 0; d < D; ++d) {
        half_extent_[d] = std::max(half_extent_[d], data[i].Extent(d) / 2);
      }
    }
    initialized_ = true;
  }

  /// Returns the position `p` such that `entries_[0, p)` have code < `v` and
  /// `entries_[p, n)` have code >= `v`, cracking the containing piece if the
  /// boundary is not yet known (incremental quicksort step of [18]).
  std::size_t CrackAt(zorder::ZCode v) {
    const auto exact = boundaries_.find(v);
    if (exact != boundaries_.end()) return exact->second;

    std::size_t piece_lo = 0;
    std::size_t piece_hi = entries_.size();
    const auto next = boundaries_.upper_bound(v);
    if (next != boundaries_.end()) piece_hi = next->second;
    if (next != boundaries_.begin()) piece_lo = std::prev(next)->second;

    const auto mid = std::partition(
        entries_.begin() + static_cast<std::ptrdiff_t>(piece_lo),
        entries_.begin() + static_cast<std::ptrdiff_t>(piece_hi),
        [v](const ZEntry& e) { return e.code < v; });
    const std::size_t pos =
        static_cast<std::size_t>(mid - entries_.begin());
    boundaries_[v] = pos;
    ++this->stats_.cracks;
    this->stats_.objects_moved += piece_hi - piece_lo;
    return pos;
  }

  const Dataset<D>* data_;
  zorder::ZGrid<D> grid_;
  Params params_;
  bool initialized_ = false;
  std::vector<ZEntry> entries_;
  Point<D> half_extent_{};
  /// Cracker index: boundary value -> array position (AVL tree in [18]).
  std::map<zorder::ZCode, std::size_t> boundaries_;
  std::vector<zorder::ZInterval> intervals_;
};

}  // namespace quasii

#endif  // QUASII_SFC_SFCRACKER_INDEX_H_
