#ifndef QUASII_RTREE_RTREE_INDEX_H_
#define QUASII_RTREE_RTREE_INDEX_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "rtree/str_pack.h"

namespace quasii {

/// STR bulk-loaded R-Tree — the paper's strongest static comparator
/// (Section 6.1: bulk loading "reduces overlap and decreases pre-processing
/// time compared to the R-Tree built by inserting one object at a time").
///
/// Layout: entries are STR-ordered once at build; every tree level is a
/// plain vector of nodes whose children are a consecutive range of the level
/// below (or of the entry array for leaves). This keeps traversal
/// cache-friendly and makes structural invariants easy to check in tests.
template <int D>
class RTreeIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Leaf and internal fan-out. The paper uses 60 (same as QUASII's tau).
    std::size_t node_capacity = 60;
  };

  struct Node {
    Box<D> box;
    /// Child range: indexes `entries()` at level 0, the level below
    /// otherwise.
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Copies `data` into the internal entry array (STR reorders it).
  RTreeIndex(const Dataset<D>& data, const Params& params = Params{})
      : entries_(MakeEntries(data)), params_(params) {}

  std::string_view name() const override { return "R-Tree"; }

  /// STR bulk load: the R-Tree's whole pre-processing cost.
  void Build() override {
    levels_.clear();
    const std::size_t cap = params_.node_capacity;
    StrSort<D>(entries_, 0, entries_.size(), /*dim=*/0, cap,
               [](const Entry<D>& e, int d) { return e.box.Center()[d]; });

    // Leaf level over entries.
    std::vector<Node> level;
    for (std::size_t begin = 0; begin < entries_.size(); begin += cap) {
      Node node;
      node.begin = begin;
      node.end = std::min(begin + cap, entries_.size());
      for (std::size_t i = node.begin; i < node.end; ++i) {
        node.box.ExpandToInclude(entries_[i].box);
      }
      level.push_back(node);
    }
    if (level.empty()) level.push_back(Node{});  // empty dataset: empty root
    levels_.push_back(std::move(level));

    // Internal levels until a single root remains.
    while (levels_.back().size() > 1) {
      std::vector<Node>& below = levels_.back();
      StrSort<D>(below, 0, below.size(), /*dim=*/0, cap,
                 [](const Node& n, int d) { return n.box.Center()[d]; });
      std::vector<Node> parents;
      for (std::size_t begin = 0; begin < below.size(); begin += cap) {
        Node node;
        node.begin = begin;
        node.end = std::min(begin + cap, below.size());
        for (std::size_t i = node.begin; i < node.end; ++i) {
          node.box.ExpandToInclude(below[i].box);
        }
        parents.push_back(node);
      }
      // Children of level-0 nodes index `entries_`, which StrSort did not
      // move here, so ranges stay valid; higher levels reference `below`,
      // whose order we just changed — hence parents are built *after* the
      // sort and reference the sorted order.
      levels_.push_back(std::move(parents));
    }
    built_ = true;
  }

  void Query(const Box<D>& q, std::vector<ObjectId>* result) override {
    if (q.IsEmpty()) return;  // an empty box contains no points
    if (!built_) Build();
    QueryNode(q, levels_.size() - 1, 0, result);
  }

  /// Structural accessors for tests and benchmarks.
  const std::vector<Entry<D>>& entries() const { return entries_; }
  const std::vector<std::vector<Node>>& levels() const { return levels_; }
  std::size_t depth() const { return levels_.size(); }

 private:
  void QueryNode(const Box<D>& q, std::size_t level, std::size_t node_idx,
                 std::vector<ObjectId>* result) {
    const Node& node = levels_[level][node_idx];
    ++this->stats_.partitions_visited;
    if (level == 0) {
      for (std::size_t i = node.begin; i < node.end; ++i) {
        ++this->stats_.objects_tested;
        if (entries_[i].box.Intersects(q)) result->push_back(entries_[i].id);
      }
      return;
    }
    const std::vector<Node>& below = levels_[level - 1];
    for (std::size_t i = node.begin; i < node.end; ++i) {
      if (below[i].box.Intersects(q)) {
        QueryNode(q, level - 1, i, result);
      }
    }
  }

  std::vector<Entry<D>> entries_;
  Params params_;
  bool built_ = false;
  /// levels_[0] = leaves ... levels_.back() = root level (size 1).
  std::vector<std::vector<Node>> levels_;
};

}  // namespace quasii

#endif  // QUASII_RTREE_RTREE_INDEX_H_
