#ifndef QUASII_RTREE_RTREE_INDEX_H_
#define QUASII_RTREE_RTREE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/dataset.h"
#include "common/mutation_overflow.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "rtree/str_pack.h"

namespace quasii {

/// STR bulk-loaded R-Tree — the paper's strongest static comparator
/// (Section 6.1: bulk loading "reduces overlap and decreases pre-processing
/// time compared to the R-Tree built by inserting one object at a time").
///
/// Layout: entries are STR-ordered once at build; every tree level is a
/// plain vector of nodes whose children are a consecutive range of the level
/// below (or of the entry array for leaves). This keeps traversal
/// cache-friendly and makes structural invariants easy to check in tests.
///
/// Per-type fast paths of the query engine:
///  - `kContains` prunes with `node.box ⊇ q` (an object containing the
///    query forces every ancestor MBB to contain it too);
///  - `kContainedBy` bulk-resolves nodes whose MBB lies inside `q` — every
///    entry below matches without a single box test;
///  - `kCount` combines the above with per-node subtree counts, so a node
///    fully inside an intersection/containment count adds its `count`
///    without descending (and never touches an id);
///  - `kKNearest` is classic best-first search over node MBB distances.
///
/// Mutations use the overflow pattern of the static roster indexes: inserts
/// join a pending list every traversal also considers, erases of packed
/// entries flip a per-id dead bit — which disables the bulk-resolve fast
/// paths (node MBBs and subtree counts are stale upper bounds then) — and a
/// rebuild re-packs the live set once either side outgrows its threshold.
template <int D>
class RTreeIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Leaf and internal fan-out. The paper uses 60 (same as QUASII's tau).
    std::size_t node_capacity = 60;
  };

  struct Node {
    Box<D> box;
    /// Child range: indexes `entries()` at level 0, the level below
    /// otherwise.
    std::size_t begin = 0;
    std::size_t end = 0;
    /// Number of entries in the subtree — the `kCount` bulk path.
    std::size_t count = 0;
  };

  RTreeIndex(const Dataset<D>& data, const Params& params = Params{})
      : SpatialIndex<D>(data), params_(params) {}

  std::string_view name() const override { return "R-Tree"; }

  /// STR bulk load over the live object set: the R-Tree's whole
  /// pre-processing cost (also the mutation-overflow rebuild).
  void Build() override {
    entries_.clear();
    this->store_.ForEachLive([this](ObjectId id, const Box<D>& b) {
      entries_.push_back(Entry<D>{b, id});
    });
    overflow_.Reset(this->store_.slots());
    levels_.clear();
    const std::size_t cap = params_.node_capacity;
    StrSort<D>(entries_, 0, entries_.size(), /*dim=*/0, cap,
               [](const Entry<D>& e, int d) { return e.box.Center()[d]; });

    // Leaf level over entries.
    std::vector<Node> level;
    for (std::size_t begin = 0; begin < entries_.size(); begin += cap) {
      Node node;
      node.begin = begin;
      node.end = std::min(begin + cap, entries_.size());
      node.count = node.end - node.begin;
      for (std::size_t i = node.begin; i < node.end; ++i) {
        node.box.ExpandToInclude(entries_[i].box);
      }
      level.push_back(node);
    }
    if (level.empty()) level.push_back(Node{});  // empty dataset: empty root
    levels_.push_back(std::move(level));

    // Internal levels until a single root remains.
    while (levels_.back().size() > 1) {
      std::vector<Node>& below = levels_.back();
      StrSort<D>(below, 0, below.size(), /*dim=*/0, cap,
                 [](const Node& n, int d) { return n.box.Center()[d]; });
      std::vector<Node> parents;
      for (std::size_t begin = 0; begin < below.size(); begin += cap) {
        Node node;
        node.begin = begin;
        node.end = std::min(begin + cap, below.size());
        for (std::size_t i = node.begin; i < node.end; ++i) {
          node.box.ExpandToInclude(below[i].box);
          node.count += below[i].count;
        }
        parents.push_back(node);
      }
      // Children of level-0 nodes index `entries_`, which StrSort did not
      // move here, so ranges stay valid; higher levels reference `below`,
      // whose order we just changed — hence parents are built *after* the
      // sort and reference the sorted order.
      levels_.push_back(std::move(parents));
    }
    built_ = true;
  }

  /// The packed tree is immutable at query time (mutations only touch the
  /// overflow lists, under the exclusive lock), so any query is
  /// concurrent-safe once built.
  bool ConvergedFor(const Query<D>&) const override { return built_; }

  /// Structural accessors for tests and benchmarks.
  const std::vector<Entry<D>>& entries() const { return entries_; }
  const std::vector<std::vector<Node>>& levels() const { return levels_; }
  std::size_t depth() const { return levels_.size(); }

  /// Snapshot structure blob: the STR-ordered entry array, every node
  /// level, and the overflow lists — a recovered tree answers queries
  /// without re-running the bulk load.
  bool SerializeStructure(ByteWriter& w) const override {
    w.U8(built_ ? 1 : 0);
    if (!built_) return true;
    w.U64(entries_.size());
    for (const Entry<D>& e : entries_) {
      PutBox<D>(&w, e.box);
      w.U32(e.id);
    }
    w.U64(levels_.size());
    for (const std::vector<Node>& level : levels_) {
      w.U64(level.size());
      for (const Node& n : level) {
        PutBox<D>(&w, n.box);
        w.U64(n.begin);
        w.U64(n.end);
        w.U64(n.count);
      }
    }
    overflow_.EncodeTo(&w);
    return true;
  }

  bool DeserializeStructure(std::string_view bytes) override {
    ByteReader r(bytes);
    const bool built = r.U8() != 0;
    if (!r.ok()) return false;
    if (!built) {
      RebuildFromStore();
      return r.remaining() == 0;
    }
    entries_.clear();
    levels_.clear();
    built_ = false;
    const std::uint64_t n_entries = r.U64();
    constexpr std::size_t kEntryBytes = 2 * D * sizeof(Scalar) + 4;
    if (!r.ok() || n_entries > r.remaining() / kEntryBytes) return false;
    entries_.reserve(static_cast<std::size_t>(n_entries));
    for (std::uint64_t i = 0; i < n_entries; ++i) {
      Entry<D> e;
      e.box = GetBox<D>(&r);
      e.id = r.U32();
      entries_.push_back(e);
    }
    const std::uint64_t n_levels = r.U64();
    if (!r.ok() || n_levels == 0 || n_levels > 64) return false;
    std::size_t below_size = entries_.size();
    for (std::uint64_t l = 0; l < n_levels; ++l) {
      const std::uint64_t n_nodes = r.U64();
      constexpr std::size_t kNodeBytes = 2 * D * sizeof(Scalar) + 24;
      if (!r.ok() || n_nodes > r.remaining() / kNodeBytes) return false;
      std::vector<Node> level;
      level.reserve(static_cast<std::size_t>(n_nodes));
      for (std::uint64_t i = 0; i < n_nodes; ++i) {
        Node n;
        n.box = GetBox<D>(&r);
        n.begin = static_cast<std::size_t>(r.U64());
        n.end = static_cast<std::size_t>(r.U64());
        n.count = static_cast<std::size_t>(r.U64());
        // Child ranges must stay inside the level below (the empty-dataset
        // root legitimately has begin == end == 0).
        if (n.begin > n.end || n.end > below_size) return false;
        level.push_back(n);
      }
      if (level.empty()) return false;
      below_size = level.size();
      levels_.push_back(std::move(level));
    }
    if (levels_.back().size() != 1) return false;
    if (!overflow_.DecodeFrom(&r) || !r.ok() || r.remaining() != 0) {
      RebuildFromStore();
      return false;
    }
    built_ = true;
    return true;
  }

  void RebuildFromStore() override {
    entries_.clear();
    levels_.clear();
    built_ = false;  // the next query re-packs from the restored store
  }

 protected:
  void OnInsert(ObjectId id, const Box<D>&) override {
    if (!built_) return;  // Build() reads the store wholesale
    overflow_.AddPending(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Build();
  }

  void OnErase(ObjectId id) override {
    if (!built_) return;
    overflow_.Erase(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Build();
  }

  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    if (!built_) Build();
    MatchEmitter emit(count_only, &sink);
    const BoxExec ctx{&q, predicate, &emit};
    QueryNode(ctx, levels_.size() - 1, 0);
    // Pending objects live outside the packed tree until a rebuild.
    overflow_.ScanPending(this->store_, q, predicate, &emit, &this->Stats());
    emit.Flush();
  }

  /// Best-first nearest-neighbor search [Hjaltason & Samet]: a min-heap of
  /// nodes ordered by MBB distance to the query point; leaves offer their
  /// entries to the bounded best-k heap; nodes farther than the current
  /// k-th best distance are pruned (`>` keeps bound-distance ties alive so
  /// the (distance, id) tie-break stays index-independent).
  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!built_) Build();
    TopKSink topk(k);
    // Offer the pending overflow first: it only tightens the prune bound,
    // and the (distance, id) tie-break keeps results index-independent.
    this->Stats().objects_tested += overflow_.pending().size();
    for (const ObjectId id : overflow_.pending()) {
      topk.Offer(id, this->store_.box(id).MinDistSquaredTo(pt));
    }
    struct QueueItem {
      double dist_sq;
      std::size_t level;
      std::size_t idx;
      bool operator>(const QueueItem& o) const { return dist_sq > o.dist_sq; }
    };
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        frontier;
    frontier.push(QueueItem{
        levels_.back()[0].box.MinDistSquaredTo(pt), levels_.size() - 1, 0});
    while (!frontier.empty()) {
      const QueueItem item = frontier.top();
      frontier.pop();
      if (topk.full() && item.dist_sq > topk.bound()) break;
      const Node& node = levels_[item.level][item.idx];
      ++this->Stats().partitions_visited;
      if (item.level == 0) {
        for (std::size_t i = node.begin; i < node.end; ++i) {
          if (overflow_.dead(entries_[i].id)) continue;
          ++this->Stats().objects_tested;
          topk.Offer(entries_[i].id, entries_[i].box.MinDistSquaredTo(pt));
        }
        continue;
      }
      const std::vector<Node>& below = levels_[item.level - 1];
      for (std::size_t i = node.begin; i < node.end; ++i) {
        const double d = below[i].box.MinDistSquaredTo(pt);
        if (!topk.full() || d <= topk.bound()) {
          frontier.push(QueueItem{d, item.level - 1, i});
        }
      }
    }
    DrainTopK(&topk, &sink);
  }

  /// Synchronized traversal when the partner is an R-Tree too: descend both
  /// packed trees in lockstep, pruning every node pair whose MBBs are
  /// disjoint — the classic tree join over two STR structures. Any other
  /// partner falls back to the generic index-nested-loop of the base class.
  void ExecuteJoin(SpatialIndex<D>& other_base, JoinEmitter& emit) override {
    auto* other = dynamic_cast<RTreeIndex<D>*>(&other_base);
    if (other == nullptr) {
      SpatialIndex<D>::ExecuteJoin(other_base, emit);
      return;
    }
    if (!built_) Build();
    if (!other->built_) other->Build();
    JoinNodes(*other, levels_.size() - 1, 0, other->levels_.size() - 1, 0,
              emit);
    // Pending inserts live outside both packed trees: probe each side's
    // pending rows against the other index wholesale (tree + its pending).
    // The pending × pending overlap is produced by both loops; the
    // emitter's flush dedups it.
    for (const ObjectId lid : overflow_.pending()) {
      other->ProbeJoinRight(this->store_.box(lid), lid, &emit);
    }
    for (const ObjectId rid : other->overflow_.pending()) {
      this->ProbeJoinLeft(other->store().box(rid), rid, &emit);
    }
  }

 private:
  struct BoxExec {
    const Box<D>* q;
    RangePredicate predicate;
    MatchEmitter* emit;
  };

  /// One node pair of the synchronized traversal: prune on MBB disjointness,
  /// test entries pairwise at leaf × leaf, otherwise expand the children of
  /// the deeper side (equal depths expand the left) so both walks reach the
  /// leaves together. An empty dataset's root keeps the default (inverted)
  /// box, which intersects nothing — the traversal exits on the first test.
  void JoinNodes(RTreeIndex<D>& other, std::size_t la, std::size_t ia,
                 std::size_t lb, std::size_t ib, JoinEmitter& emit) {
    const Node& na = levels_[la][ia];
    const Node& nb = other.levels_[lb][ib];
    if (!na.box.Intersects(nb.box)) return;
    ++this->Stats().partitions_visited;
    if (la == 0 && lb == 0) {
      for (std::size_t i = na.begin; i < na.end; ++i) {
        if (overflow_.dead(entries_[i].id)) continue;
        for (std::size_t j = nb.begin; j < nb.end; ++j) {
          if (other.overflow_.dead(other.entries_[j].id)) continue;
          ++this->Stats().objects_tested;
          if (entries_[i].box.Intersects(other.entries_[j].box)) {
            emit.Add(entries_[i].id, other.entries_[j].id);
          }
        }
      }
      return;
    }
    if (lb == 0 || (la != 0 && la >= lb)) {
      for (std::size_t i = na.begin; i < na.end; ++i) {
        JoinNodes(other, la - 1, i, lb, ib, emit);
      }
    } else {
      for (std::size_t j = nb.begin; j < nb.end; ++j) {
        JoinNodes(other, la, ia, lb - 1, j, emit);
      }
    }
  }

  /// Can some object below a node with this MBB still match the predicate?
  static bool SubtreeMayMatch(const Box<D>& node_box, const Box<D>& q,
                              RangePredicate predicate) {
    if (predicate == RangePredicate::kContains) {
      // An object containing q forces its node MBB to contain q as well.
      return node_box.ContainsBox(q);
    }
    return node_box.Intersects(q);
  }

  /// Does every object below a node with this MBB match the predicate?
  static bool SubtreeAllMatch(const Box<D>& node_box, const Box<D>& q,
                              RangePredicate predicate) {
    // A node MBB inside q puts every descendant box inside q: each one both
    // intersects and is contained by the query. No such shortcut exists for
    // kContains (the MBB says nothing about each object covering q).
    return predicate != RangePredicate::kContains && q.ContainsBox(node_box);
  }

  void QueryNode(const BoxExec& ctx, std::size_t level, std::size_t node_idx) {
    const Node& node = levels_[level][node_idx];
    ++this->Stats().partitions_visited;
    // Bulk resolution trusts node MBBs and subtree counts, which erases
    // turn into stale upper bounds — any tombstone disables the shortcuts.
    const bool may_bulk = overflow_.dead_count() == 0;
    if (level == 0) {
      if (may_bulk && SubtreeAllMatch(node.box, *ctx.q, ctx.predicate)) {
        // Whole leaf matches: resolve in bulk without a single box test.
        this->Stats().objects_tested += node.count;
        if (ctx.emit->count_only()) {
          ctx.emit->AddAnonymous(node.count);
        } else {
          for (std::size_t i = node.begin; i < node.end; ++i) {
            ctx.emit->Add(entries_[i].id);
          }
        }
        return;
      }
      for (std::size_t i = node.begin; i < node.end; ++i) {
        if (overflow_.dead(entries_[i].id)) continue;
        ++this->Stats().objects_tested;
        if (MatchesPredicate(entries_[i].box, *ctx.q, ctx.predicate)) {
          ctx.emit->Add(entries_[i].id);
        }
      }
      return;
    }
    const std::vector<Node>& below = levels_[level - 1];
    for (std::size_t i = node.begin; i < node.end; ++i) {
      if (may_bulk && ctx.emit->count_only() &&
          SubtreeAllMatch(below[i].box, *ctx.q, ctx.predicate)) {
        // Count bulk path: the whole subtree matches — add its size without
        // descending or touching ids. The resolved entries still count as
        // tested so `objects_tested >= matches` stays invariant.
        this->Stats().objects_tested += below[i].count;
        ctx.emit->AddAnonymous(below[i].count);
        continue;
      }
      if (SubtreeMayMatch(below[i].box, *ctx.q, ctx.predicate)) {
        QueryNode(ctx, level - 1, i);
      }
    }
  }

  std::vector<Entry<D>> entries_;
  Params params_;
  bool built_ = false;
  /// levels_[0] = leaves ... levels_.back() = root level (size 1).
  std::vector<std::vector<Node>> levels_;
  /// Shared mutation-overflow state (pending inserts + packed-id
  /// tombstones).
  MutationOverflow<D> overflow_;
};

}  // namespace quasii

#endif  // QUASII_RTREE_RTREE_INDEX_H_
