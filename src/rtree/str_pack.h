#ifndef QUASII_RTREE_STR_PACK_H_
#define QUASII_RTREE_STR_PACK_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "geometry/box.h"

namespace quasii {

/// Sort-Tile-Recursive ordering [Leutenegger et al., 26]: recursively sorts
/// `items[lo, hi)` so that consecutive groups of `capacity` items form
/// square-ish tiles. `center(item, d)` must return the item's centre
/// coordinate in dimension `d`.
///
/// At each dimension the range is fully sorted and cut into
/// `S = ceil(P^(1/(D-dim)))` slabs (P = leaves still needed); slab sizes are
/// rounded up to a multiple of `capacity` so leaves never straddle slabs.
/// QUASII's nested reorganization is the lazy, partial analogue of exactly
/// this procedure (paper Section 4).
template <int D, typename T, typename CenterFn>
void StrSort(std::vector<T>& items, std::size_t lo, std::size_t hi, int dim,
             std::size_t capacity, CenterFn center) {
  const std::size_t m = hi - lo;
  if (m <= capacity || dim >= D) return;

  std::sort(items.begin() + static_cast<std::ptrdiff_t>(lo),
            items.begin() + static_cast<std::ptrdiff_t>(hi),
            [&](const T& a, const T& b) {
              return center(a, dim) < center(b, dim);
            });
  if (dim == D - 1) return;  // final dimension: consecutive groups are tiles

  const double leaves =
      std::ceil(static_cast<double>(m) / static_cast<double>(capacity));
  const std::size_t slabs = static_cast<std::size_t>(
      std::ceil(std::pow(leaves, 1.0 / static_cast<double>(D - dim))));
  std::size_t run = (m + slabs - 1) / std::max<std::size_t>(slabs, 1);
  run = ((run + capacity - 1) / capacity) * capacity;  // align to capacity
  for (std::size_t start = lo; start < hi; start += run) {
    StrSort<D>(items, start, std::min(start + run, hi), dim + 1, capacity,
               center);
  }
}

}  // namespace quasii

#endif  // QUASII_RTREE_STR_PACK_H_
