#ifndef QUASII_DATAGEN_QUERIES_H_
#define QUASII_DATAGEN_QUERIES_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"
#include "geometry/box.h"

namespace quasii::datagen {

/// Side length of a cubic query covering fraction `selectivity` of the
/// universe volume (the paper expresses selectivity as qvol, a percentage of
/// the queried volume; here it is a fraction, i.e. 10^-2 % == 1e-4).
template <int D>
Scalar QuerySideFor(const Box<D>& universe, double selectivity) {
  return static_cast<Scalar>(
      std::pow(selectivity * universe.Volume(), 1.0 / D));
}

/// A cubic query box centred at `c`, clamped into the universe.
template <int D>
Box<D> QueryAround(const Box<D>& universe, const Point<D>& c, Scalar side) {
  Box<D> q;
  for (int d = 0; d < D; ++d) {
    Scalar lo = c[d] - side / 2;
    lo = std::max(lo, universe.lo[d]);
    lo = std::min(lo, universe.hi[d] - side);
    q.lo[d] = lo;
    q.hi[d] = lo + side;
  }
  return q;
}

/// Parameters of the paper's clustered workload (Section 6.1): several query
/// clusters, query centres Gaussian-distributed around each cluster centre,
/// all queries of one fixed volume.
struct ClusteredQueryParams {
  int clusters = 5;
  int queries_per_cluster = 100;
  /// Fraction of universe volume per query (paper default: 10^-2 % = 1e-4).
  double selectivity = 1e-4;
  /// Gaussian sigma around a cluster centre, as a fraction of the universe
  /// extent per dimension.
  double sigma_fraction = 0.02;
  std::uint64_t seed = 3;
};

/// Clustered workload with cluster centres drawn from `anchors` (so clusters
/// land on populated regions — the paper's scientists inspect regions of the
/// model, not empty space). With no anchors, cluster centres are uniform.
template <int D>
std::vector<Box<D>> MakeClusteredQueries(const Box<D>& universe,
                                         const std::vector<Point<D>>& anchors,
                                         const ClusteredQueryParams& params) {
  Rng rng(params.seed);
  const Scalar side = QuerySideFor(universe, params.selectivity);
  std::vector<Box<D>> queries;
  queries.reserve(static_cast<std::size_t>(params.clusters) *
                  static_cast<std::size_t>(params.queries_per_cluster));
  for (int c = 0; c < params.clusters; ++c) {
    Point<D> centre;
    if (!anchors.empty()) {
      centre = anchors[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(anchors.size()) - 1))];
    } else {
      for (int d = 0; d < D; ++d) {
        centre[d] = rng.UniformScalar(universe.lo[d], universe.hi[d]);
      }
    }
    for (int i = 0; i < params.queries_per_cluster; ++i) {
      Point<D> qc;
      for (int d = 0; d < D; ++d) {
        const double sigma =
            params.sigma_fraction * static_cast<double>(universe.Extent(d));
        qc[d] = static_cast<Scalar>(
            rng.Gaussian(static_cast<double>(centre[d]), sigma));
      }
      queries.push_back(QueryAround(universe, qc, side));
    }
  }
  return queries;
}

/// Convenience overload: anchors are the centres of random dataset objects.
template <int D>
std::vector<Box<D>> MakeClusteredQueries(const Box<D>& universe,
                                         const Dataset<D>& data,
                                         const ClusteredQueryParams& params) {
  Rng rng(params.seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<Point<D>> anchors;
  const int want = std::max(params.clusters * 4, 64);
  for (int i = 0; i < want && !data.empty(); ++i) {
    anchors.push_back(
        data[static_cast<std::size_t>(rng.UniformInt(
                 0, static_cast<std::int64_t>(data.size()) - 1))]
            .Center());
  }
  return MakeClusteredQueries(universe, anchors, params);
}

/// Parameters of the uniform workload (Section 6.6).
struct UniformQueryParams {
  int count = 1000;
  /// Fraction of universe volume per query (paper: 0.1% = 1e-3).
  double selectivity = 1e-3;
  std::uint64_t seed = 4;
};

/// Uniformly distributed queries of one fixed volume.
template <int D>
std::vector<Box<D>> MakeUniformQueries(const Box<D>& universe,
                                       const UniformQueryParams& params) {
  Rng rng(params.seed);
  const Scalar side = QuerySideFor(universe, params.selectivity);
  std::vector<Box<D>> queries;
  queries.reserve(static_cast<std::size_t>(params.count));
  for (int i = 0; i < params.count; ++i) {
    Point<D> c;
    for (int d = 0; d < D; ++d) {
      c[d] = rng.UniformScalar(universe.lo[d], universe.hi[d]);
    }
    queries.push_back(QueryAround(universe, c, side));
  }
  return queries;
}

}  // namespace quasii::datagen

#endif  // QUASII_DATAGEN_QUERIES_H_
