#ifndef QUASII_DATAGEN_NEURO_H_
#define QUASII_DATAGEN_NEURO_H_

#include <cstddef>
#include <cstdint>

#include "common/dataset.h"
#include "geometry/box.h"

namespace quasii::datagen {

/// Parameters of the neuroscience-like dataset.
///
/// The paper evaluates on a rat-brain model: 450M cylinders in a ~285 µm³
/// neocortical volume (Human Brain Project data we cannot redistribute).
/// This generator substitutes it with synthetic neuron morphologies:
/// branching 3d random walks whose segments become small, elongated MBBs.
/// It reproduces the properties the experiments depend on — volumetric
/// objects much smaller than the universe, heavy multi-scale clustering
/// (neurons cluster into "columns", segments cluster along branches) and
/// high local density variance — which is what makes the Grid hard to
/// configure (Fig. 6b) and rewards data-oriented partitioning (Fig. 7c).
struct NeuroDatasetParams {
  /// Exact number of segment MBBs generated.
  std::size_t count = 1 << 20;
  /// Cube universe side, arbitrary units (think micrometres).
  Scalar universe_size = 1000;
  /// Number of "cortical column" clusters neurons group into.
  int columns = 24;
  /// Gaussian spread of somata around their column centre, as a fraction
  /// of the universe side.
  double column_sigma = 0.03;
  /// Branches grown per neuron.
  int branches_per_neuron = 6;
  /// Segments per branch (branch length of the random walk).
  int segments_per_branch = 40;
  /// Mean segment length; actual lengths are log-normal-ish around this.
  Scalar segment_length = 3.0;
  /// Cylinder radius: each segment MBB is inflated by this much.
  Scalar segment_radius = 0.3;
  std::uint64_t seed = 2;
};

/// Generates the neuroscience-like clustered dataset (paper substitute).
Dataset3 MakeNeuroDataset(const NeuroDatasetParams& params);

/// The universe box of a `MakeNeuroDataset` result.
Box3 NeuroUniverse(const NeuroDatasetParams& params);

}  // namespace quasii::datagen

#endif  // QUASII_DATAGEN_NEURO_H_
