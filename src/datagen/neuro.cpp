#include "datagen/neuro.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace quasii::datagen {
namespace {

/// Clamps `v` into `[0, size]`.
Scalar ClampTo(Scalar v, Scalar size) {
  return std::min(std::max(v, Scalar{0}), size);
}

/// A random unit direction in 3d.
Point3 RandomDirection(Rng* rng) {
  // Rejection-free: Gaussian components normalized.
  Point3 dir;
  double norm = 0;
  do {
    norm = 0;
    for (int d = 0; d < 3; ++d) {
      dir[d] = static_cast<Scalar>(rng->Gaussian(0.0, 1.0));
      norm += static_cast<double>(dir[d]) * static_cast<double>(dir[d]);
    }
  } while (norm < 1e-12);
  const Scalar inv = static_cast<Scalar>(1.0 / std::sqrt(norm));
  for (int d = 0; d < 3; ++d) dir[d] *= inv;
  return dir;
}

}  // namespace

Dataset3 MakeNeuroDataset(const NeuroDatasetParams& params) {
  Rng rng(params.seed);
  Dataset3 data;
  data.reserve(params.count);

  const Scalar size = params.universe_size;
  const double sigma = params.column_sigma * static_cast<double>(size);

  // Column centres, kept away from the boundary so clusters stay inside.
  std::vector<Point3> columns;
  columns.reserve(static_cast<std::size_t>(params.columns));
  for (int c = 0; c < params.columns; ++c) {
    Point3 centre;
    for (int d = 0; d < 3; ++d) {
      centre[d] = rng.UniformScalar(Scalar{0.1} * size, Scalar{0.9} * size);
    }
    columns.push_back(centre);
  }

  while (data.size() < params.count) {
    // Soma position: Gaussian around a random column centre.
    const Point3& column =
        columns[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(columns.size()) - 1))];
    Point3 soma;
    for (int d = 0; d < 3; ++d) {
      soma[d] = ClampTo(
          static_cast<Scalar>(rng.Gaussian(static_cast<double>(column[d]),
                                           sigma)),
          size);
    }

    for (int b = 0; b < params.branches_per_neuron &&
                    data.size() < params.count;
         ++b) {
      Point3 pos = soma;
      Point3 dir = RandomDirection(&rng);
      for (int s = 0; s < params.segments_per_branch &&
                      data.size() < params.count;
           ++s) {
        // Perturb the growth direction a little each step (tortuosity).
        Point3 perturbed = dir;
        for (int d = 0; d < 3; ++d) {
          perturbed[d] += static_cast<Scalar>(rng.Gaussian(0.0, 0.3));
        }
        double norm = 0;
        for (int d = 0; d < 3; ++d) {
          norm += static_cast<double>(perturbed[d]) *
                  static_cast<double>(perturbed[d]);
        }
        if (norm > 1e-12) {
          const Scalar inv = static_cast<Scalar>(1.0 / std::sqrt(norm));
          for (int d = 0; d < 3; ++d) dir[d] = perturbed[d] * inv;
        }

        const Scalar len = static_cast<Scalar>(
            std::abs(rng.Gaussian(static_cast<double>(params.segment_length),
                                  0.4 * static_cast<double>(
                                            params.segment_length))) +
            0.1);
        Point3 next;
        for (int d = 0; d < 3; ++d) {
          next[d] = ClampTo(pos[d] + dir[d] * len, size);
        }

        // Segment MBB = box around the segment, inflated by the radius.
        Box3 seg;
        seg.ExpandToInclude(pos);
        seg.ExpandToInclude(next);
        seg = seg.Inflated(params.segment_radius);
        for (int d = 0; d < 3; ++d) {
          seg.lo[d] = ClampTo(seg.lo[d], size);
          seg.hi[d] = ClampTo(seg.hi[d], size);
        }
        data.push_back(seg);
        pos = next;
      }
    }
  }
  return data;
}

Box3 NeuroUniverse(const NeuroDatasetParams& params) {
  Box3 u;
  for (int d = 0; d < 3; ++d) {
    u.lo[d] = 0;
    u.hi[d] = params.universe_size;
  }
  return u;
}

}  // namespace quasii::datagen
