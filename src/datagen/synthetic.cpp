#include "datagen/synthetic.h"

namespace quasii::datagen {

Dataset3 MakeUniformDataset(const UniformDatasetParams& params) {
  Rng rng(params.seed);
  Dataset3 data;
  data.reserve(params.count);
  for (std::size_t i = 0; i < params.count; ++i) {
    const bool large = rng.Bernoulli(params.large_fraction);
    Box3 b;
    for (int d = 0; d < 3; ++d) {
      const Scalar side =
          large ? rng.UniformScalar(params.large_side_min,
                                    params.large_side_max)
                : rng.UniformScalar(params.small_side_min,
                                    params.small_side_max);
      const Scalar lo = rng.UniformScalar(0, params.universe_size);
      b.lo[d] = lo;
      b.hi[d] = lo + side;
    }
    data.push_back(b);
  }
  return data;
}

Box3 UniformUniverse(const UniformDatasetParams& params) {
  Box3 u;
  for (int d = 0; d < 3; ++d) {
    u.lo[d] = 0;
    u.hi[d] = params.universe_size + params.large_side_max;
  }
  return u;
}

}  // namespace quasii::datagen
