#ifndef QUASII_DATAGEN_SYNTHETIC_H_
#define QUASII_DATAGEN_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>

#include "common/dataset.h"
#include "common/rng.h"
#include "geometry/box.h"

namespace quasii::datagen {

/// Parameters of the paper's synthetic dataset (Section 6.1): boxes in a
/// 10 000-unit-per-dimension 3d universe; 99% of objects have sides drawn
/// uniformly from [1, 10], 1% from [10, 1000]; positions are uniform.
struct UniformDatasetParams {
  std::size_t count = 1 << 20;
  Scalar universe_size = 10000;
  double large_fraction = 0.01;
  Scalar small_side_min = 1;
  Scalar small_side_max = 10;
  Scalar large_side_min = 10;
  Scalar large_side_max = 1000;
  std::uint64_t seed = 1;
};

/// Generates the paper's uniform synthetic dataset.
Dataset3 MakeUniformDataset(const UniformDatasetParams& params);

/// The universe box of a `MakeUniformDataset` result (object MBBs may poke
/// slightly past `universe_size`; indexes use `BoundingBoxOf` when they need
/// the exact data MBB).
Box3 UniformUniverse(const UniformDatasetParams& params);

/// Dimension-generic box soup for tests: `n` boxes with uniform corners and
/// sides in `[0, max_side]`, inside `universe`.
template <int D>
Dataset<D> MakeRandomBoxes(std::size_t n, const Box<D>& universe,
                           Scalar max_side, Rng* rng) {
  Dataset<D> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Box<D> b;
    for (int d = 0; d < D; ++d) {
      const Scalar side = rng->UniformScalar(0, max_side);
      const Scalar lo = rng->UniformScalar(universe.lo[d],
                                           universe.hi[d] - side);
      b.lo[d] = lo;
      b.hi[d] = lo + side;
    }
    data.push_back(b);
  }
  return data;
}

}  // namespace quasii::datagen

#endif  // QUASII_DATAGEN_SYNTHETIC_H_
