#ifndef QUASII_SERVER_CLIENT_H_
#define QUASII_SERVER_CLIENT_H_

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/bytes.h"
#include "common/request.h"
#include "server/protocol.h"

namespace quasii::server {

/// One received response, still carrying the raw serialized body so callers
/// can fold it into a response-stream checksum identical to what an
/// in-process replay computes (the body deliberately excludes `seq`).
template <int D>
struct ClientReply {
  std::uint64_t seq = 0;
  Response<D> response;
  std::string body;
};

/// Minimal synchronous wire client: connect (or adopt a socketpair end),
/// handshake, then `Send`/`Recv`. Pipelining is the caller's business —
/// `Send` never waits for a reply, `Recv` returns replies in arrival order,
/// which the server guarantees is execution order.
template <int D>
class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { Close(); }

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to a Unix-domain socket.
  bool ConnectUds(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  /// Takes ownership of an already-connected fd (socketpair test path).
  void Adopt(int fd) {
    Close();
    fd_ = fd;
  }

  int fd() const { return fd_; }
  bool connected() const { return fd_ >= 0; }

  /// Exchanges hellos; false on any mismatch (wrong D, scalar width, or
  /// wire format — the typed handshake failure the protocol promises).
  bool Handshake() {
    if (fd_ < 0) return false;
    if (!WriteFrame(fd_, HelloPayload())) return false;
    std::string payload;
    if (ReadFrame(fd_, &payload) != WireError::kNone) return false;
    return CheckHelloPayload(payload);
  }

  /// Frames and sends one request; returns the sequence number to match
  /// against `Recv` replies, or nullopt on a dead connection.
  std::optional<std::uint64_t> Send(std::uint8_t target,
                                    const Request<D>& request) {
    if (fd_ < 0) return std::nullopt;
    const std::uint64_t seq = next_seq_++;
    std::string payload;
    ByteWriter w(&payload);
    w.U64(seq);
    w.U8(target);
    request.Serialize(&w);
    if (!WriteFrame(fd_, payload)) return std::nullopt;
    return seq;
  }

  /// Receives one reply. On failure returns nullopt and stores the frame
  /// error in `last_error()`; a reply whose body does not parse is also a
  /// failure (`WireError::kBadCrc` stands in for "body unintelligible" —
  /// both mean the stream cannot be trusted further).
  std::optional<ClientReply<D>> Recv() {
    if (fd_ < 0) return std::nullopt;
    std::string payload;
    last_error_ = ReadFrame(fd_, &payload);
    if (last_error_ != WireError::kNone) return std::nullopt;
    if (payload.size() < 8) {
      last_error_ = WireError::kBadCrc;
      return std::nullopt;
    }
    ClientReply<D> out;
    ByteReader r(payload.data(), payload.size());
    out.seq = r.U64();
    out.body = payload.substr(8);
    auto resp = Response<D>::TryParse(std::string_view(out.body));
    if (!resp) {
      last_error_ = WireError::kBadCrc;
      return std::nullopt;
    }
    out.response = *std::move(resp);
    return out;
  }

  /// Send-then-receive convenience for strictly serial callers.
  std::optional<ClientReply<D>> Call(std::uint8_t target,
                                     const Request<D>& request) {
    if (!Send(target, request)) return std::nullopt;
    return Recv();
  }

  WireError last_error() const { return last_error_; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  WireError last_error_ = WireError::kNone;
};

}  // namespace quasii::server

#endif  // QUASII_SERVER_CLIENT_H_
