// Query server driver: builds a dataset + index roster (same generators the
// benchmark uses, so a served run is comparable to an in-process one), then
// serves the typed request protocol on a Unix-domain socket until SIGINT or
// SIGTERM. On shutdown prints a JSON report: admission counters plus the
// final content checksum of every roster index — the values the replay
// determinism gate compares against an in-process replay of the recorded
// workload.
//
// Examples:
//   quasii_server --socket=/tmp/quasii.sock --n=65536
//   quasii_server --socket=/tmp/quasii.sock --indexes=QUASII,Scan
//       --record=/tmp/run.workload --snapshot=/tmp/run.snap
//
// Argument parsing is strict: unknown flags, missing values, and malformed
// numbers are a one-line diagnostic and exit code 2 — never a silent
// default.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench.h"
#include "bench/cli.h"
#include "bench/json.h"
#include "server/server.h"

namespace {

namespace cli = quasii::bench::cli;
using quasii::SpatialIndex;
using quasii::server::QueryServer;

struct ServerConfig {
  std::string socket_path;
  std::size_t n = std::size_t{1} << 16;
  std::uint64_t seed = 1;
  std::vector<std::string> indexes;
  std::size_t max_inflight = 256;
  std::size_t max_batch = 64;
  int pool_threads = 4;
  int exec_threads = 1;
  std::string record_path;
  std::string snapshot_path;
  std::string out_path;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: quasii_server --socket=PATH [--n=COUNT] [--seed=SEED]\n"
               "                     [--indexes=NAME,NAME,...]\n"
               "                     [--max-inflight=N] [--batch-max=N]\n"
               "                     [--pool-threads=N] [--exec-threads=N]\n"
               "                     [--record=PATH]\n"
               "                     [--snapshot=PATH] [--out=PATH]\n"
               "Serves the framed request protocol over a Unix-domain\n"
               "socket. --record logs every accepted request to a framed\n"
               "workload log for deterministic replay; --snapshot enables\n"
               "the snapshot admin request (path gains a .<target> suffix).\n"
               "Prints a JSON counter/checksum report on shutdown.\n");
}

[[noreturn]] void Die(const std::string& flag, const char* why) {
  std::fprintf(stderr, "quasii_server: bad %s: %s\n", flag.c_str(), why);
  std::exit(2);
}

void ParseArgOrDie(const std::string& arg, ServerConfig* config) {
  const cli::FlagArg flag = cli::SplitFlag(arg);
  if (!flag.is_flag) {
    std::fprintf(stderr, "quasii_server: unrecognized argument: %s\n",
                 arg.c_str());
    PrintUsage();
    std::exit(2);
  }
  std::uint64_t u = 0;
  if (flag.key == "socket") {
    if (!flag.has_value || flag.value.empty()) Die(arg, "expected a path");
    config->socket_path = flag.value;
  } else if (flag.key == "n") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0) {
      Die(arg, "expected a positive integer");
    }
    config->n = static_cast<std::size_t>(u);
  } else if (flag.key == "seed") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u)) {
      Die(arg, "expected an unsigned integer");
    }
    config->seed = u;
  } else if (flag.key == "indexes") {
    if (!flag.has_value) Die(arg, "expected a comma-separated name list");
    config->indexes = cli::SplitCommas(flag.value);
  } else if (flag.key == "max-inflight") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0) {
      Die(arg, "expected a positive integer");
    }
    config->max_inflight = static_cast<std::size_t>(u);
  } else if (flag.key == "batch-max") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0) {
      Die(arg, "expected a positive integer");
    }
    config->max_batch = static_cast<std::size_t>(u);
  } else if (flag.key == "pool-threads") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0 ||
        u > 256) {
      Die(arg, "expected an integer in [1, 256]");
    }
    config->pool_threads = static_cast<int>(u);
  } else if (flag.key == "exec-threads") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0 ||
        u > 256) {
      Die(arg, "expected an integer in [1, 256]");
    }
    config->exec_threads = static_cast<int>(u);
  } else if (flag.key == "record") {
    if (!flag.has_value || flag.value.empty()) Die(arg, "expected a path");
    config->record_path = flag.value;
  } else if (flag.key == "snapshot") {
    if (!flag.has_value || flag.value.empty()) Die(arg, "expected a path");
    config->snapshot_path = flag.value;
  } else if (flag.key == "out") {
    if (!flag.has_value || flag.value.empty()) Die(arg, "expected a path");
    config->out_path = flag.value;
  } else if (flag.key == "help") {
    PrintUsage();
    std::exit(0);
  } else {
    std::fprintf(stderr, "quasii_server: unknown flag: %s\n", arg.c_str());
    PrintUsage();
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  for (int i = 1; i < argc; ++i) ParseArgOrDie(argv[i], &config);
  if (config.socket_path.empty()) {
    std::fprintf(stderr, "quasii_server: --socket is required\n");
    PrintUsage();
    return 2;
  }

  // Block the shutdown signals BEFORE spawning server threads so sigwait
  // below is the only consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  quasii::bench::BenchConfig bench_config;
  bench_config.n = config.n;
  bench_config.seed = config.seed;
  quasii::Dataset3 data;
  quasii::Box3 universe;
  std::vector<quasii::Box3> unused_queries;
  quasii::bench::MakeBenchInputs(bench_config, &data, &universe,
                                 &unused_queries);
  auto roster_owned = quasii::bench::MakeIndexRoster(data, universe);

  std::vector<SpatialIndex<3>*> roster;
  std::vector<std::string> roster_names;
  for (auto& index : roster_owned) {
    if (!config.indexes.empty()) {
      bool wanted = false;
      for (const std::string& name : config.indexes) {
        if (name == index->name()) wanted = true;
      }
      if (!wanted) continue;
    }
    roster.push_back(index.get());
    roster_names.emplace_back(index->name());
  }
  if (roster.empty()) {
    std::fprintf(stderr, "quasii_server: --indexes matched nothing\n");
    return 2;
  }

  QueryServer<3>::Options options;
  options.max_inflight = config.max_inflight;
  options.max_batch = config.max_batch;
  options.pool_threads = config.pool_threads;
  options.exec_threads = config.exec_threads;
  options.record_path = config.record_path;
  options.snapshot_path = config.snapshot_path;

  QueryServer<3> server(roster, options);
  std::string error;
  if (!server.Start(&error) || !server.Listen(config.socket_path, &error)) {
    std::fprintf(stderr, "quasii_server: %s\n", error.c_str());
    return 1;
  }

  // Machine-readable readiness line (the smoke test waits for it).
  std::printf("READY %s targets=%zu\n", config.socket_path.c_str(),
              roster.size());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  server.Stop();

  const QueryServer<3>::Counters c = server.counters();
  quasii::bench::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("quasii-server-v1");
  w.Key("signal").Int(sig);
  w.Key("connections").Uint(c.connections);
  w.Key("accepted").Uint(c.accepted);
  w.Key("overloaded").Uint(c.overloaded);
  w.Key("malformed").Uint(c.malformed);
  w.Key("frame_errors").Uint(c.frame_errors);
  w.Key("batches").Uint(c.batches);
  w.Key("batched_queries").Uint(c.batched_queries);
  w.Key("exec_threads").Int(server.exec_threads());
  w.Key("exec_tasks").Uint(c.exec_tasks);
  w.Key("exec_steals").Uint(c.exec_steals);
  w.Key("parallel_requests").Uint(c.parallel_requests);
  w.Key("recorded").Uint(server.recorded());
  w.Key("indexes").BeginArray();
  const std::vector<std::uint64_t> checksums = server.IndexChecksums();
  for (std::size_t i = 0; i < roster.size(); ++i) {
    w.BeginObject();
    w.Key("index").String(roster_names[i]);
    w.Key("checksum").Uint(checksums[i]);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string report = w.str();
  if (config.out_path.empty()) {
    std::printf("%s\n", report.c_str());
  } else {
    std::ofstream out(config.out_path);
    out << report << "\n";
    if (!out) {
      std::fprintf(stderr, "quasii_server: cannot write %s\n",
                   config.out_path.c_str());
      return 1;
    }
  }
  return 0;
}
