#ifndef QUASII_SERVER_PROTOCOL_H_
#define QUASII_SERVER_PROTOCOL_H_

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "geometry/point.h"
#include "persist/crc32c.h"

namespace quasii::server {

/// Wire framing of the query protocol, shared by server and client. Every
/// message is one frame:
///
///   [u32 len] [u32 crc32c(payload)] [payload, `len` bytes]
///
/// — the WAL's proven self-verifying frame (src/persist/wal.h), applied to
/// a socket: a reader always knows whether it holds an intact payload, and
/// every damaged input maps to a typed `WireError`, never UB. `len` is
/// capped; an oversized header is treated as a protocol violation and the
/// connection is dropped (the stream cannot be resynchronized).
///
/// The first frame in each direction is a hello with payload
///
///   [u32 magic "QSWP"] [u32 wire format] [u32 D] [u32 sizeof(Scalar)]
///
/// so dimension/scalar/format mismatches die in the handshake with a typed
/// error instead of as garbage query results.
///
/// After the handshake, client→server payloads are request envelopes
///
///   [u64 seq] [u8 target index] [Request<D> bytes]
///
/// and server→client payloads are response envelopes
///
///   [u64 seq] [Response<D> bytes]
///
/// `seq` is chosen by the client (unique per connection) and echoed
/// verbatim, which is what makes pipelining safe; the response body
/// excludes it, so response checksums compare across transports.

inline constexpr std::uint32_t kHelloMagic = 0x50575351u;  // "QSWP"
inline constexpr std::uint32_t kWireFormatVersion = 1;

/// Generous payload cap (16 MiB): large enough for any in-cap request or
/// response, small enough that a hostile length field cannot drive an
/// allocation storm.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 24;

/// Typed outcome of reading one frame. Everything except `kNone` ends the
/// connection: after a framing-level failure the byte stream has no
/// trustworthy resynchronization point.
enum class WireError {
  kNone = 0,
  kClosed,     ///< clean EOF between frames (orderly shutdown)
  kTorn,       ///< EOF inside a frame (peer died mid-write)
  kIo,         ///< read/write syscall failure
  kOversized,  ///< header length exceeds `kMaxFramePayload`
  kBadCrc,     ///< payload present but checksum disagrees
};

inline const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kNone:
      return "none";
    case WireError::kClosed:
      return "closed";
    case WireError::kTorn:
      return "torn";
    case WireError::kIo:
      return "io";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadCrc:
      return "bad_crc";
  }
  return "?";
}

/// Writes all `n` bytes, retrying on EINTR/short writes. MSG_NOSIGNAL keeps
/// a dead peer an error return instead of a SIGPIPE.
inline bool WriteFull(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// How a `ReadFull` concluded: all bytes read, EOF before the first byte,
/// EOF mid-span, or a syscall failure.
enum class ReadOutcome { kOk, kEofAtStart, kEofMidway, kError };

/// Reads exactly `n` bytes, retrying on EINTR.
inline ReadOutcome ReadFull(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kError;
    }
    if (r == 0) {
      return got == 0 ? ReadOutcome::kEofAtStart : ReadOutcome::kEofMidway;
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadOutcome::kOk;
}

/// Reads one frame into `payload` (replaced, not appended).
inline WireError ReadFrame(int fd, std::string* payload) {
  char header[8];
  switch (ReadFull(fd, header, sizeof(header))) {
    case ReadOutcome::kOk:
      break;
    case ReadOutcome::kEofAtStart:
      return WireError::kClosed;
    case ReadOutcome::kEofMidway:
      return WireError::kTorn;
    case ReadOutcome::kError:
      return WireError::kIo;
  }
  ByteReader hr(header, sizeof(header));
  const std::uint32_t len = hr.U32();
  const std::uint32_t crc = hr.U32();
  if (len > kMaxFramePayload) return WireError::kOversized;
  payload->resize(len);
  if (len > 0) {
    switch (ReadFull(fd, payload->data(), len)) {
      case ReadOutcome::kOk:
        break;
      case ReadOutcome::kEofAtStart:
      case ReadOutcome::kEofMidway:
        return WireError::kTorn;  // EOF inside a frame is torn either way
      case ReadOutcome::kError:
        return WireError::kIo;
    }
  }
  if (persist::Crc32c(payload->data(), payload->size()) != crc) {
    return WireError::kBadCrc;
  }
  return WireError::kNone;
}

/// Frames and writes `payload`. False on any write failure (peer gone).
inline bool WriteFrame(int fd, std::string_view payload) {
  std::string frame;
  ByteWriter w(&frame);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(persist::Crc32c(payload.data(), payload.size()));
  w.Bytes(payload.data(), payload.size());
  return WriteFull(fd, frame.data(), frame.size());
}

/// The hello payload this build emits.
inline std::string HelloPayload() {
  std::string out;
  ByteWriter w(&out);
  w.U32(kHelloMagic);
  w.U32(kWireFormatVersion);
  w.U32(3);  // the served dimensionality (the roster is Box3-based)
  w.U32(static_cast<std::uint32_t>(sizeof(Scalar)));
  return out;
}

/// Validates a peer's hello payload against this build.
inline bool CheckHelloPayload(std::string_view payload) {
  if (payload.size() != 16) return false;
  ByteReader r(payload);
  return r.U32() == kHelloMagic && r.U32() == kWireFormatVersion &&
         r.U32() == 3 && r.U32() == static_cast<std::uint32_t>(sizeof(Scalar));
}

}  // namespace quasii::server

#endif  // QUASII_SERVER_PROTOCOL_H_
