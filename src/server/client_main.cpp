// Wire client driver, three modes over the same connection machinery:
//
//   workload (default)  N client threads, each with its own connection and
//                       its own deterministic op stream (the bench's
//                       `MakeThreadOpStreams` split — disjoint insert id
//                       spaces, disjoint erase pools), driven serially with
//                       per-op latency capture. Reports per-client and
//                       aggregate p50/p90/p99 plus a response-stream
//                       checksum per client.
//   --agree             sends every read op to EVERY listed target and
//                       compares normalized results (status, count, sorted
//                       ids/pairs) across the roster — the served twin of
//                       the equivalence tests. Nonzero exit on divergence.
//   --replay=FILE       re-sends a recorded workload log in log order on
//                       one connection and folds the response-stream
//                       checksum; against a freshly seeded server this must
//                       reproduce the original run bit-for-bit.
//
// Dataset parameters (--n/--seed) must match the server's so generated id
// spaces and the erase pool line up with the served roster.
//
// Argument parsing is strict: unknown flags, missing values, and malformed
// numbers are a one-line diagnostic and exit code 2 — never a silent
// default.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench.h"
#include "bench/cli.h"
#include "bench/json.h"
#include "common/task_scheduler.h"
#include "server/client.h"
#include "server/recorder.h"

namespace {

namespace cli = quasii::bench::cli;
using quasii::Box3;
using quasii::ObjectId;
using quasii::Request;
using quasii::RequestKind;
using quasii::ResponseStatus;
using quasii::server::ClientReply;
using quasii::server::WireClient;

struct ClientConfig {
  std::string socket_path;
  int clients = 1;
  std::size_t n = std::size_t{1} << 16;
  int queries = 1000;
  double selectivity = 1e-3;
  std::uint64_t seed = 1;
  quasii::bench::WorkloadMix mix;
  std::size_t knn_k = 10;
  std::vector<std::uint8_t> targets = {0};
  bool agree = false;
  std::string replay_path;
  std::string out_path;
  int exec_threads = 1;
  /// After the `QUASII_EXEC_THREADS` cap; set in `main`, echoed in reports.
  int exec_threads_effective = 1;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: quasii_client --socket=PATH [--clients=N]\n"
               "                     [--queries=COUNT] [--n=COUNT]\n"
               "                     [--selectivity=FRACTION] [--seed=SEED]\n"
               "                     [--mix=range:W,point:W,count:W,knn:W,\n"
               "                            join:W,insert:W,erase:W]\n"
               "                     [--knn-k=K] [--targets=I,I,...]\n"
               "                     [--agree] [--replay=FILE] [--out=PATH]\n"
               "                     [--exec-threads=N]\n"
               "Default mode drives N concurrent clients with deterministic\n"
               "per-client op streams and reports p50/p90/p99 latency plus\n"
               "response checksums. --agree sends reads to every target and\n"
               "verifies the roster answers identically. --replay re-sends\n"
               "a recorded workload log and reports its response checksum.\n"
               "--n and --seed must match the server's dataset flags.\n");
}

[[noreturn]] void Die(const std::string& flag, const char* why) {
  std::fprintf(stderr, "quasii_client: bad %s: %s\n", flag.c_str(), why);
  std::exit(2);
}

void ParseArgOrDie(const std::string& arg, ClientConfig* config) {
  const cli::FlagArg flag = cli::SplitFlag(arg);
  if (!flag.is_flag) {
    std::fprintf(stderr, "quasii_client: unrecognized argument: %s\n",
                 arg.c_str());
    PrintUsage();
    std::exit(2);
  }
  std::uint64_t u = 0;
  if (flag.key == "socket") {
    if (!flag.has_value || flag.value.empty()) Die(arg, "expected a path");
    config->socket_path = flag.value;
  } else if (flag.key == "clients") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0 ||
        u > 256) {
      Die(arg, "expected an integer in [1, 256]");
    }
    config->clients = static_cast<int>(u);
  } else if (flag.key == "queries") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0) {
      Die(arg, "expected a positive integer");
    }
    config->queries = static_cast<int>(u);
  } else if (flag.key == "n") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0) {
      Die(arg, "expected a positive integer");
    }
    config->n = static_cast<std::size_t>(u);
  } else if (flag.key == "selectivity") {
    double d = 0;
    if (!flag.has_value || !cli::ParseDouble(flag.value, &d) || d <= 0 ||
        d > 1) {
      Die(arg, "expected a fraction in (0, 1]");
    }
    config->selectivity = d;
  } else if (flag.key == "seed") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u)) {
      Die(arg, "expected an unsigned integer");
    }
    config->seed = u;
  } else if (flag.key == "mix") {
    if (!flag.has_value ||
        !quasii::bench::ParseWorkloadMix(flag.value, &config->mix)) {
      Die(arg, "expected type:weight pairs (see --help)");
    }
  } else if (flag.key == "knn-k") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0) {
      Die(arg, "expected a positive integer");
    }
    config->knn_k = static_cast<std::size_t>(u);
  } else if (flag.key == "targets") {
    if (!flag.has_value) Die(arg, "expected a comma-separated index list");
    config->targets.clear();
    for (const std::string& part : cli::SplitCommas(flag.value)) {
      if (!cli::ParseU64(part, &u) || u > 255) {
        Die(arg, "expected target indices in [0, 255]");
      }
      config->targets.push_back(static_cast<std::uint8_t>(u));
    }
    if (config->targets.empty()) Die(arg, "expected at least one target");
  } else if (flag.key == "agree") {
    if (flag.has_value) Die(arg, "takes no value");
    config->agree = true;
  } else if (flag.key == "replay") {
    if (!flag.has_value || flag.value.empty()) Die(arg, "expected a path");
    config->replay_path = flag.value;
  } else if (flag.key == "out") {
    if (!flag.has_value || flag.value.empty()) Die(arg, "expected a path");
    config->out_path = flag.value;
  } else if (flag.key == "exec-threads") {
    if (!flag.has_value || !cli::ParseU64(flag.value, &u) || u == 0 ||
        u > 256) {
      Die(arg, "expected an integer in [1, 256]");
    }
    config->exec_threads = static_cast<int>(u);
  } else if (flag.key == "help") {
    PrintUsage();
    std::exit(0);
  } else {
    std::fprintf(stderr, "quasii_client: unknown flag: %s\n", arg.c_str());
    PrintUsage();
    std::exit(2);
  }
}

/// Per-status tallies plus the latency sample and response checksum of one
/// client's run.
struct ClientRun {
  int client = 0;
  std::uint8_t target = 0;
  std::uint64_t ops = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t malformed = 0;
  std::uint64_t epoch_mismatch = 0;
  std::uint64_t other = 0;
  std::vector<double> latencies_ms;
  std::uint64_t checksum = quasii::kFnvBasis;
  bool transport_ok = true;
};

void Tally(const ClientReply<3>& reply, ClientRun* run) {
  ++run->ops;
  switch (reply.response.status) {
    case ResponseStatus::kOk:
      ++run->ok;
      break;
    case ResponseStatus::kOverloaded:
      ++run->overloaded;
      break;
    case ResponseStatus::kMalformed:
      ++run->malformed;
      break;
    case ResponseStatus::kEpochMismatch:
      ++run->epoch_mismatch;
      break;
    default:
      ++run->other;
      break;
  }
  run->checksum = quasii::FnvBytes(run->checksum, reply.body);
}

/// One client thread of workload mode: own connection, own op stream,
/// strictly serial request/response with wall-clock capture per op.
void RunWorkloadClient(const ClientConfig& config,
                       const std::vector<quasii::bench::Op3>& ops, ClientRun* run) {
  WireClient<3> client;
  if (!client.ConnectUds(config.socket_path) || !client.Handshake()) {
    run->transport_ok = false;
    return;
  }
  run->latencies_ms.reserve(ops.size());
  for (const quasii::bench::Op3& op : ops) {
    const auto start = std::chrono::steady_clock::now();
    auto reply = client.Call(run->target, op);
    const auto stop = std::chrono::steady_clock::now();
    if (!reply) {
      run->transport_ok = false;
      return;
    }
    run->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    Tally(*reply, run);
  }
}

/// Normalized result image for cross-target comparison: id/pair order is an
/// index implementation detail, so sort before comparing.
std::string NormalizedResult(const ClientReply<3>& reply) {
  std::string out;
  quasii::ByteWriter w(&out);
  w.U8(static_cast<std::uint8_t>(reply.response.status));
  w.U64(reply.response.count);
  std::vector<ObjectId> ids = reply.response.ids;
  std::sort(ids.begin(), ids.end());
  for (const ObjectId id : ids) w.U32(id);
  std::vector<std::pair<ObjectId, ObjectId>> pairs = reply.response.pairs;
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [l, r] : pairs) {
    w.U32(l);
    w.U32(r);
  }
  return out;
}

int RunAgreeMode(const ClientConfig& config,
                 const std::vector<quasii::bench::Op3>& ops,
                 quasii::bench::JsonWriter* w) {
  WireClient<3> client;
  if (!client.ConnectUds(config.socket_path) || !client.Handshake()) {
    std::fprintf(stderr, "quasii_client: connect/handshake failed\n");
    return 1;
  }
  std::uint64_t compared = 0;
  std::uint64_t mismatches = 0;
  for (const quasii::bench::Op3& op : ops) {
    if (!op.is_read()) continue;  // mutations would diverge the roster
    std::string reference;
    for (std::size_t t = 0; t < config.targets.size(); ++t) {
      auto reply = client.Call(config.targets[t], op);
      if (!reply) {
        std::fprintf(stderr, "quasii_client: transport failure (%s)\n",
                     quasii::server::WireErrorName(client.last_error()));
        return 1;
      }
      const std::string norm = NormalizedResult(*reply);
      if (t == 0) {
        reference = norm;
      } else if (norm != reference) {
        ++mismatches;
        std::fprintf(stderr,
                     "quasii_client: target %u disagrees with target %u on "
                     "op %llu (%s)\n",
                     config.targets[t], config.targets[0],
                     static_cast<unsigned long long>(compared),
                     quasii::RequestKindName(op.kind()));
        break;
      }
    }
    ++compared;
  }
  w->BeginObject();
  w->Key("schema").String("quasii-client-v1");
  w->Key("mode").String("agree");
  w->Key("exec_threads").Int(config.exec_threads_effective);
  w->Key("targets").Uint(config.targets.size());
  w->Key("compared").Uint(compared);
  w->Key("mismatches").Uint(mismatches);
  w->EndObject();
  return mismatches == 0 ? 0 : 1;
}

int RunReplayMode(const ClientConfig& config, quasii::bench::JsonWriter* w) {
  const auto log =
      quasii::server::ReadWorkloadLog<3>(config.replay_path);
  if (!log.exists || log.error != quasii::persist::PersistError::kNone) {
    std::fprintf(stderr, "quasii_client: cannot replay %s: %s\n",
                 config.replay_path.c_str(),
                 log.exists ? quasii::persist::PersistErrorName(log.error)
                            : "not found");
    return 1;
  }
  WireClient<3> client;
  if (!client.ConnectUds(config.socket_path) || !client.Handshake()) {
    std::fprintf(stderr, "quasii_client: connect/handshake failed\n");
    return 1;
  }
  ClientRun run;
  for (const auto& rec : log.records) {
    auto reply = client.Call(rec.target, rec.request);
    if (!reply) {
      std::fprintf(stderr, "quasii_client: transport failure (%s)\n",
                   quasii::server::WireErrorName(client.last_error()));
      return 1;
    }
    Tally(*reply, &run);
  }
  w->BeginObject();
  w->Key("schema").String("quasii-client-v1");
  w->Key("mode").String("replay");
  w->Key("exec_threads").Int(config.exec_threads_effective);
  w->Key("requests").Uint(run.ops);
  w->Key("ok").Uint(run.ok);
  w->Key("truncated_tail").Bool(log.truncated_tail);
  w->Key("response_checksum").Uint(run.checksum);
  w->EndObject();
  return 0;
}

int RunWorkloadMode(const ClientConfig& config,
                    quasii::bench::JsonWriter* w) {
  quasii::bench::BenchConfig bench_config;
  bench_config.n = config.n;
  bench_config.seed = config.seed;
  bench_config.queries = config.queries;
  bench_config.selectivity = config.selectivity;
  quasii::Dataset3 data;
  Box3 universe;
  std::vector<Box3> boxes;
  quasii::bench::MakeBenchInputs(bench_config, &data, &universe, &boxes);
  const std::vector<Box3> join_source =
      quasii::bench::MakeJoinSource(bench_config, universe);

  quasii::bench::WorkloadSpec spec;
  spec.mix = config.mix;
  spec.knn_k = config.knn_k;
  spec.seed = config.seed + 2;
  const auto streams = quasii::bench::MakeThreadOpStreams<3>(
      boxes, spec, config.n, config.clients, &join_source);

  std::vector<ClientRun> runs(streams.size());
  std::vector<std::thread> threads;
  threads.reserve(streams.size());
  for (std::size_t c = 0; c < streams.size(); ++c) {
    runs[c].client = static_cast<int>(c);
    runs[c].target = config.targets[c % config.targets.size()];
    threads.emplace_back(RunWorkloadClient, std::cref(config),
                         std::cref(streams[c]), &runs[c]);
  }
  for (std::thread& t : threads) t.join();

  bool transport_ok = true;
  std::vector<double> all_latencies;
  w->BeginObject();
  w->Key("schema").String("quasii-client-v1");
  w->Key("mode").String("workload");
  w->Key("exec_threads").Int(config.exec_threads_effective);
  w->Key("clients").Uint(runs.size());
  w->Key("per_client").BeginArray();
  for (const ClientRun& run : runs) {
    transport_ok = transport_ok && run.transport_ok;
    all_latencies.insert(all_latencies.end(), run.latencies_ms.begin(),
                         run.latencies_ms.end());
    w->BeginObject();
    w->Key("client").Int(run.client);
    w->Key("target").Uint(run.target);
    w->Key("ops").Uint(run.ops);
    w->Key("ok").Uint(run.ok);
    w->Key("overloaded").Uint(run.overloaded);
    w->Key("malformed").Uint(run.malformed);
    w->Key("epoch_mismatch").Uint(run.epoch_mismatch);
    w->Key("other").Uint(run.other);
    w->Key("p50_ms").Double(quasii::bench::Percentile(run.latencies_ms, 0.50));
    w->Key("p90_ms").Double(quasii::bench::Percentile(run.latencies_ms, 0.90));
    w->Key("p99_ms").Double(quasii::bench::Percentile(run.latencies_ms, 0.99));
    w->Key("response_checksum").Uint(run.checksum);
    w->Key("transport_ok").Bool(run.transport_ok);
    w->EndObject();
  }
  w->EndArray();
  w->Key("p50_ms").Double(quasii::bench::Percentile(all_latencies, 0.50));
  w->Key("p90_ms").Double(quasii::bench::Percentile(all_latencies, 0.90));
  w->Key("p99_ms").Double(quasii::bench::Percentile(all_latencies, 0.99));
  w->Key("transport_ok").Bool(transport_ok);
  w->EndObject();
  return transport_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ClientConfig config;
  for (int i = 1; i < argc; ++i) ParseArgOrDie(argv[i], &config);
  if (config.socket_path.empty()) {
    std::fprintf(stderr, "quasii_client: --socket is required\n");
    PrintUsage();
    return 2;
  }
  if (config.agree && !config.replay_path.empty()) {
    std::fprintf(stderr,
                 "quasii_client: --agree and --replay are exclusive\n");
    return 2;
  }
  // The client executes no queries itself; applying the knob anyway keeps
  // the flag's semantics identical across both binaries, and the effective
  // (env-capped) value lands in the report either way.
  config.exec_threads_effective =
      quasii::SetIntraQueryThreads(config.exec_threads);

  quasii::bench::JsonWriter w;
  int rc = 0;
  if (!config.replay_path.empty()) {
    rc = RunReplayMode(config, &w);
  } else if (config.agree) {
    quasii::bench::BenchConfig bench_config;
    bench_config.n = config.n;
    bench_config.seed = config.seed;
    bench_config.queries = config.queries;
    bench_config.selectivity = config.selectivity;
    quasii::Dataset3 data;
    Box3 universe;
    std::vector<Box3> boxes;
    quasii::bench::MakeBenchInputs(bench_config, &data, &universe, &boxes);
    const std::vector<Box3> join_source =
        quasii::bench::MakeJoinSource(bench_config, universe);
    quasii::bench::WorkloadSpec spec;
    spec.mix = config.mix;
    spec.knn_k = config.knn_k;
    spec.seed = config.seed + 2;
    const auto ops = quasii::bench::MakeOpWorkload<3>(
        boxes, spec, /*initial_n=*/config.n, &join_source);
    rc = RunAgreeMode(config, ops, &w);
  } else {
    rc = RunWorkloadMode(config, &w);
  }

  const std::string report = w.str();
  if (!report.empty()) {
    if (config.out_path.empty()) {
      std::printf("%s\n", report.c_str());
    } else {
      std::ofstream out(config.out_path);
      out << report << "\n";
      if (!out) {
        std::fprintf(stderr, "quasii_client: cannot write %s\n",
                     config.out_path.c_str());
        return 1;
      }
    }
  }
  return rc;
}
