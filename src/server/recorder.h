#ifndef QUASII_SERVER_RECORDER_H_
#define QUASII_SERVER_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/request.h"
#include "common/spatial_index.h"
#include "geometry/point.h"
#include "persist/crc32c.h"
#include "persist/errors.h"
#include "persist/io.h"
#include "server/protocol.h"

namespace quasii::server {

/// Framed workload log — the durable record of every request the server
/// ACCEPTED, in execution order, that makes a run reproducible. Layout
/// mirrors the WAL (src/persist/wal.h), so the same torn-tail-vs-corruption
/// discipline applies:
///
///   header: [u32 magic "QWKL"] [u32 format] [u32 D] [u32 sizeof(Scalar)]
///   frame:  [u32 len] [u32 crc32c(payload)] [payload]
///   payload: [u64 client] [u8 target index] [Request<D> bytes]
///
/// A truncated final frame is a crash artifact (`truncated_tail`), not
/// corruption: replay uses the intact prefix. A checksum failure anywhere
/// before the tail is refused with a typed error.
inline constexpr std::uint32_t kWorkloadLogMagic = 0x4C4B5751u;  // "QWKL"
inline constexpr std::uint32_t kWorkloadLogFormatVersion = 1;

/// One accepted request as logged: which client sent it, which roster index
/// it targeted, and the request itself.
template <int D>
struct WorkloadRecord {
  std::uint64_t client = 0;
  std::uint8_t target = 0;
  Request<D> request;
};

/// Append-side of the workload log. Not thread-safe: the server's exec loop
/// is the single writer, which is exactly what makes the log order the
/// execution order.
template <int D>
class WorkloadRecorder {
 public:
  ~WorkloadRecorder() { Close(); }

  /// Creates/truncates the log and writes the header.
  persist::PersistError Open(const std::string& path) {
    if (!fh_.OpenWrite(path, /*truncate=*/true)) {
      return persist::PersistError::kIo;
    }
    std::string header;
    ByteWriter w(&header);
    w.U32(kWorkloadLogMagic);
    w.U32(kWorkloadLogFormatVersion);
    w.U32(static_cast<std::uint32_t>(D));
    w.U32(static_cast<std::uint32_t>(sizeof(Scalar)));
    const persist::PersistError err =
        fh_.WriteAll(header.data(), header.size(), "workload_short_write");
    if (err != persist::PersistError::kNone) return err;
    open_ = true;
    bytes_ = header.size();
    return persist::PersistError::kNone;
  }

  bool is_open() const { return open_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t bytes() const { return bytes_; }

  persist::PersistError Append(std::uint64_t client, std::uint8_t target,
                               const Request<D>& request) {
    if (!open_) return persist::PersistError::kIo;
    std::string payload;
    ByteWriter pw(&payload);
    pw.U64(client);
    pw.U8(target);
    request.Serialize(&pw);
    std::string frame;
    ByteWriter fw(&frame);
    fw.U32(static_cast<std::uint32_t>(payload.size()));
    fw.U32(persist::Crc32c(payload.data(), payload.size()));
    fw.Bytes(payload.data(), payload.size());
    const persist::PersistError err =
        fh_.WriteAll(frame.data(), frame.size(), "workload_short_write");
    if (err != persist::PersistError::kNone) return err;
    ++records_;
    bytes_ += frame.size();
    return persist::PersistError::kNone;
  }

  persist::PersistError Sync() {
    if (!open_) return persist::PersistError::kNone;
    return fh_.Sync("workload_fsync_fail");
  }

  void Close() {
    if (!open_) return;
    fh_.Sync("workload_fsync_fail");
    fh_.Close();
    open_ = false;
  }

 private:
  persist::FileHandle fh_;
  bool open_ = false;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

template <int D>
struct WorkloadLogContents {
  bool exists = false;
  persist::PersistError error = persist::PersistError::kNone;
  std::vector<WorkloadRecord<D>> records;
  /// True when the file ends in a partial frame (crash mid-append); the
  /// intact prefix in `records` is still authoritative.
  bool truncated_tail = false;
};

/// Parses and validates a workload log. Refuses (typed error) headers for
/// the wrong dimensionality/scalar width and any checksum-damaged frame;
/// tolerates a torn tail.
template <int D>
WorkloadLogContents<D> ReadWorkloadLog(const std::string& path) {
  WorkloadLogContents<D> out;
  std::string raw;
  const persist::ReadFileResult r = persist::ReadFile(path, &raw);
  if (r == persist::ReadFileResult::kNotFound) return out;
  if (r == persist::ReadFileResult::kError) {
    out.error = persist::PersistError::kIo;
    return out;
  }
  out.exists = true;
  if (raw.size() < 16) {
    out.error = persist::PersistError::kSnapshotTruncated;
    return out;
  }
  ByteReader hr(raw.data(), raw.size());
  if (hr.U32() != kWorkloadLogMagic) {
    out.error = persist::PersistError::kBadMagic;
    return out;
  }
  if (hr.U32() != kWorkloadLogFormatVersion) {
    out.error = persist::PersistError::kBadFormatVersion;
    return out;
  }
  if (hr.U32() != static_cast<std::uint32_t>(D) ||
      hr.U32() != static_cast<std::uint32_t>(sizeof(Scalar))) {
    out.error = persist::PersistError::kDimensionMismatch;
    return out;
  }
  std::size_t pos = 16;
  while (pos < raw.size()) {
    if (raw.size() - pos < 8) {
      out.truncated_tail = true;
      return out;
    }
    ByteReader fr(raw.data() + pos, 8);
    const std::uint32_t len = fr.U32();
    const std::uint32_t crc = fr.U32();
    if (len > kMaxFramePayload) {
      // An impossible length is corruption, not a torn tail: no writer
      // emits frames past the cap.
      out.error = persist::PersistError::kWalRecordCorrupt;
      return out;
    }
    if (raw.size() - pos - 8 < len) {
      out.truncated_tail = true;
      return out;
    }
    const char* payload = raw.data() + pos + 8;
    if (persist::Crc32c(payload, len) != crc) {
      out.error = persist::PersistError::kWalRecordCorrupt;
      return out;
    }
    ByteReader pr(payload, len);
    WorkloadRecord<D> rec;
    rec.client = pr.U64();
    rec.target = pr.U8();
    auto req = Request<D>::TryParse(&pr);
    if (!req || !pr.ok() || pr.remaining() != 0) {
      // The frame checksummed clean but carries an unparseable request —
      // a recorder bug or version skew, either way a typed refusal.
      out.error = persist::PersistError::kWalRecordCorrupt;
      return out;
    }
    rec.request = *std::move(req);
    out.records.push_back(std::move(rec));
    pos += 8 + len;
  }
  return out;
}

/// Outcome of an in-process replay: the response-stream checksum (FNV-1a
/// over every serialized response body, in log order) plus the final
/// content checksum of every roster index — the two artifacts the replay
/// determinism gate compares across runs and transports.
struct ReplayResult {
  bool ok = false;
  persist::PersistError error = persist::PersistError::kNone;
  std::uint64_t requests = 0;
  std::uint64_t response_checksum = kFnvBasis;
  std::vector<std::uint64_t> index_checksums;
};

/// Replays a recorded workload directly against a roster — no sockets, no
/// threads: the log order IS the execution order, so this is the reference
/// execution the served run must match bit-for-bit.
template <int D>
ReplayResult ReplayWorkload(std::span<SpatialIndex<D>* const> roster,
                            const std::vector<WorkloadRecord<D>>& records,
                            const RequestHooks<D>* hooks = nullptr) {
  ReplayResult out;
  std::string bytes;
  for (const WorkloadRecord<D>& rec : records) {
    if (rec.target >= roster.size()) {
      out.error = persist::PersistError::kReplayRejected;
      return out;
    }
    const Response<D> resp =
        ExecuteRequest(roster[rec.target], rec.request, hooks);
    bytes.clear();
    ByteWriter w(&bytes);
    resp.Serialize(&w);
    out.response_checksum = FnvBytes(out.response_checksum, bytes);
    ++out.requests;
  }
  out.index_checksums.reserve(roster.size());
  for (SpatialIndex<D>* index : roster) {
    out.index_checksums.push_back(IndexContentChecksum(*index));
  }
  out.ok = true;
  return out;
}

}  // namespace quasii::server

#endif  // QUASII_SERVER_RECORDER_H_
