#ifndef QUASII_SERVER_SERVER_H_
#define QUASII_SERVER_SERVER_H_

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/request.h"
#include "common/spatial_index.h"
#include "common/task_scheduler.h"
#include "persist/snapshot.h"
#include "server/protocol.h"
#include "server/recorder.h"

namespace quasii::server {

/// Asynchronous batched query server fronting a roster of indexes.
///
/// Architecture — one thread class per concern:
///  - an acceptor thread (only with `Listen`) hands sockets to…
///  - per-connection reader threads, which do the handshake, parse and
///    validate frames, and either reject immediately (typed `kOverloaded` /
///    `kMalformed`, written under the connection's write lock) or enqueue
///    onto the bounded admission queue;
///  - ONE exec thread consumes the queue in FIFO order. It is the only
///    thread that executes requests, which makes the admission order the
///    execution order — the property the workload recorder (appended at
///    dequeue time) and bit-identical replay rest on. Runs of consecutive
///    *converged* unpinned queries against the same index are batched onto
///    the `BatchExecutor` pool: `ConvergedFor` guarantees shared-mode
///    execution (no reorganization), so batched results are byte-identical
///    to serial execution and determinism survives the parallelism.
///
/// Admission control: the queue is bounded at `max_inflight`; beyond it a
/// request is answered `kOverloaded` without being recorded (it was never
/// accepted, so replays reproduce only the accepted stream). Shutdown
/// drains: readers stop admitting first, then the exec thread empties the
/// queue — an accepted request is always executed, recorded and answered
/// (`ThreadPool::Shutdown` provides the same guarantee one layer down).
///
/// Snapshot reads: a request pinned to a store epoch executes only if the
/// target's `ObjectStore::version()` still equals the pin, else answers
/// `kEpochMismatch` — optimistic snapshot isolation without version
/// retention. `kSnapshot` admin requests write a durable snapshot via
/// `persist::WriteSnapshot` when the server was given a snapshot path.
template <int D>
class QueryServer {
 public:
  struct Options {
    /// Admission bound: queued-but-unexecuted requests across all clients.
    std::size_t max_inflight = 256;
    /// Longest run of converged queries handed to the pool at once.
    std::size_t max_batch = 64;
    /// Batch pool workers.
    int pool_threads = 4;
    /// Intra-query morsel threads (`SetIntraQueryThreads`, applied at
    /// `Start`; a `QUASII_EXEC_THREADS` env cap may clamp it). Default 1:
    /// fully serial intra-query execution, so record/replay determinism
    /// needs no caveats. Raising it parallelizes cold cracking and frozen
    /// leaf scans *within* the single exec thread's requests — admission
    /// order stays the execution order either way.
    int exec_threads = 1;
    /// Workload log path; empty disables recording.
    std::string record_path;
    /// Snapshot path prefix (".<target>" is appended); empty makes
    /// `kSnapshot` answer `kUnsupported`.
    std::string snapshot_path;
  };

  struct Counters {
    std::uint64_t connections = 0;
    std::uint64_t accepted = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t malformed = 0;
    std::uint64_t frame_errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t batched_queries = 0;
    /// Intra-query worker utilization, sampled per request around the exec
    /// loop: morsel tasks run (worker + helping-waiter + inline), tasks
    /// that crossed deques (steals), and how many requests fanned out at
    /// all. All zero at `exec_threads = 1`.
    std::uint64_t exec_tasks = 0;
    std::uint64_t exec_steals = 0;
    std::uint64_t parallel_requests = 0;
  };

  QueryServer(std::vector<SpatialIndex<D>*> roster, Options options)
      : roster_(std::move(roster)),
        options_(options),
        pool_(options.pool_threads),
        executor_(&pool_) {}

  ~QueryServer() { Stop(); }

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Opens the recorder (when configured), applies the intra-query thread
  /// count, and starts the exec thread.
  bool Start(std::string* error) {
    exec_threads_effective_ = SetIntraQueryThreads(options_.exec_threads);
    if (!options_.record_path.empty()) {
      const persist::PersistError err = recorder_.Open(options_.record_path);
      if (err != persist::PersistError::kNone) {
        if (error != nullptr) {
          *error = std::string("cannot open workload log: ") +
                   persist::PersistErrorName(err);
        }
        return false;
      }
    }
    exec_ = std::thread([this] { ExecLoop(); });
    return true;
  }

  /// Binds and listens on a Unix-domain socket and starts the acceptor.
  /// Call after `Start`. An existing socket file is replaced.
  bool Listen(const std::string& path, std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "socket path too long";
      return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket() failed";
      return false;
    }
    ::unlink(path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      if (error != nullptr) *error = "bind/listen failed on " + path;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    acceptor_ = std::thread([this] { AcceptLoop(); });
    return true;
  }

  /// Adopts an already-connected socket (the socketpair test path). Takes
  /// ownership of `fd`.
  void AddConnection(int fd) {
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_client_id_++;
      conns_.push_back(conn);
    }
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }

  /// Orderly shutdown: stop accepting, stop reading, drain the admission
  /// queue (every accepted request executes, is recorded, and is answered),
  /// then close. Idempotent; the destructor calls it.
  void Stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    std::vector<std::shared_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns = conns_;
    }
    // Readers wake on EOF from the read-side shutdown and exit; after the
    // joins no new request can be admitted.
    for (auto& c : conns) ::shutdown(c->fd, SHUT_RD);
    for (auto& c : conns) {
      if (c->reader.joinable()) c->reader.join();
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      exec_stop_ = true;
    }
    queue_cv_.notify_all();
    if (exec_.joinable()) exec_.join();
    for (auto& c : conns) ::close(c->fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.clear();
    }
    recorder_.Close();
    pool_.Shutdown();
  }

  Counters counters() const {
    Counters out;
    out.connections = counters_.connections.load();
    out.accepted = counters_.accepted.load();
    out.overloaded = counters_.overloaded.load();
    out.malformed = counters_.malformed.load();
    out.frame_errors = counters_.frame_errors.load();
    out.batches = counters_.batches.load();
    out.batched_queries = counters_.batched_queries.load();
    out.exec_tasks = counters_.exec_tasks.load();
    out.exec_steals = counters_.exec_steals.load();
    out.parallel_requests = counters_.parallel_requests.load();
    return out;
  }

  /// The intra-query thread count actually in effect (`Options` value after
  /// the `QUASII_EXEC_THREADS` cap), valid once `Start` has run.
  int exec_threads() const { return exec_threads_effective_; }

  std::uint64_t recorded() const { return recorder_.records(); }
  std::size_t roster_size() const { return roster_.size(); }

  /// Final-state digests, one per roster index — the server half of the
  /// replay determinism gate. Call only while quiescent (after `Stop` or
  /// with no request in flight).
  std::vector<std::uint64_t> IndexChecksums() const {
    std::vector<std::uint64_t> out;
    out.reserve(roster_.size());
    for (const SpatialIndex<D>* index : roster_) {
      out.push_back(IndexContentChecksum(*index));
    }
    return out;
  }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex write_mu;  ///< reader rejections vs exec responses
    std::thread reader;
  };

  struct Pending {
    std::shared_ptr<Connection> conn;
    std::uint64_t seq = 0;
    std::uint8_t target = 0;
    Request<D> request;
  };

  struct AtomicCounters {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> malformed{0};
    std::atomic<std::uint64_t> frame_errors{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batched_queries{0};
    std::atomic<std::uint64_t> exec_tasks{0};
    std::atomic<std::uint64_t> exec_steals{0};
    std::atomic<std::uint64_t> parallel_requests{0};
  };

  void AcceptLoop() {
    while (!stopping_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down
      }
      AddConnection(fd);
    }
  }

  void SendResponse(Connection& conn, std::uint64_t seq,
                    const Response<D>& resp) {
    std::string payload;
    ByteWriter w(&payload);
    w.U64(seq);
    resp.Serialize(&w);
    std::lock_guard<std::mutex> lock(conn.write_mu);
    // A write failure means the client is gone; the request was still
    // executed and recorded (responses are at-most-once, requests are
    // exactly-once up to the recorded log).
    WriteFrame(conn.fd, payload);
  }

  void SendStatus(Connection& conn, std::uint64_t seq, ResponseStatus status,
                  RequestKind kind) {
    Response<D> resp;
    resp.status = status;
    resp.kind = kind;
    SendResponse(conn, seq, resp);
  }

  void ReaderLoop(std::shared_ptr<Connection> conn) {
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      WriteFrame(conn->fd, HelloPayload());
    }
    std::string payload;
    if (ReadFrame(conn->fd, &payload) != WireError::kNone ||
        !CheckHelloPayload(payload)) {
      counters_.frame_errors.fetch_add(1, std::memory_order_relaxed);
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    while (true) {
      const WireError err = ReadFrame(conn->fd, &payload);
      if (err == WireError::kClosed) return;
      if (err != WireError::kNone) {
        // Torn frame, bad CRC, oversized length, I/O failure: the stream
        // has no resynchronization point; count it and drop the
        // connection. Every malformed input is a typed outcome, never UB.
        counters_.frame_errors.fetch_add(1, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      ByteReader r(payload);
      const std::uint64_t seq = r.U64();
      const std::uint8_t target = r.U8();
      if (!r.ok()) {
        // Too short to even carry a seq to echo — protocol violation.
        counters_.frame_errors.fetch_add(1, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
      }
      auto request = Request<D>::TryParse(&r);
      if (!request || !r.ok() || r.remaining() != 0 ||
          target >= roster_.size()) {
        counters_.malformed.fetch_add(1, std::memory_order_relaxed);
        SendStatus(*conn, seq, ResponseStatus::kMalformed,
                   request ? request->kind() : RequestKind::kPing);
        continue;
      }
      Pending p;
      p.conn = conn;
      p.seq = seq;
      p.target = target;
      p.request = *std::move(request);
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (queue_.size() >= options_.max_inflight) {
          counters_.overloaded.fetch_add(1, std::memory_order_relaxed);
          SendStatus(*conn, seq, ResponseStatus::kOverloaded,
                     p.request.kind());
          continue;
        }
        queue_.push_back(std::move(p));
      }
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
    }
  }

  /// Whether `p` may join a converged read batch: an unpinned plain query
  /// (pinned reads take the serial path, where the epoch check lives)
  /// whose descent the target index promises not to reorganize. The exec
  /// thread is the only mutator, so `ConvergedFor` is stable here.
  bool Batchable(const Pending& p) const {
    return p.request.kind() == RequestKind::kQuery &&
           p.request.pin_epoch() == 0 &&
           roster_[p.target]->ConvergedFor(p.request.query());
  }

  void Record(const Pending& p) {
    if (!recorder_.is_open()) return;
    recorder_.Append(p.conn->id, p.target, p.request);
  }

  void ExecLoop() {
    std::vector<Pending> batch;
    while (true) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] { return exec_stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // exec_stop_ and fully drained
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        // Extend a converged-read run without waiting: batching is an
        // opportunistic amortization, never a latency tax.
        if (Batchable(batch.front())) {
          while (!queue_.empty() && batch.size() < options_.max_batch &&
                 queue_.front().target == batch.front().target &&
                 Batchable(queue_.front())) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
        }
      }
      for (const Pending& p : batch) Record(p);
      // Utilization sampling: every morsel task any of this batch's
      // requests fanned out has completed by the time its Execute returns
      // (`Group::Wait` is a full barrier), so the scheduler-stats delta
      // around the batch is exactly this batch's work.
      const TaskScheduler::Stats before = IntraQueryScheduler().stats();
      if (batch.size() > 1) {
        RunBatch(batch);
      } else {
        RunSingle(batch.front());
      }
      const TaskScheduler::Stats after = IntraQueryScheduler().stats();
      const std::uint64_t tasks = (after.executed - before.executed) +
                                  (after.helped - before.helped) +
                                  (after.inlined - before.inlined);
      if (tasks > 0) {
        counters_.exec_tasks.fetch_add(tasks, std::memory_order_relaxed);
        counters_.exec_steals.fetch_add(after.stolen - before.stolen,
                                        std::memory_order_relaxed);
        counters_.parallel_requests.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  void RunSingle(const Pending& p) {
    RequestHooks<D> hooks;
    std::string snapshot_path;
    if (!options_.snapshot_path.empty()) {
      snapshot_path =
          options_.snapshot_path + "." + std::to_string(p.target);
      hooks.snapshot_now = [&snapshot_path](SpatialIndex<D>& index,
                                            std::uint64_t* lsn) {
        if (persist::WriteSnapshot<D>(index, snapshot_path) !=
            persist::PersistError::kNone) {
          return false;
        }
        *lsn = index.store().version();
        return true;
      };
    }
    const Response<D> resp =
        ExecuteRequest(roster_[p.target], p.request, &hooks);
    SendResponse(*p.conn, p.seq, resp);
  }

  void RunBatch(const std::vector<Pending>& batch) {
    std::vector<Query<D>> queries;
    queries.reserve(batch.size());
    for (const Pending& p : batch) queries.push_back(p.request.query());
    SpatialIndex<D>* index = roster_[batch.front().target];
    std::vector<BatchResult> results =
        executor_.Run(index, std::span<const Query<D>>(queries));
    counters_.batches.fetch_add(1, std::memory_order_relaxed);
    counters_.batched_queries.fetch_add(batch.size(),
                                        std::memory_order_relaxed);
    // No mutation can interleave (this thread is the only mutator), so one
    // version read covers the whole batch.
    const std::uint64_t epoch = index->store().version();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Response<D> resp;
      resp.kind = RequestKind::kQuery;
      resp.epoch = epoch;
      resp.count = results[i].count;
      resp.ids = std::move(results[i].ids);
      SendResponse(*batch[i].conn, batch[i].seq, resp);
    }
  }

  std::vector<SpatialIndex<D>*> roster_;
  Options options_;
  int exec_threads_effective_ = 1;
  ThreadPool pool_;
  BatchExecutor<D> executor_;
  WorkloadRecorder<D> recorder_;

  int listen_fd_ = -1;
  std::thread acceptor_;
  std::thread exec_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::uint64_t next_client_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool exec_stop_ = false;

  AtomicCounters counters_;
};

}  // namespace quasii::server

#endif  // QUASII_SERVER_SERVER_H_
