#ifndef QUASII_COMMON_CRACK_ARRAY_H_
#define QUASII_COMMON_CRACK_ARRAY_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/dataset.h"
#include "common/packed_column.h"
#include "common/query.h"
#include "common/simd.h"
#include "common/task_scheduler.h"
#include "geometry/box.h"

namespace quasii {

namespace internal {

/// Thread-local leaf-scan scratch (candidate mask + compacted survivor ids).
/// Repeated scans on one thread reuse the buffers without reallocating — but
/// one huge scan must not pin peak-sized buffers on a long-lived pool thread
/// forever. Shrink policy: once a buffer exceeds `kCapBytes` and
/// `kShrinkStreak` consecutive scans each used at most a quarter of its
/// capacity, it is re-sized down to the latest working size. The streak
/// requirement keeps an alternating big/small scan mix from thrashing the
/// allocator.
struct ScanScratch {
  static constexpr std::size_t kCapBytes = std::size_t{1} << 20;
  static constexpr int kShrinkStreak = 64;

  std::vector<std::uint8_t> mask;
  std::vector<ObjectId> ids;
  int mask_streak = 0;
  int ids_streak = 0;

  template <typename T>
  static void MaybeShrink(std::vector<T>* v, std::size_t used, int* streak) {
    const std::size_t cap_elems = kCapBytes / sizeof(T);
    if (v->capacity() <= cap_elems || used > v->capacity() / 4) {
      *streak = 0;
      return;
    }
    if (++*streak < kShrinkStreak) return;
    *streak = 0;
    std::vector<T> right_sized;
    right_sized.reserve(used);
    v->swap(right_sized);
  }

  /// Called after each scan with the sizes that scan actually needed.
  void Release(std::size_t mask_used, std::size_t ids_used) {
    MaybeShrink(&mask, mask_used, &mask_streak);
    MaybeShrink(&ids, ids_used, &ids_streak);
  }
};

inline ScanScratch& ScanScratchTLS() {
  static thread_local ScanScratch scratch;
  return scratch;
}

}  // namespace internal

/// Partition of `keys[begin, end)` so that every element with
/// `pred(key) == true` precedes every element with `pred(key) == false`,
/// calling `swap_rows(i, j)` for each exchanged pair so companion columns
/// stay aligned with the key column. `swap_rows` MUST swap the key column
/// itself as well. Returns the split position.
///
/// This is the one tuned reorganization primitive every incremental index
/// (QUASII slices, SFCracker pieces) is built on: the comparison loop
/// touches only the dense key column, and full rows are exchanged only for
/// the elements that actually change sides — the cache behaviour database
/// cracking depends on [Idreos et al., 18]. Large ranges use a
/// BlockQuicksort-style scheme [Edelkamp & Weiß]: misplaced-element offsets
/// are gathered per block with branchless conditional increments, then
/// exchanged pairwise — a median-positioned crack predicate is a coin flip
/// per element, and data-dependent branches there mispredict half the time.
template <typename Key, typename Pred, typename SwapRows>
std::size_t CrackPartition(const Key* keys, std::size_t begin, std::size_t end,
                           Pred pred, SwapRows swap_rows) {
  constexpr std::size_t kBlock = 128;
  std::size_t lo = begin;
  std::size_t hi = end;

  // Blocked phase: gather the offsets of elements on the wrong side of each
  // boundary block (stores are unconditional, counters advance via setcc —
  // no data-dependent branch), then swap the pairs.
  unsigned char offs_l[kBlock];
  unsigned char offs_r[kBlock];
  std::size_t nl = 0;  // pending misplaced elements in the left block
  std::size_t nr = 0;  // pending misplaced elements in the right block
  std::size_t il = 0;
  std::size_t ir = 0;
  while (hi - lo > 2 * kBlock) {
    if (nl == 0) {
      il = 0;
      for (std::size_t i = 0; i < kBlock; ++i) {
        offs_l[nl] = static_cast<unsigned char>(i);
        nl += !pred(keys[lo + i]);
      }
    }
    if (nr == 0) {
      ir = 0;
      for (std::size_t i = 0; i < kBlock; ++i) {
        offs_r[nr] = static_cast<unsigned char>(i + 1);
        nr += pred(keys[hi - 1 - i]);
      }
    }
    const std::size_t m = nl < nr ? nl : nr;
    for (std::size_t i = 0; i < m; ++i) {
      swap_rows(lo + offs_l[il + i], hi - offs_r[ir + i]);
    }
    nl -= m;
    nr -= m;
    il += m;
    ir += m;
    // A fully fixed block retires; `lo`/`hi` stay pinned to a block with
    // pending offsets (at most one side can have any).
    if (nl == 0) lo += kBlock;
    if (nr == 0) hi -= kBlock;
  }

  // Scalar tail: the remaining window (including at most one partially
  // fixed block, which re-scans harmlessly) is small.
  while (true) {
    while (lo < hi && pred(keys[lo])) ++lo;
    while (lo < hi && !pred(keys[hi - 1])) --hi;
    if (lo >= hi) break;
    // keys[lo] fails the predicate, keys[hi - 1] passes it: exchange.
    swap_rows(lo, hi - 1);
    ++lo;
    --hi;
  }
  return lo;
}

namespace internal {

/// Ranges at least this long partition via `ChunkedCrackPartition` — chosen
/// so every committed CI-sized run (n ≤ 2^14) stays on the classic
/// single-pass `CrackPartition` and its baseline counters are untouched.
inline constexpr std::size_t kChunkedPartitionMin = std::size_t{1} << 16;

/// Bounds the chunk count so the fixup bookkeeping (one split offset and at
/// most two misplaced runs per chunk) stays a few KB however large the
/// range.
inline constexpr std::size_t kMaxPartitionChunks = 256;

/// A contiguous run of rows, for the fixup phase's misplaced-element lists.
struct PartitionRun {
  std::size_t pos = 0;
  std::size_t len = 0;
};

/// Maps `rank` to its absolute row position within the concatenation of
/// `runs` (`prefix[i]` = total length of runs before `i`).
inline std::size_t RunPosition(const std::vector<PartitionRun>& runs,
                               const std::vector<std::size_t>& prefix,
                               std::size_t rank) {
  const auto it = std::upper_bound(prefix.begin(), prefix.end(), rank) - 1;
  const std::size_t r = static_cast<std::size_t>(it - prefix.begin());
  return runs[r].pos + (rank - prefix[r]);
}

}  // namespace internal

/// Parallelizable partition of `keys[begin, end)` with the same contract as
/// `CrackPartition`, as a classic two-phase parallel partition:
///
///  1. **Block partition** — the range is cut into contiguous chunks whose
///     count and boundaries are a pure function of the range length and the
///     morsel grain (never the worker count), and each chunk is partitioned
///     independently with `CrackPartition` (disjoint rows, so concurrent
///     `swap_rows` callbacks never touch the same row or id).
///  2. **Bounded swap fixup** — with the global split `S` known from the
///     per-chunk splits, the misplaced elements form at most one run per
///     chunk on each side of `S` (pred-false runs before `S`, pred-true
///     runs after). Their counts are equal by construction, and pairing the
///     k-th misplaced-false row with the k-th misplaced-true row yields a
///     set of disjoint swaps executed morsel-parallel.
///
/// The resulting layout depends only on the input, the range, and the
/// grain — NOT on how many workers executed the morsels — so serial
/// (zero-worker) and 8-thread executions produce bit-identical columns,
/// which is what keeps crack counters and median-split pivots identical
/// across thread counts. Note the layout intentionally DIFFERS from what a
/// single `CrackPartition` pass would produce; callers select between the
/// two by range length alone so every execution mode agrees on which
/// algorithm ran.
template <typename Key, typename Pred, typename SwapRows>
std::size_t ChunkedCrackPartition(const Key* keys, std::size_t begin,
                                  std::size_t end, Pred pred,
                                  SwapRows swap_rows, TaskScheduler* exec) {
  const std::size_t len = end - begin;
  const std::size_t chunk =
      std::max(MorselGrain(), (len + internal::kMaxPartitionChunks - 1) /
                                  internal::kMaxPartitionChunks);
  const std::size_t nchunks = (len + chunk - 1) / chunk;
  if (nchunks < 2) return CrackPartition(keys, begin, end, pred, swap_rows);

  // Phase 1: chunk-local partitions (parallel over chunks, disjoint rows).
  std::vector<std::size_t> split(nchunks);
  ParallelFor(exec, 0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t k = cb; k < ce; ++k) {
      const std::size_t b = begin + k * chunk;
      const std::size_t e = std::min(b + chunk, end);
      split[k] = CrackPartition(keys, b, e, pred, swap_rows);
    }
  });

  // Global split: total pred-true count across chunks.
  std::size_t s = begin;
  for (std::size_t k = 0; k < nchunks; ++k) {
    s += split[k] - (begin + k * chunk);
  }

  // Phase 2: misplaced runs. Before `s` the offenders are each chunk's
  // false suffix `[split_k, chunk_end)` clipped to `< s`; after `s` each
  // chunk's true prefix `[chunk_begin, split_k)` clipped to `>= s`.
  std::vector<internal::PartitionRun> false_runs;
  std::vector<internal::PartitionRun> true_runs;
  std::vector<std::size_t> false_prefix;
  std::vector<std::size_t> true_prefix;
  std::size_t false_total = 0;
  std::size_t true_total = 0;
  for (std::size_t k = 0; k < nchunks; ++k) {
    const std::size_t b = begin + k * chunk;
    const std::size_t e = std::min(b + chunk, end);
    const std::size_t fb = split[k];
    const std::size_t fe = std::min(e, s);
    if (fb < fe) {
      false_runs.push_back({fb, fe - fb});
      false_prefix.push_back(false_total);
      false_total += fe - fb;
    }
    const std::size_t tb = std::max(b, s);
    const std::size_t te = split[k];
    if (tb < te) {
      true_runs.push_back({tb, te - tb});
      true_prefix.push_back(true_total);
      true_total += te - tb;
    }
  }
  // Counts agree by the counting argument above; the swaps are disjoint
  // (each rank names one row left of `s` and one right of it).
  ParallelFor(exec, 0, false_total, MorselGrain(),
              [&](std::size_t rb, std::size_t re) {
                for (std::size_t r = rb; r < re; ++r) {
                  swap_rows(internal::RunPosition(false_runs, false_prefix, r),
                            internal::RunPosition(true_runs, true_prefix, r));
                }
              });
  (void)true_total;
  return s;
}

/// Structure-of-arrays storage for an incrementally reorganized spatial
/// collection: per-dimension centre-key columns (the crack keys), per-
/// dimension MBB bound columns (`lo`/`hi`, the exact-filter data), the id
/// column, and a liveness byte per row (erase tombstones), all permuted in
/// lockstep.
///
/// The layout serves the two hot loops of an incremental index:
///  - cracking comparators read a dense 4-byte key instead of loading a
///    whole `Entry<D>` struct and recomputing `(lo + hi) / 2`, and rows are
///    exchanged only for elements that actually change sides;
///  - leaf scans test the dense bound columns dimension-by-dimension in
///    branchless, auto-vectorizable passes — `lo[d] <= q.hi[d] &&
///    hi[d] >= q.lo[d]` per dimension is exactly `Box::Intersects`, so
///    survivors are true results and no box is ever materialized.
///
/// Dynamic data rides on two mechanisms:
///  - `Append` pushes new rows behind `pending_begin()`: the *pending tail*,
///    an unsorted suffix the owning index drains into its structure at query
///    time (QUASII promotes it to a root slice that subsequent queries crack
///    lazily, exactly like initial data) and seals with `SealPending`;
///  - `EraseId` tombstones a row in place (`live` byte cleared, O(1) via the
///    id → row map). Leaf scans fold the live column into their candidate
///    mask branchlessly, and `PartitionLiveFirst` lets crack steps sweep the
///    dead rows of a range aside in passing.
template <int D>
class CrackArray {
 public:
  static constexpr std::size_t kNoRow =
      std::numeric_limits<std::size_t>::max();

  CrackArray() = default;
  explicit CrackArray(const Dataset<D>& data) { Reset(data); }

  /// (Re)builds the columns from `data` in dataset order (ids are dataset
  /// positions, everything live and structured).
  void Reset(const Dataset<D>& data) {
    Clear();
    for (std::size_t i = 0; i < data.size(); ++i) {
      Append(static_cast<ObjectId>(i), data[i]);
    }
    SealPending();
  }

  /// Empties the array (no rows, no tombstones, no pending tail).
  void Clear() {
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      keys_[dd].clear();
      los_[dd].clear();
      his_[dd].clear();
    }
    ids_.clear();
    live_.clear();
    row_of_.clear();
    tombstones_ = 0;
    pending_begin_ = 0;
  }

  /// Appends a live row for `id` to the pending tail. The id must not have
  /// a live row already (the owning index's store enforces this).
  void Append(ObjectId id, const Box<D>& b) {
    const std::size_t row = ids_.size();
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      keys_[dd].push_back(CenterKey(b, d));
      los_[dd].push_back(b.lo[d]);
      his_[dd].push_back(b.hi[d]);
    }
    ids_.push_back(id);
    live_.push_back(1);
    if (id >= row_of_.size()) {
      row_of_.resize(static_cast<std::size_t>(id) + 1, kNoRow);
    }
    row_of_[id] = row;
  }

  /// Tombstones the live row of `id` in place. Returns false when the id
  /// has no live row. The dead row keeps its position (slice offsets stay
  /// valid) but disappears from every scan; a later `Append` of the same id
  /// creates a fresh row and the dead one stays dead forever.
  bool EraseId(ObjectId id) {
    if (id >= row_of_.size() || row_of_[id] == kNoRow) return false;
    live_[row_of_[id]] = 0;
    row_of_[id] = kNoRow;
    ++tombstones_;
    return true;
  }

  /// First row of the pending (appended, not yet structured) tail.
  std::size_t pending_begin() const { return pending_begin_; }
  std::size_t pending_count() const { return ids_.size() - pending_begin_; }
  /// Marks every current row structured (the owner absorbed the tail).
  void SealPending() { pending_begin_ = ids_.size(); }

  std::size_t tombstones() const { return tombstones_; }
  bool live(std::size_t i) const { return live_[i] != 0; }

  /// Any tombstoned row in `[begin, end)`? One `memchr` over the dense
  /// live bytes — the guard that keeps a tombstone elsewhere in the array
  /// from pessimizing scans and sweeps of clean ranges.
  bool HasDeadIn(std::size_t begin, std::size_t end) const {
    return tombstones_ > 0 &&
           std::memchr(live_.data() + begin, 0, end - begin) != nullptr;
  }

  /// The centre key every key column stores: identical arithmetic everywhere
  /// so precomputed and recomputed keys agree bit-for-bit.
  static Scalar CenterKey(const Box<D>& b, int d) {
    return (b.lo[d] + b.hi[d]) / 2;
  }

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  Scalar key(int d, std::size_t i) const {
    return keys_[static_cast<std::size_t>(d)][i];
  }
  const std::vector<Scalar>& keys(int d) const {
    return keys_[static_cast<std::size_t>(d)];
  }
  const std::vector<Scalar>& lo_col(int d) const {
    return los_[static_cast<std::size_t>(d)];
  }
  const std::vector<Scalar>& hi_col(int d) const {
    return his_[static_cast<std::size_t>(d)];
  }
  ObjectId id(std::size_t i) const { return ids_[i]; }
  const std::vector<ObjectId>& ids() const { return ids_; }
  /// The box of row `i`, reassembled from the bound columns (cold path:
  /// tests and diagnostics; hot loops scan the columns directly).
  Box<D> box(std::size_t i) const {
    Box<D> b;
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      b.lo[d] = los_[dd][i];
      b.hi[d] = his_[dd][i];
    }
    return b;
  }

  /// Leaf scan of rows `[begin, end)` against `(q, predicate)`, streaming
  /// the matches into `emit`: per dimension one explicit-SIMD pass
  /// (`simd::MaskLeGe`, dispatched scalar/AVX2/NEON at runtime) ANDs the
  /// predicate's interval test over the dense bound columns into a candidate
  /// mask — dimension-wise the tests *are* `Box::Intersects` / `ContainsBox`,
  /// so mask survivors are exact results and no box is ever materialized.
  /// Survivor ids are compressed into a dense run (`simd::CompactIds`,
  /// movemask + 8-lane permute on AVX2, branchless scalar elsewhere) and
  /// handed over as one `AddRun` (one virtual call per scan, not per object)
  /// — or, on count-only executions, only their number is accumulated and
  /// the id column is never read.
  ///
  /// When the caller owns a `PackedLeaf` for exactly this row range (a
  /// frozen QUASII slice), pass it as `packed`: the mask passes then scan
  /// the bit-packed frame-of-reference columns directly — comparing in
  /// mapped space, never decompressing — and read a fraction of the bytes.
  /// Results are bit-identical to the raw-column path.
  ///
  /// For `kIntersects`, dimensions set in `covered_dims` are proven
  /// overlapping by the caller's structure (e.g. a QUASII slice whose value
  /// interval lies inside the query's) and skip their pass; a fully covered
  /// scan emits its whole range without testing anything. Containment
  /// predicates ignore the mask: covered centre keys prove intersection,
  /// not containment.
  ///
  /// Tombstoned rows never survive: when the scanned range contains any
  /// (one `memchr` over the live bytes decides — a tombstone elsewhere in
  /// the array costs this range nothing), the candidate mask is seeded from
  /// the live column (one more branchless AND) instead of all-ones, and the
  /// full-coverage bulk path is bypassed.
  ///
  /// Safe to call concurrently (it reads the columns and writes only
  /// thread-local scratch and the emitter) as long as no thread is
  /// reorganizing the array — the converged read path of QUASII's
  /// concurrency contract.
  ///
  /// Returns the number of column bytes the scan actually touched (bound or
  /// packed columns, live-byte probe, emitted ids) — the engine accumulates
  /// it into `QueryStats::bytes_scanned`.
  std::uint64_t StreamScan(std::size_t begin, std::size_t end, const Box<D>& q,
                           RangePredicate predicate, unsigned covered_dims,
                           MatchEmitter* emit,
                           const PackedLeaf<D>* packed = nullptr) const {
    internal::ScanScratch& scratch = internal::ScanScratchTLS();
    const std::size_t len = end - begin;
    if (len == 0) return 0;
    if (predicate != RangePredicate::kIntersects) covered_dims = 0;
    const bool range_has_dead = HasDeadIn(begin, end);
    std::uint64_t bytes = tombstones_ > 0 ? len : 0;  // live-byte probe
    if (covered_dims == (1u << D) - 1 && !range_has_dead) {
      if (emit->count_only()) {
        emit->AddAnonymous(len);
      } else {
        emit->AddRun(ids_.data() + begin, len);
        bytes += len * sizeof(ObjectId);
      }
      return bytes;
    }
    if (!range_has_dead) {
      scratch.mask.assign(len, 1);
    } else {
      scratch.mask.assign(live_.begin() + static_cast<std::ptrdiff_t>(begin),
                          live_.begin() + static_cast<std::ptrdiff_t>(end));
    }
    std::uint8_t* mask = scratch.mask.data();
    // A packed leaf can only stand in for the raw columns when it encodes
    // exactly this row range.
    const bool use_packed = packed != nullptr && packed->rows == len;
    for (int d = 0; d < D; ++d) {
      if (covered_dims & (1u << d)) continue;
      const Scalar qlo = q.lo[d];
      const Scalar qhi = q.hi[d];
      if (use_packed) {
        const std::size_t dd = static_cast<std::size_t>(d);
        const PackedColumn& lo_pk = packed->lo_cols[dd];
        const PackedColumn& hi_pk = packed->hi_cols[dd];
        switch (predicate) {
          case RangePredicate::kIntersects:
            MaskPackedLeGe(lo_pk, MapOrdered(qhi), hi_pk, MapOrdered(qlo),
                           mask, len);
            break;
          case RangePredicate::kContains:  // object ⊇ q, per dimension
            MaskPackedLeGe(lo_pk, MapOrdered(qlo), hi_pk, MapOrdered(qhi),
                           mask, len);
            break;
          case RangePredicate::kContainedBy:  // object ⊆ q, per dimension
            MaskPackedLeGe(hi_pk, MapOrdered(qhi), lo_pk, MapOrdered(qlo),
                           mask, len);
            break;
        }
        bytes += lo_pk.bytes() + hi_pk.bytes();
        continue;
      }
      const Scalar* los = los_[static_cast<std::size_t>(d)].data() + begin;
      const Scalar* his = his_[static_cast<std::size_t>(d)].data() + begin;
      // All three predicates are one (column <= bound) & (column >= bound)
      // pair; only the column/bound pairing differs.
      switch (predicate) {
        case RangePredicate::kIntersects:
          simd::MaskLeGe(los, qhi, his, qlo, mask, len);
          break;
        case RangePredicate::kContains:  // object ⊇ q, per dimension
          simd::MaskLeGe(los, qlo, his, qhi, mask, len);
          break;
        case RangePredicate::kContainedBy:  // object ⊆ q, per dimension
          simd::MaskLeGe(his, qhi, los, qlo, mask, len);
          break;
      }
      bytes += 2 * len * sizeof(Scalar);
    }
    if (emit->count_only()) {
      emit->AddAnonymous(simd::MaskCount(mask, len));
      scratch.Release(len, 0);
      return bytes;
    }
    scratch.ids.resize(len);
    const std::size_t m =
        simd::CompactIds(ids_.data() + begin, mask, len, scratch.ids.data());
    if (m > 0) emit->AddRun(scratch.ids.data(), m);
    bytes += len * sizeof(ObjectId);
    scratch.Release(len, len);
    return bytes;
  }

  /// One crack step: partitions `[begin, end)` so keys in dimension `d`
  /// below `v` precede the rest, co-moving ids, bounds, and the sibling key
  /// columns. Returns the split position.
  std::size_t CrackOnAxis(std::size_t begin, std::size_t end, int d, Scalar v) {
    return Partition(begin, end, d, [v](Scalar k) { return k < v; });
  }

  /// Sweeps the tombstoned rows of `[begin, end)` behind the live ones (the
  /// same blocked partition as a crack step, keyed on the live column).
  /// Returns the first dead position — the caller shrinks its slice to the
  /// live prefix and parks the dead suffix where no scan visits it, so a
  /// refinement compacts erased objects out of the hot range in passing.
  std::size_t PartitionLiveFirst(std::size_t begin, std::size_t end) {
    const auto pred = [](std::uint8_t v) { return v != 0; };
    const auto swap = [this](std::size_t i, std::size_t j) { SwapRows(i, j); };
    if (end - begin >= internal::kChunkedPartitionMin) {
      return ChunkedCrackPartition(live_.data(), begin, end, pred, swap,
                                   &IntraQueryScheduler());
    }
    return CrackPartition(live_.data(), begin, end, pred, swap);
  }

  struct SplitResult {
    /// Split position; `pos == end` means the range could not be split.
    std::size_t pos = 0;
    /// Value boundary between the halves: left keys are `< bound`, right
    /// keys `>= bound`.
    Scalar bound = 0;
    /// Every key in the range is identical — the range cannot shrink by
    /// cracking along `d` (the caller freezes the slice).
    bool frozen = false;
  };

  /// Splits `[begin, end)` at (approximately) its median key in dimension
  /// `d`. The pivot is the exact median of an evenly strided key sample
  /// (the whole range when small), selected on a scratch copy of the floats,
  /// then the rows are partitioned once at the pivot value — a near-halving
  /// split at a fraction of an exact `nth_element` pass over the rows. If
  /// the pivot is the minimum key the split lands above its duplicate run
  /// instead, and a range of all-identical keys is reported `frozen`.
  SplitResult MedianSplit(std::size_t begin, std::size_t end, int d) {
    static constexpr std::size_t kMedianSample = 256;
    const std::vector<Scalar>& col = keys_[static_cast<std::size_t>(d)];
    const std::size_t len = end - begin;
    if (len < 2) {
      // Nothing to halve; report the range unsplittable.
      SplitResult r;
      r.pos = end;
      if (len == 1) {
        r.bound = std::nextafter(col[begin],
                                 std::numeric_limits<Scalar>::infinity());
      }
      r.frozen = true;
      return r;
    }
    std::vector<Scalar>& scratch = MedianScratchTLS();
    scratch.clear();
    if (len <= 2 * kMedianSample) {
      scratch.assign(col.begin() + static_cast<std::ptrdiff_t>(begin),
                     col.begin() + static_cast<std::ptrdiff_t>(end));
    } else {
      const std::size_t stride = len / kMedianSample;
      for (std::size_t i = begin; i < end; i += stride) {
        scratch.push_back(col[i]);
      }
    }
    const auto nth =
        scratch.begin() + static_cast<std::ptrdiff_t>(scratch.size() / 2);
    std::nth_element(scratch.begin(), nth, scratch.end());
    const Scalar pivot = *nth;

    SplitResult r;
    r.pos = CrackOnAxis(begin, end, d, pivot);
    r.bound = pivot;
    if (r.pos == begin) {
      // The pivot is the minimum key: split above its duplicate run.
      r.pos =
          Partition(begin, end, d, [pivot](Scalar k) { return k <= pivot; });
      r.bound =
          std::nextafter(pivot, std::numeric_limits<Scalar>::infinity());
      r.frozen = r.pos == end;  // every key equals the pivot
    }
    return r;
  }

  /// Serializes the full column set — keys, bounds, ids, liveness, and the
  /// pending boundary — for snapshot structure blobs. Columns are written
  /// verbatim (not re-derived from a store) because dead rows must survive:
  /// a tombstoned id may have been re-inserted with a different box, so its
  /// stale row's keys exist nowhere else.
  void EncodeTo(ByteWriter* w) const {
    const std::size_t n = ids_.size();
    w->U64(n);
    w->U64(pending_begin_);
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      for (std::size_t i = 0; i < n; ++i) w->F(keys_[dd][i]);
      for (std::size_t i = 0; i < n; ++i) w->F(los_[dd][i]);
      for (std::size_t i = 0; i < n; ++i) w->F(his_[dd][i]);
    }
    for (std::size_t i = 0; i < n; ++i) w->U32(ids_[i]);
    w->Bytes(live_.data(), n);
  }

  /// Rebuilds the array from an `EncodeTo` blob: columns are read back and
  /// the derived state (id → row map, tombstone count) is reconstructed.
  /// False on truncated input or an id owning two live rows.
  bool DecodeFrom(ByteReader* r) {
    Clear();
    const std::uint64_t n64 = r->U64();
    const std::uint64_t pending = r->U64();
    if (!r->ok() || pending > n64) return false;
    // A row is at least (3 * D) Scalars + id + live byte; reject counts the
    // remaining input cannot possibly hold before allocating.
    const std::size_t row_bytes = 3 * D * sizeof(Scalar) + 4 + 1;
    if (n64 > r->remaining() / row_bytes) return false;
    const std::size_t n = static_cast<std::size_t>(n64);
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      keys_[dd].resize(n);
      los_[dd].resize(n);
      his_[dd].resize(n);
      for (std::size_t i = 0; i < n; ++i) keys_[dd][i] = r->F();
      for (std::size_t i = 0; i < n; ++i) los_[dd][i] = r->F();
      for (std::size_t i = 0; i < n; ++i) his_[dd][i] = r->F();
    }
    ids_.resize(n);
    for (std::size_t i = 0; i < n; ++i) ids_[i] = r->U32();
    live_.resize(n);
    if (n > 0 && !r->Bytes(live_.data(), n)) return false;
    if (!r->ok()) return false;
    pending_begin_ = static_cast<std::size_t>(pending);
    for (std::size_t i = 0; i < n; ++i) {
      if (!live_[i]) {
        ++tombstones_;
        continue;
      }
      const ObjectId id = ids_[i];
      if (id >= row_of_.size()) {
        row_of_.resize(static_cast<std::size_t>(id) + 1, kNoRow);
      }
      if (row_of_[id] != kNoRow) return false;  // two live rows for one id
      row_of_[id] = i;
    }
    return true;
  }

  /// Column-agreement validator: every column has one entry per row, the
  /// id → row map holds exactly the live rows, and the tombstone count
  /// matches the live column. False fills `why` with the first violation.
  bool CheckColumns(std::string* why) const {
    const std::size_t n = ids_.size();
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      if (keys_[dd].size() != n || los_[dd].size() != n ||
          his_[dd].size() != n) {
        if (why) *why = "crack array: column lengths disagree";
        return false;
      }
    }
    if (live_.size() != n || pending_begin_ > n) {
      if (why) *why = "crack array: live column or pending boundary invalid";
      return false;
    }
    std::size_t dead = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!live_[i]) {
        ++dead;
        continue;
      }
      const ObjectId id = ids_[i];
      if (id >= row_of_.size() || row_of_[id] != i) {
        if (why) *why = "crack array: live row not in the id map";
        return false;
      }
    }
    if (dead != tombstones_) {
      if (why) *why = "crack array: tombstone count disagrees";
      return false;
    }
    return true;
  }

 private:
  /// Algorithm selection is by range length ALONE (never thread count):
  /// long ranges always take the chunked partition, short ones always the
  /// single pass, so a serial and an 8-thread execution of the same query
  /// stream walk through identical physical layouts.
  template <typename Pred>
  std::size_t Partition(std::size_t begin, std::size_t end, int d, Pred pred) {
    const Scalar* keys = keys_[static_cast<std::size_t>(d)].data();
    const auto swap = [this](std::size_t i, std::size_t j) { SwapRows(i, j); };
    if (end - begin >= internal::kChunkedPartitionMin) {
      return ChunkedCrackPartition(keys, begin, end, pred, swap,
                                   &IntraQueryScheduler());
    }
    return CrackPartition(keys, begin, end, pred, swap);
  }

  void SwapRows(std::size_t i, std::size_t j) {
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      std::swap(keys_[dd][i], keys_[dd][j]);
      std::swap(los_[dd][i], los_[dd][j]);
      std::swap(his_[dd][i], his_[dd][j]);
    }
    std::swap(ids_[i], ids_[j]);
    std::swap(live_[i], live_[j]);
    // Only live rows own their id's map entry: a dead row's id may have
    // been re-appended as a fresh live row elsewhere, and that mapping
    // must not be clobbered by moving the stale corpse around.
    if (live_[i]) row_of_[ids_[i]] = i;
    if (live_[j]) row_of_[ids_[j]] = j;
  }

  std::array<std::vector<Scalar>, D> keys_;
  std::array<std::vector<Scalar>, D> los_;
  std::array<std::vector<Scalar>, D> his_;
  std::vector<ObjectId> ids_;
  /// Liveness byte per row (1 = live, 0 = tombstone), co-permuted.
  std::vector<std::uint8_t> live_;
  /// id → live row (`kNoRow` when the id has no live row), maintained
  /// through every swap so `EraseId` is O(1).
  std::vector<std::size_t> row_of_;
  std::size_t tombstones_ = 0;
  /// Rows `[pending_begin_, size())` are the unsorted appended tail.
  std::size_t pending_begin_ = 0;

  /// Pivot-selection scratch, thread-local because `MedianSplit` runs
  /// concurrently on disjoint ranges under the parallel split worklist (a
  /// shared member would race even though the owning index holds its
  /// exclusive lock — the workers all belong to one query).
  static std::vector<Scalar>& MedianScratchTLS() {
    static thread_local std::vector<Scalar> scratch;
    return scratch;
  }
};

}  // namespace quasii

#endif  // QUASII_COMMON_CRACK_ARRAY_H_
