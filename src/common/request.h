#ifndef QUASII_COMMON_REQUEST_H_
#define QUASII_COMMON_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/query.h"
#include "common/query_stats.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// Everything a client can ask an index to do — the single typed vocabulary
/// shared by the wire protocol, the workload recorder, the bench op streams
/// and the in-process executor, so there is exactly one validation and one
/// serialization path no matter how a request arrives.
///
///  - kQuery:    one `Query<D>` (range/point/count/kNN/conjunction);
///  - kJoin:     an index-vs-stream join whose box stream the request OWNS
///               (a serialized request cannot borrow caller memory);
///  - kInsert:   add object `id` with MBB `box`;
///  - kErase:    remove object `id`;
///  - kStats:    merged work counters + live population of the index;
///  - kSnapshot: force a durable snapshot now (admin; needs a server hook);
///  - kPing:     liveness/epoch probe, no work.
enum class RequestKind : std::uint8_t {
  kQuery = 1,
  kJoin = 2,
  kInsert = 3,
  kErase = 4,
  kStats = 5,
  kSnapshot = 6,
  kPing = 7,
};

inline const char* RequestKindName(RequestKind k) {
  switch (k) {
    case RequestKind::kQuery:
      return "query";
    case RequestKind::kJoin:
      return "join";
    case RequestKind::kInsert:
      return "insert";
    case RequestKind::kErase:
      return "erase";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kSnapshot:
      return "snapshot";
    case RequestKind::kPing:
      return "ping";
  }
  return "?";
}

/// Sanity caps applied when parsing untrusted request bytes. Generous —
/// real workloads sit orders of magnitude below — but they turn a hostile
/// length field into a typed parse failure instead of an allocation storm.
inline constexpr std::size_t kMaxRequestJoinStream = std::size_t{1} << 20;
inline constexpr std::size_t kMaxRequestTerms = std::size_t{1} << 16;
inline constexpr std::size_t kMaxRequestK = std::size_t{1} << 20;

/// One request against one index, as a validated sum type. Construction is
/// factory-only, extending `Query<D>`'s `Make*`/`Try*` pattern to mutations
/// and admin ops: `Try*` returns `std::nullopt` on an invalid description
/// (the wire parser's path), `Make*` aborts with a clear message (the
/// in-process caller's path). `Serialize`/`TryParse` round-trip through the
/// `bytes.h` codec; every value a factory accepts re-parses to an equal
/// request, and every byte string `TryParse` rejects is rejected with
/// `std::nullopt`, never UB.
///
/// Reads (`kQuery`/`kJoin`) may additionally be *pinned* to an
/// `ObjectStore::version()` epoch: execution refuses (typed
/// `kEpochMismatch`) unless the store still sits at exactly that mutation
/// epoch, which gives clients snapshot-read semantics without the server
/// retaining historical versions.
template <int D>
class Request {
 public:
  /// A default-constructed request is a valid degenerate query (empty range,
  /// matches nothing) — exists so containers can default-construct and
  /// overwrite, mirroring `Query<D>`.
  Request() = default;

  RequestKind kind() const { return kind_; }
  /// kQuery: the query description (never `QueryType::kJoin` — joins are
  /// their own request kind, with an owned stream).
  const Query<D>& query() const { return query_; }
  /// kJoin: the owned right-hand box stream (pair rights are positions).
  const std::vector<Box<D>>& join_stream() const { return join_stream_; }
  /// kInsert / kErase: the object id.
  ObjectId id() const { return id_; }
  /// kInsert: the object's MBB.
  const Box<D>& box() const { return box_; }
  /// Reads only: the pinned store epoch; 0 means unpinned.
  std::uint64_t pin_epoch() const { return pin_epoch_; }

  bool is_read() const {
    return kind_ == RequestKind::kQuery || kind_ == RequestKind::kJoin ||
           kind_ == RequestKind::kStats || kind_ == RequestKind::kPing;
  }
  bool is_mutation() const {
    return kind_ == RequestKind::kInsert || kind_ == RequestKind::kErase;
  }

  /// Wraps a single-index query. Rejects `QueryType::kJoin` (its stream or
  /// index pointer is borrowed — use `TryStreamJoin`) and non-finite
  /// coordinates (unserializable: the parser would refuse them).
  static std::optional<Request> TryQuery(Query<D> query) {
    switch (query.type()) {
      case QueryType::kRange:
      case QueryType::kCount:
        if (!IsFinite(query.box())) return std::nullopt;
        break;
      case QueryType::kPoint:
      case QueryType::kKNearest:
        if (!IsFinite(query.point())) return std::nullopt;
        break;
      case QueryType::kConjunction:
        for (const ConjunctiveTerm<D>& t : query.terms()) {
          if (!IsFinite(t.box)) return std::nullopt;
        }
        break;
      case QueryType::kJoin:
        return std::nullopt;
    }
    Request r;
    r.kind_ = RequestKind::kQuery;
    r.query_ = std::move(query);
    return r;
  }

  static Request MakeQuery(Query<D> query) {
    auto r = TryQuery(std::move(query));
    if (!r) QueryApiAbort("request cannot carry this query (join or NaN?)");
    return *std::move(r);
  }

  /// Join against an OWNED box stream (the request outlives any borrow).
  /// Rejects non-finite boxes; an empty stream is a valid join matching
  /// nothing.
  static std::optional<Request> TryStreamJoin(std::vector<Box<D>> stream) {
    for (const Box<D>& b : stream) {
      if (!IsFinite(b)) return std::nullopt;
    }
    Request r;
    r.kind_ = RequestKind::kJoin;
    r.join_stream_ = std::move(stream);
    return r;
  }

  static Request MakeStreamJoin(std::vector<Box<D>> stream) {
    auto r = TryStreamJoin(std::move(stream));
    if (!r) QueryApiAbort("stream join requires finite boxes");
    return *std::move(r);
  }

  /// Rejects an empty or non-finite box — `SpatialIndex::Insert` would
  /// refuse the former anyway; failing at construction keeps "accepted
  /// request" meaning "well-formed request".
  static std::optional<Request> TryInsert(ObjectId id, const Box<D>& box) {
    if (box.IsEmpty() || !IsFinite(box)) return std::nullopt;
    Request r;
    r.kind_ = RequestKind::kInsert;
    r.id_ = id;
    r.box_ = box;
    return r;
  }

  static Request MakeInsert(ObjectId id, const Box<D>& box) {
    auto r = TryInsert(id, box);
    if (!r) QueryApiAbort("insert requires a non-empty finite box");
    return *std::move(r);
  }

  static Request MakeErase(ObjectId id) {
    Request r;
    r.kind_ = RequestKind::kErase;
    r.id_ = id;
    return r;
  }

  static Request MakeStats() {
    Request r;
    r.kind_ = RequestKind::kStats;
    return r;
  }

  static Request MakeSnapshot() {
    Request r;
    r.kind_ = RequestKind::kSnapshot;
    return r;
  }

  static Request MakePing() {
    Request r;
    r.kind_ = RequestKind::kPing;
    return r;
  }

  /// Pins a result-bearing read (`kQuery`/`kJoin`) to store epoch `epoch`
  /// (non-zero). Returns false — request unchanged — for any other kind:
  /// mutations move the epoch themselves and admin ops have no snapshot to
  /// protect.
  bool TryPinEpoch(std::uint64_t epoch) {
    if (epoch == 0) return false;
    if (kind_ != RequestKind::kQuery && kind_ != RequestKind::kJoin) {
      return false;
    }
    pin_epoch_ = epoch;
    return true;
  }

  /// Appends the canonical byte encoding:
  ///
  ///   [u8 kind] [u64 pin_epoch] [body]
  ///   kQuery body:  [u8 qtag] + per-type payload (boxes/points via
  ///                 `PutBox`/`F`, predicates as u8, k as u64, terms as
  ///                 u32 count + entries)
  ///   kJoin body:   [u32 n] n × box
  ///   kInsert body: [u32 id] [box]     kErase body: [u32 id]
  ///   admin bodies: empty
  void Serialize(ByteWriter* w) const {
    w->U8(static_cast<std::uint8_t>(kind_));
    w->U64(pin_epoch_);
    switch (kind_) {
      case RequestKind::kQuery:
        SerializeQuery(w);
        break;
      case RequestKind::kJoin:
        w->U32(static_cast<std::uint32_t>(join_stream_.size()));
        for (const Box<D>& b : join_stream_) PutBox<D>(w, b);
        break;
      case RequestKind::kInsert:
        w->U32(id_);
        PutBox<D>(w, box_);
        break;
      case RequestKind::kErase:
        w->U32(id_);
        break;
      case RequestKind::kStats:
      case RequestKind::kSnapshot:
      case RequestKind::kPing:
        break;
    }
  }

  /// Decodes one request from `r`, validating through the `Try*` factories:
  /// unknown kinds/tags/predicates, non-finite coordinates, k == 0, empty
  /// plans, hostile counts and truncation all yield `std::nullopt` with `r`
  /// in its sticky-failed state or mid-buffer — callers that require exact
  /// framing check `r->ok()` and `r->remaining()`.
  static std::optional<Request> TryParse(ByteReader* r) {
    const std::uint8_t kind_byte = r->U8();
    const std::uint64_t pin = r->U64();
    if (!r->ok()) return std::nullopt;
    std::optional<Request> out;
    switch (kind_byte) {
      case static_cast<std::uint8_t>(RequestKind::kQuery):
        out = ParseQuery(r);
        break;
      case static_cast<std::uint8_t>(RequestKind::kJoin): {
        const std::uint32_t n = r->U32();
        if (!r->ok() || n > kMaxRequestJoinStream ||
            n > r->remaining() / (2 * D * sizeof(Scalar))) {
          return std::nullopt;
        }
        std::vector<Box<D>> stream;
        stream.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) stream.push_back(GetBox<D>(r));
        if (!r->ok()) return std::nullopt;
        out = TryStreamJoin(std::move(stream));
        break;
      }
      case static_cast<std::uint8_t>(RequestKind::kInsert): {
        const ObjectId id = r->U32();
        const Box<D> box = GetBox<D>(r);
        if (!r->ok()) return std::nullopt;
        out = TryInsert(id, box);
        break;
      }
      case static_cast<std::uint8_t>(RequestKind::kErase): {
        const ObjectId id = r->U32();
        if (!r->ok()) return std::nullopt;
        out = MakeErase(id);
        break;
      }
      case static_cast<std::uint8_t>(RequestKind::kStats):
        out = MakeStats();
        break;
      case static_cast<std::uint8_t>(RequestKind::kSnapshot):
        out = MakeSnapshot();
        break;
      case static_cast<std::uint8_t>(RequestKind::kPing):
        out = MakePing();
        break;
      default:
        return std::nullopt;
    }
    if (!out) return std::nullopt;
    if (pin != 0 && !out->TryPinEpoch(pin)) return std::nullopt;
    return out;
  }

  /// Whole-buffer convenience: the encoding must consume `bytes` exactly.
  static std::optional<Request> TryParse(std::string_view bytes) {
    ByteReader r(bytes);
    auto out = TryParse(&r);
    if (!out || !r.ok() || r.remaining() != 0) return std::nullopt;
    return out;
  }

 private:
  // Wire tags for the query sum inside a kQuery body. Fixed independent of
  // the in-memory `QueryType` enum order so the wire format cannot drift
  // with a refactor.
  static constexpr std::uint8_t kTagRange = 1;
  static constexpr std::uint8_t kTagPoint = 2;
  static constexpr std::uint8_t kTagCount = 3;
  static constexpr std::uint8_t kTagKNearest = 4;
  static constexpr std::uint8_t kTagConjunction = 5;

  static void PutPoint(ByteWriter* w, const Point<D>& p) {
    for (int d = 0; d < D; ++d) w->F(p[d]);
  }

  static Point<D> GetPoint(ByteReader* r) {
    Point<D> p;
    for (int d = 0; d < D; ++d) p[d] = r->F();
    return p;
  }

  void SerializeQuery(ByteWriter* w) const {
    switch (query_.type()) {
      case QueryType::kRange:
        w->U8(kTagRange);
        w->U8(static_cast<std::uint8_t>(query_.predicate()));
        PutBox<D>(w, query_.box());
        break;
      case QueryType::kPoint:
        w->U8(kTagPoint);
        PutPoint(w, query_.point());
        break;
      case QueryType::kCount:
        w->U8(kTagCount);
        w->U8(static_cast<std::uint8_t>(query_.predicate()));
        PutBox<D>(w, query_.box());
        break;
      case QueryType::kKNearest:
        w->U8(kTagKNearest);
        PutPoint(w, query_.point());
        w->U64(query_.k());
        break;
      case QueryType::kConjunction: {
        w->U8(kTagConjunction);
        const std::vector<ConjunctiveTerm<D>>& terms = query_.terms();
        w->U32(static_cast<std::uint32_t>(terms.size()));
        for (const ConjunctiveTerm<D>& t : terms) {
          w->U8(static_cast<std::uint8_t>(t.predicate));
          PutBox<D>(w, t.box);
        }
        break;
      }
      case QueryType::kJoin:
        // Unreachable: TryQuery refuses joins.
        break;
    }
  }

  static std::optional<RangePredicate> ParsePredicate(ByteReader* r) {
    const std::uint8_t p = r->U8();
    if (!r->ok() || p > static_cast<std::uint8_t>(RangePredicate::kContainedBy))
      return std::nullopt;
    return static_cast<RangePredicate>(p);
  }

  static std::optional<Request> ParseQuery(ByteReader* r) {
    const std::uint8_t tag = r->U8();
    if (!r->ok()) return std::nullopt;
    std::optional<Query<D>> q;
    switch (tag) {
      case kTagRange: {
        const auto pred = ParsePredicate(r);
        const Box<D> box = GetBox<D>(r);
        if (!pred || !r->ok()) return std::nullopt;
        q = Query<D>::TryRange(box, *pred);
        break;
      }
      case kTagPoint: {
        const Point<D> p = GetPoint(r);
        if (!r->ok()) return std::nullopt;
        q = Query<D>::TryPoint(p);
        break;
      }
      case kTagCount: {
        const auto pred = ParsePredicate(r);
        const Box<D> box = GetBox<D>(r);
        if (!pred || !r->ok()) return std::nullopt;
        q = Query<D>::TryCount(box, *pred);
        break;
      }
      case kTagKNearest: {
        const Point<D> p = GetPoint(r);
        const std::uint64_t k = r->U64();
        if (!r->ok() || k > kMaxRequestK) return std::nullopt;
        q = Query<D>::TryKNearest(p, static_cast<std::size_t>(k));
        break;
      }
      case kTagConjunction: {
        const std::uint32_t n = r->U32();
        constexpr std::size_t kTermBytes = 1 + 2 * D * sizeof(Scalar);
        if (!r->ok() || n == 0 || n > kMaxRequestTerms ||
            n > r->remaining() / kTermBytes) {
          return std::nullopt;
        }
        std::vector<ConjunctiveTerm<D>> terms;
        terms.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          ConjunctiveTerm<D> t;
          const auto pred = ParsePredicate(r);
          t.box = GetBox<D>(r);
          if (!pred || !r->ok()) return std::nullopt;
          t.predicate = *pred;
          terms.push_back(t);
        }
        q = Query<D>::TryConjunction(std::move(terms));
        break;
      }
      default:
        return std::nullopt;
    }
    if (!q) return std::nullopt;
    return TryQuery(*std::move(q));
  }

  RequestKind kind_ = RequestKind::kQuery;
  Query<D> query_;
  std::vector<Box<D>> join_stream_;
  ObjectId id_ = 0;
  Box<D> box_;
  std::uint64_t pin_epoch_ = 0;
};

using Request2 = Request<2>;
using Request3 = Request<3>;

/// How a request concluded. Everything except `kOk` carries an empty body;
/// the status byte IS the typed error the wire contract promises for every
/// malformed or refused input.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,     ///< admission queue full; retry later
  kMalformed = 2,      ///< frame was sound but the request bytes were not
  kEpochMismatch = 3,  ///< pinned epoch no longer current (`epoch` = now)
  kUnsupported = 4,    ///< request valid, operation not available here
  kFailed = 5,         ///< operation attempted and failed (e.g. I/O)
};

inline const char* ResponseStatusName(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kOverloaded:
      return "overloaded";
    case ResponseStatus::kMalformed:
      return "malformed";
    case ResponseStatus::kEpochMismatch:
      return "epoch_mismatch";
    case ResponseStatus::kUnsupported:
      return "unsupported";
    case ResponseStatus::kFailed:
      return "failed";
  }
  return "?";
}

/// Parse-time cap mirroring `kMaxRequestJoinStream`: no response to a
/// request within the caps can exceed the id count of a full scan of the
/// largest population a u32 id space addresses, but a hostile length field
/// must still die in the parser, bounded by the actual bytes present.
template <int D>
struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  RequestKind kind = RequestKind::kPing;  ///< echo of the request kind
  std::uint64_t epoch = 0;  ///< store version observed at completion
  std::uint64_t count = 0;  ///< matches (kQuery) or pairs (kJoin)
  std::vector<ObjectId> ids;         ///< kQuery (empty for kCount queries)
  std::vector<IdPair> pairs;         ///< kJoin
  bool accepted = false;             ///< kInsert / kErase store verdict
  QueryStats stats;                  ///< kStats: merged work counters
  std::uint64_t live_count = 0;      ///< kStats: live population
  std::uint64_t snapshot_lsn = 0;    ///< kSnapshot: captured epoch

  /// Appends the canonical encoding: [u8 status][u8 kind][u64 epoch], then
  /// a kind-specific body only when `status == kOk`.
  void Serialize(ByteWriter* w) const {
    w->U8(static_cast<std::uint8_t>(status));
    w->U8(static_cast<std::uint8_t>(kind));
    w->U64(epoch);
    if (status != ResponseStatus::kOk) return;
    switch (kind) {
      case RequestKind::kQuery:
        w->U64(count);
        w->U32(static_cast<std::uint32_t>(ids.size()));
        for (const ObjectId id : ids) w->U32(id);
        break;
      case RequestKind::kJoin:
        w->U64(count);
        w->U32(static_cast<std::uint32_t>(pairs.size()));
        for (const IdPair& p : pairs) {
          w->U32(p.first);
          w->U32(p.second);
        }
        break;
      case RequestKind::kInsert:
      case RequestKind::kErase:
        w->U8(accepted ? 1 : 0);
        break;
      case RequestKind::kStats:
        w->U64(stats.objects_tested);
        w->U64(stats.partitions_visited);
        w->U64(stats.cracks);
        w->U64(stats.objects_moved);
        w->U64(stats.duplicates_removed);
        w->U64(stats.intervals);
        w->U64(stats.bytes_scanned);
        w->U64(live_count);
        break;
      case RequestKind::kSnapshot:
        w->U64(snapshot_lsn);
        break;
      case RequestKind::kPing:
        break;
    }
  }

  static std::optional<Response> TryParse(ByteReader* r) {
    Response out;
    const std::uint8_t status_byte = r->U8();
    const std::uint8_t kind_byte = r->U8();
    out.epoch = r->U64();
    if (!r->ok() ||
        status_byte > static_cast<std::uint8_t>(ResponseStatus::kFailed) ||
        kind_byte < static_cast<std::uint8_t>(RequestKind::kQuery) ||
        kind_byte > static_cast<std::uint8_t>(RequestKind::kPing)) {
      return std::nullopt;
    }
    out.status = static_cast<ResponseStatus>(status_byte);
    out.kind = static_cast<RequestKind>(kind_byte);
    if (out.status != ResponseStatus::kOk) return out;
    switch (out.kind) {
      case RequestKind::kQuery: {
        out.count = r->U64();
        const std::uint32_t n = r->U32();
        if (!r->ok() || n > r->remaining() / 4) return std::nullopt;
        out.ids.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) out.ids.push_back(r->U32());
        break;
      }
      case RequestKind::kJoin: {
        out.count = r->U64();
        const std::uint32_t n = r->U32();
        if (!r->ok() || n > r->remaining() / 8) return std::nullopt;
        out.pairs.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          const ObjectId left = r->U32();
          const ObjectId right = r->U32();
          out.pairs.emplace_back(left, right);
        }
        break;
      }
      case RequestKind::kInsert:
      case RequestKind::kErase:
        out.accepted = r->U8() != 0;
        break;
      case RequestKind::kStats:
        out.stats.objects_tested = r->U64();
        out.stats.partitions_visited = r->U64();
        out.stats.cracks = r->U64();
        out.stats.objects_moved = r->U64();
        out.stats.duplicates_removed = r->U64();
        out.stats.intervals = r->U64();
        out.stats.bytes_scanned = r->U64();
        out.live_count = r->U64();
        break;
      case RequestKind::kSnapshot:
        out.snapshot_lsn = r->U64();
        break;
      case RequestKind::kPing:
        break;
    }
    if (!r->ok()) return std::nullopt;
    return out;
  }

  static std::optional<Response> TryParse(std::string_view bytes) {
    ByteReader r(bytes);
    auto out = TryParse(&r);
    if (!out || !r.ok() || r.remaining() != 0) return std::nullopt;
    return out;
  }
};

using Response2 = Response<2>;
using Response3 = Response<3>;

/// Optional capabilities the execution environment grants a request —
/// everything `ExecuteRequest` cannot do with just the index. Absent hooks
/// make the corresponding admin op answer `kUnsupported`.
template <int D>
struct RequestHooks {
  /// kSnapshot handler: capture a durable snapshot of `index`, fill the
  /// captured LSN, return success. Wired to `persist::WriteSnapshot` by the
  /// server; absent in bare in-process replay unless the caller provides it.
  std::function<bool(SpatialIndex<D>&, std::uint64_t*)> snapshot_now;
};

/// The single execution entry point behind every transport: the server's
/// serial path, in-process replay, and tests all funnel here, so a request
/// means the same thing no matter how it arrived. Not thread-safe with
/// respect to `index` stats/epoch reads — callers serialize requests per
/// index (the server's exec loop is single-threaded; batched reads bypass
/// this function only for `kQuery`, whose semantics `BatchExecutor`
/// preserves exactly on converged structure).
template <int D>
Response<D> ExecuteRequest(SpatialIndex<D>* index, const Request<D>& req,
                           const RequestHooks<D>* hooks = nullptr) {
  Response<D> resp;
  resp.kind = req.kind();
  if (req.pin_epoch() != 0 &&
      index->store().version() != req.pin_epoch()) {
    resp.status = ResponseStatus::kEpochMismatch;
    resp.epoch = index->store().version();
    return resp;
  }
  switch (req.kind()) {
    case RequestKind::kQuery:
      if (req.query().type() == QueryType::kCount) {
        CountSink sink;
        index->Execute(req.query(), sink);
        resp.count = sink.count();
      } else {
        VectorSink sink(&resp.ids);
        index->Execute(req.query(), sink);
        resp.count = resp.ids.size();
      }
      break;
    case RequestKind::kJoin: {
      const Query<D> join = Query<D>::MakeJoin(req.join_stream());
      VectorPairSink sink(&resp.pairs);
      index->Execute(join, sink);
      resp.count = resp.pairs.size();
      break;
    }
    case RequestKind::kInsert:
      resp.accepted = index->Insert(req.id(), req.box());
      break;
    case RequestKind::kErase:
      resp.accepted = index->Erase(req.id());
      break;
    case RequestKind::kStats:
      resp.stats = index->stats();
      resp.live_count = index->store().live_count();
      break;
    case RequestKind::kSnapshot: {
      if (hooks == nullptr || !hooks->snapshot_now) {
        resp.status = ResponseStatus::kUnsupported;
        break;
      }
      std::uint64_t lsn = 0;
      if (!hooks->snapshot_now(*index, &lsn)) {
        resp.status = ResponseStatus::kFailed;
        break;
      }
      resp.snapshot_lsn = lsn;
      break;
    }
    case RequestKind::kPing:
      break;
  }
  resp.epoch = index->store().version();
  return resp;
}

/// FNV-1a fold step — the checksum primitive shared by the replay
/// determinism machinery (response-stream checksums client-side, final
/// index-content checksums server-side).
inline std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

inline constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

/// Folds a byte string into a running FNV-1a hash.
inline std::uint64_t FnvBytes(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h = FnvMix(h, static_cast<std::uint8_t>(c));
  }
  return h;
}

/// Deterministic digest of an index's observable content: the store's
/// mutation epoch plus every live (id, box) pair in id order. Two indexes
/// that processed the same accepted mutation sequence agree bit-for-bit,
/// which is the "final index checksum" the replay gate compares.
template <int D>
std::uint64_t IndexContentChecksum(const SpatialIndex<D>& index) {
  const ObjectStore<D>& store = index.store();
  std::uint64_t h = kFnvBasis;
  h = FnvMix(h, store.version());
  h = FnvMix(h, store.live_count());
  store.ForEachLive([&h](ObjectId id, const Box<D>& b) {
    h = FnvMix(h, id);
    for (int d = 0; d < D; ++d) {
      std::uint32_t lo_bits, hi_bits;
      static_assert(sizeof(Scalar) == 4, "checksum assumes 32-bit Scalar");
      const Scalar lo = b.lo[d];
      const Scalar hi = b.hi[d];
      std::memcpy(&lo_bits, &lo, 4);
      std::memcpy(&hi_bits, &hi, 4);
      h = FnvMix(h, (static_cast<std::uint64_t>(lo_bits) << 32) | hi_bits);
    }
  });
  return h;
}

}  // namespace quasii

#endif  // QUASII_COMMON_REQUEST_H_
