#ifndef QUASII_COMMON_MUTATION_OVERFLOW_H_
#define QUASII_COMMON_MUTATION_OVERFLOW_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/bytes.h"
#include "common/object_store.h"
#include "common/query.h"
#include "common/query_stats.h"
#include "geometry/box.h"

namespace quasii {

/// The mutation-overflow state shared by the roster indexes whose primary
/// structure cannot absorb updates in place (Grid's CSR cells, the packed
/// R-Tree, SFC's sorted code array, SFCracker's boundary-pinned cracked
/// array):
///  - inserts join a *pending* list every query scans exhaustively;
///  - erases of pending ids remove them physically (O(1) membership test +
///    swap-pop), erases of built ids flip a per-id *dead* bit the primary
///    scans skip — per built copy, so a stale copy stays dead even when its
///    id is later re-inserted (into pending);
///  - `NeedsRebuild` trips once either side stops being a rounding error,
///    at which point the owner rebuilds its primary structure from the live
///    store and calls `Reset`.
template <int D>
class MutationOverflow {
 public:
  /// Called from the owner's (re)build: every live object is in the
  /// primary structure now. `slots` is the store's id bound at build time;
  /// only ids below it can carry a dead bit (younger ids are pending).
  void Reset(std::size_t slots) {
    pending_.clear();
    std::fill(pending_pos_.begin(), pending_pos_.end(), kNone);
    dead_.assign(slots, 0);
    dead_count_ = 0;
  }

  void AddPending(ObjectId id) {
    if (id >= pending_pos_.size()) {
      pending_pos_.resize(static_cast<std::size_t>(id) + 1, kNone);
    }
    pending_pos_[id] = pending_.size();
    pending_.push_back(id);
  }

  /// Routes an erase of a live id: pending ids are removed physically
  /// (O(1) swap-pop via the position map), built ids are tombstoned.
  void Erase(ObjectId id) {
    if (id < pending_pos_.size() && pending_pos_[id] != kNone) {
      const std::size_t pos = pending_pos_[id];
      pending_pos_[id] = kNone;
      const ObjectId moved = pending_.back();
      pending_.pop_back();
      if (pos < pending_.size()) {
        pending_[pos] = moved;
        pending_pos_[moved] = pos;
      }
      return;
    }
    if (id < dead_.size()) {
      dead_[id] = 1;
      ++dead_count_;
    }
  }

  /// Whether built id `id` is tombstoned. Only valid for ids placed in the
  /// primary structure at the last build (all below `Reset`'s `slots`).
  bool dead(ObjectId id) const { return dead_[id] != 0; }

  const std::vector<ObjectId>& pending() const { return pending_; }
  std::size_t dead_count() const { return dead_count_; }

  /// Rebuild once the pending list or the dead fraction outgrows its
  /// threshold.
  bool NeedsRebuild(std::size_t live_count) const {
    return pending_.size() > kSlack + live_count / 8 ||
           (dead_count_ > kSlack && dead_count_ * 4 > live_count);
  }

  /// Exhaustive predicate scan of the pending list (its ids are all live —
  /// erases remove them physically), the per-query tail of every owner's
  /// `ExecuteBox`.
  void ScanPending(const ObjectStore<D>& store, const Box<D>& q,
                   RangePredicate predicate, MatchEmitter* emit,
                   QueryStats* stats) const {
    if (pending_.empty()) return;
    ++stats->partitions_visited;
    stats->objects_tested += pending_.size();
    for (const ObjectId id : pending_) {
      if (MatchesPredicate(store.box(id), q, predicate)) emit->Add(id);
    }
  }

  /// Snapshot serialization: the pending list and the dead bitmap (the
  /// position map and dead count are derived on decode).
  void EncodeTo(ByteWriter* w) const {
    w->U64(pending_.size());
    for (const ObjectId id : pending_) w->U32(id);
    w->U64(dead_.size());
    w->Bytes(dead_.data(), dead_.size());
  }

  bool DecodeFrom(ByteReader* r) {
    pending_.clear();
    std::fill(pending_pos_.begin(), pending_pos_.end(), kNone);
    const std::uint64_t n_pending = r->U64();
    if (!r->ok() || n_pending > r->remaining() / 4) return false;
    for (std::uint64_t i = 0; i < n_pending; ++i) {
      const ObjectId id = r->U32();
      if (id < pending_pos_.size() && pending_pos_[id] != kNone) return false;
      AddPending(id);
    }
    const std::uint64_t n_dead = r->U64();
    if (!r->ok() || n_dead > r->remaining()) return false;
    dead_.resize(static_cast<std::size_t>(n_dead));
    if (n_dead > 0 && !r->Bytes(dead_.data(), dead_.size())) return false;
    dead_count_ = 0;
    for (const std::uint8_t d : dead_) dead_count_ += d != 0;
    return r->ok();
  }

 private:
  static constexpr std::size_t kSlack = 64;
  static constexpr std::size_t kNone =
      std::numeric_limits<std::size_t>::max();

  std::vector<ObjectId> pending_;
  /// id → its position in `pending_` (`kNone` when not pending), so erase
  /// routing and removal are both O(1).
  std::vector<std::size_t> pending_pos_;
  std::vector<std::uint8_t> dead_;
  std::size_t dead_count_ = 0;
};

}  // namespace quasii

#endif  // QUASII_COMMON_MUTATION_OVERFLOW_H_
