#ifndef QUASII_COMMON_DATASET_H_
#define QUASII_COMMON_DATASET_H_

#include <vector>

#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// A dataset is simply the vector of object MBBs; an object's id is its
/// position in this vector. All indexes take a `const Dataset&` and never
/// mutate it — incremental indexes copy it into their own reorganizable
/// entry array.
template <int D>
using Dataset = std::vector<Box<D>>;

using Dataset2 = Dataset<2>;
using Dataset3 = Dataset<3>;

/// Builds the `Entry` array (box + id) an incremental index reorganizes.
template <int D>
std::vector<Entry<D>> MakeEntries(const Dataset<D>& data) {
  std::vector<Entry<D>> entries;
  entries.reserve(data.size());
  for (ObjectId i = 0; i < data.size(); ++i) {
    entries.push_back(Entry<D>{data[i], i});
  }
  return entries;
}

/// The MBB of the whole dataset (the "universe" as seen by the indexes).
template <int D>
Box<D> BoundingBoxOf(const Dataset<D>& data) {
  Box<D> mbb = Box<D>::Empty();
  for (const Box<D>& b : data) mbb.ExpandToInclude(b);
  return mbb;
}

/// Per-dimension maximum object extent, used by every index that relies on
/// the query-extension technique [Stefanakis et al., 40].
template <int D>
Point<D> MaxExtents(const Dataset<D>& data) {
  Point<D> ext{};
  for (const Box<D>& b : data) {
    for (int d = 0; d < D; ++d) {
      ext[d] = std::max(ext[d], b.Extent(d));
    }
  }
  return ext;
}

}  // namespace quasii

#endif  // QUASII_COMMON_DATASET_H_
