#ifndef QUASII_COMMON_BYTES_H_
#define QUASII_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "geometry/box.h"
#include "geometry/point.h"

namespace quasii {

/// Append-only binary encoder into a caller-owned string. Fixed-width
/// little-endian integers and raw `Scalar` bits — the codec behind every
/// persisted artifact (snapshot payloads, WAL records, per-index structure
/// blobs), so readers and writers cannot drift apart on framing.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void U32(std::uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->append(buf, 4);
  }

  void U64(std::uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->append(buf, 8);
  }

  void F(Scalar v) {
    char buf[sizeof(Scalar)];
    std::memcpy(buf, &v, sizeof(Scalar));
    out_->append(buf, sizeof(Scalar));
  }

  void Bytes(const void* data, std::size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }

  /// Length-prefixed string (u64 length + raw bytes).
  void Str(std::string_view s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }

  std::string* out() { return out_; }

 private:
  std::string* out_;
};

/// Bounds-checked binary decoder over a byte span. Every read past the end
/// sets a sticky failure flag and returns zeros instead of touching memory —
/// callers decode an entire section and test `ok()` once, so truncated or
/// corrupt input degrades to a typed error, never UB.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : p_(data), end_(data + size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(*p_++);
  }

  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v;
    std::memcpy(&v, p_, 4);
    p_ += 4;
    return v;
  }

  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v;
    std::memcpy(&v, p_, 8);
    p_ += 8;
    return v;
  }

  Scalar F() {
    if (!Need(sizeof(Scalar))) return 0;
    Scalar v;
    std::memcpy(&v, p_, sizeof(Scalar));
    p_ += sizeof(Scalar);
    return v;
  }

  bool Bytes(void* dst, std::size_t n) {
    if (!Need(n)) return false;
    std::memcpy(dst, p_, n);
    p_ += n;
    return true;
  }

  /// Counterpart of `ByteWriter::Str`; empty (and `ok() == false`) on a
  /// length that overruns the remaining input.
  std::string Str() {
    const std::uint64_t n = U64();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(p_, static_cast<std::size_t>(n));
    p_ += n;
    return s;
  }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

template <int D>
void PutBox(ByteWriter* w, const Box<D>& b) {
  for (int d = 0; d < D; ++d) w->F(b.lo[d]);
  for (int d = 0; d < D; ++d) w->F(b.hi[d]);
}

template <int D>
Box<D> GetBox(ByteReader* r) {
  Box<D> b;
  for (int d = 0; d < D; ++d) b.lo[d] = r->F();
  for (int d = 0; d < D; ++d) b.hi[d] = r->F();
  return b;
}

}  // namespace quasii

#endif  // QUASII_COMMON_BYTES_H_
