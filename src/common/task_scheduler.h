#ifndef QUASII_COMMON_TASK_SCHEDULER_H_
#define QUASII_COMMON_TASK_SCHEDULER_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/query_stats.h"

namespace quasii {

/// Work-stealing task scheduler for *intra*-query parallelism — the second
/// concurrency entry point of the execution layer, complementing
/// `ThreadPool` (which parallelizes *across* queries and stays strictly
/// FIFO for the server's determinism contract).
///
/// Design:
///  - one deque per worker plus one shared injection deque for external
///    submitters; a worker pops its own deque LIFO (cache-hot subtasks
///    first) and steals FIFO from the injection deque or a sibling's deque
///    when its own runs dry;
///  - nested submission never deadlocks: `Group::Wait` *helps* — while its
///    tasks are outstanding the waiter pops and executes runnable tasks
///    (its own group's or anyone's) instead of blocking, so a worker that
///    fans out children makes progress even with a single worker thread,
///    and a scheduler with zero workers degrades to inline execution;
///  - all queues hang off one mutex. At morsel granularity (thousands of
///    rows per task) the lock is nowhere near the critical path, and the
///    single-mutex design keeps the helping/stealing state machine simple
///    enough to reason about under TSan.
///
/// Worker threads bind stats slots from the TOP of the `kStatsSlots` range
/// (slot `kStatsSlots - 1 - i` for worker `i`), mirroring `ThreadPool`
/// which binds from the bottom (1..n), so the two pools' workers land in
/// disjoint shards in every realistic configuration. Parallel tasks spawned
/// by the index code never write index counters directly — they accumulate
/// into task-local `QueryStats` merged by the submitting thread — so the
/// slot binding is a safety net, not a correctness requirement.
class TaskScheduler {
 public:
  /// Utilization counters, cumulative since construction. `executed` counts
  /// tasks run by worker threads, `helped` tasks run by a waiter inside
  /// `Group::Wait`, `inlined` tasks run immediately because the scheduler
  /// has no workers, and `stolen` the subset of executed/helped tasks taken
  /// from another worker's deque.
  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t helped = 0;
    std::uint64_t inlined = 0;
    std::uint64_t stolen = 0;
  };

  /// Spawns `workers` worker threads (clamped to [0, kMaxWorkers]). Zero
  /// workers is a valid, useful configuration: every task runs inline on
  /// the submitting thread, which is the serial-execution mode the engine
  /// defaults to.
  explicit TaskScheduler(int workers) {
    const int n = std::clamp(workers, 0, kMaxWorkers);
    queues_.resize(static_cast<std::size_t>(n) + 1);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  /// Joining requires every submitted task to have completed; `Group` is a
  /// scoped handle whose destructor waits, so by construction no task can
  /// outlive its scheduler.
  ~TaskScheduler() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int workers() const { return static_cast<int>(workers_.size()); }

  /// Whether submitting tasks can actually fan out. False ⇒ `Group::Run`
  /// executes inline and `ParallelFor` degenerates to one serial call.
  bool parallel() const { return !workers_.empty(); }

  Stats stats() const {
    Stats s;
    s.executed = executed_.load(std::memory_order_relaxed);
    s.helped = helped_.load(std::memory_order_relaxed);
    s.inlined = inlined_.load(std::memory_order_relaxed);
    s.stolen = stolen_.load(std::memory_order_relaxed);
    return s;
  }

  /// A set of tasks fanned out together. Scoped: the destructor waits, so
  /// a `Group` on the stack can never leak running tasks into code that
  /// assumes they finished.
  class Group {
   public:
    explicit Group(TaskScheduler* s) : s_(s) {}
    ~Group() { Wait(); }

    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    /// Submits `fn`. On a scheduler with no workers the task runs inline,
    /// immediately, on this thread — same semantics, zero queueing.
    void Run(std::function<void()> fn) {
      if (!s_->parallel()) {
        s_->inlined_.fetch_add(1, std::memory_order_relaxed);
        fn();
        return;
      }
      const int self = TlsWorkerIndex(s_);
      {
        std::unique_lock<std::mutex> lock(s_->mu_);
        ++pending_;
        // A worker pushes to the BACK of its own deque (popped LIFO by
        // itself, stolen FIFO by siblings); external threads inject into
        // the shared deque 0.
        s_->queues_[static_cast<std::size_t>(self) + 1].push_back(
            Task{std::move(fn), this});
      }
      s_->cv_work_.notify_one();
    }

    /// Blocks until every task `Run` on this group has finished — by
    /// *helping*: while tasks (this group's or any other's) are runnable,
    /// the waiter executes them instead of sleeping. This is what makes
    /// nested fan-out deadlock-free at any pool size.
    void Wait() {
      if (!s_->parallel()) return;
      std::unique_lock<std::mutex> lock(s_->mu_);
      while (pending_ > 0) {
        Task task;
        bool stolen = false;
        if (s_->PopAnyLocked(TlsWorkerIndex(s_), &task, &stolen)) {
          lock.unlock();
          task.fn();
          lock.lock();
          s_->helped_.fetch_add(1, std::memory_order_relaxed);
          if (stolen) s_->stolen_.fetch_add(1, std::memory_order_relaxed);
          s_->FinishLocked(task.group);
        } else {
          s_->cv_done_.wait(lock);
        }
      }
    }

   private:
    friend class TaskScheduler;
    TaskScheduler* s_;
    std::size_t pending_ = 0;  // guarded by s_->mu_
  };

  /// `ThreadPool` binds slots 1..n from the bottom; staying out of its way
  /// caps this scheduler's workers so the top-down slots 63, 62, … never
  /// collide with the serving pool's in any realistic configuration.
  static constexpr int kMaxWorkers = kStatsSlots / 2;

 private:
  struct Task {
    std::function<void()> fn;
    Group* group = nullptr;
  };

  /// Pops a runnable task: own deque back first (LIFO), then the shared
  /// injection deque, then siblings' fronts (a steal). `self` is the
  /// caller's worker index or -1 for non-workers. Caller holds `mu_`.
  bool PopAnyLocked(int self, Task* out, bool* stolen) {
    *stolen = false;
    const std::size_t own = static_cast<std::size_t>(self) + 1;
    if (self >= 0 && !queues_[own].empty()) {
      *out = std::move(queues_[own].back());
      queues_[own].pop_back();
      return true;
    }
    if (!queues_[0].empty()) {
      *out = std::move(queues_[0].front());
      queues_[0].pop_front();
      return true;
    }
    for (std::size_t q = 1; q < queues_.size(); ++q) {
      if (q == own || queues_[q].empty()) continue;
      *out = std::move(queues_[q].front());
      queues_[q].pop_front();
      *stolen = true;
      return true;
    }
    return false;
  }

  /// Completion bookkeeping for one finished task. Caller holds `mu_`.
  void FinishLocked(Group* g) {
    if (--g->pending_ == 0) cv_done_.notify_all();
  }

  void WorkerLoop(int index) {
    ScopedStatsSlot bind(std::max(1, kStatsSlots - 1 - index));
    TlsWorkerBinding binding(this, index);
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      Task task;
      bool stolen = false;
      if (PopAnyLocked(index, &task, &stolen)) {
        lock.unlock();
        task.fn();
        lock.lock();
        executed_.fetch_add(1, std::memory_order_relaxed);
        if (stolen) stolen_.fetch_add(1, std::memory_order_relaxed);
        FinishLocked(task.group);
        continue;
      }
      if (stop_) return;
      cv_work_.wait(lock);
    }
  }

  /// Thread → (scheduler, worker index) binding so `Run`/`Wait` know which
  /// deque this thread owns. Schedulers are plural (tests build their own),
  /// so the TLS records which scheduler the binding belongs to.
  struct TlsSlot {
    const TaskScheduler* sched = nullptr;
    int index = -1;
  };
  static TlsSlot& Tls() {
    static thread_local TlsSlot slot;
    return slot;
  }
  static int TlsWorkerIndex(const TaskScheduler* s) {
    const TlsSlot& t = Tls();
    return t.sched == s ? t.index : -1;
  }
  struct TlsWorkerBinding {
    TlsWorkerBinding(const TaskScheduler* s, int index) {
      Tls() = TlsSlot{s, index};
    }
    ~TlsWorkerBinding() { Tls() = TlsSlot{}; }
  };

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::deque<Task>> queues_;  // [0] injection, [1+i] worker i
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> helped_{0};
  std::atomic<std::uint64_t> inlined_{0};
  std::atomic<std::uint64_t> stolen_{0};
};

/// Morsel-parallel loop: cuts [begin, end) into contiguous morsels of
/// `grain` elements (the last may be shorter) and runs `body(b, e)` for
/// each. Morsel boundaries are a pure function of the range and `grain` —
/// never of the worker count — so any code whose OUTPUT depends on the cut
/// points (the chunked partition in crack_array.h) produces identical
/// results at every thread count, including zero workers where the whole
/// loop runs serially in morsel order on the caller.
template <typename Body>
void ParallelFor(TaskScheduler* s, std::size_t begin, std::size_t end,
                 std::size_t grain, const Body& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  if (!s->parallel() || end - begin <= grain) {
    for (std::size_t b = begin; b < end; b += grain) {
      body(b, std::min(b + grain, end));
    }
    return;
  }
  TaskScheduler::Group g(s);
  // Submit every morsel after the first, run the first inline, then help
  // drain the rest in Wait.
  for (std::size_t b = begin + grain; b < end; b += grain) {
    const std::size_t e = std::min(b + grain, end);
    g.Run([&body, b, e] { body(b, e); });
  }
  body(begin, std::min(begin + grain, end));
  g.Wait();
}

namespace internal {

inline int ParseEnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(
      std::clamp<long>(parsed, 1, TaskScheduler::kMaxWorkers + 1));
}

/// `QUASII_EXEC_THREADS`, parsed once: the startup intra-query thread count
/// AND a hard cap on later `SetIntraQueryThreads` requests, so the CI
/// force-serial leg (`QUASII_EXEC_THREADS=1`) pins serial execution even
/// through runtime overrides — the exact analogue of how
/// `QUASII_FORCE_SCALAR` pins the SIMD tier. 0 means "unset".
inline int EnvExecThreadsCap() {
  static const int cap = ParseEnvInt("QUASII_EXEC_THREADS", 0);
  return cap;
}

struct IntraQueryState {
  std::unique_ptr<TaskScheduler> scheduler;
  int threads = 1;
};

inline IntraQueryState& IntraQuery() {
  static IntraQueryState state = [] {
    IntraQueryState s;
    const int cap = EnvExecThreadsCap();
    s.threads = cap > 0 ? cap : 1;
    s.scheduler = std::make_unique<TaskScheduler>(s.threads - 1);
    return s;
  }();
  return state;
}

}  // namespace internal

/// The process-wide intra-query scheduler. Default size 1 (no workers —
/// fully serial) unless `QUASII_EXEC_THREADS` says otherwise, so nothing
/// goes parallel without an explicit opt-in and the server's replay
/// determinism gate is untouched by default.
inline TaskScheduler& IntraQueryScheduler() {
  return *internal::IntraQuery().scheduler;
}

/// Current intra-query thread count (workers + the submitting thread).
inline int IntraQueryThreads() { return internal::IntraQuery().threads; }

/// Resizes the intra-query scheduler to `threads` total threads, clamped
/// by the `QUASII_EXEC_THREADS` cap when that is set. NOT thread-safe
/// against in-flight queries — call it between queries (microbench A/B
/// mode switches, server startup). Returns the effective thread count.
inline int SetIntraQueryThreads(int threads) {
  threads = std::clamp(threads, 1, TaskScheduler::kMaxWorkers + 1);
  const int cap = internal::EnvExecThreadsCap();
  if (cap > 0) threads = std::min(threads, cap);
  internal::IntraQueryState& state = internal::IntraQuery();
  if (threads != state.threads) {
    state.scheduler = std::make_unique<TaskScheduler>(threads - 1);
    state.threads = threads;
  }
  return state.threads;
}

/// Morsel size in rows for `ParallelFor` over row ranges — the grain knob.
/// `QUASII_GRAIN` overrides; the default keeps a morsel big enough that
/// task dispatch is noise next to the per-row work, small enough that a
/// cold 2^20-row crack cuts into plenty of morsels for 8 threads.
inline std::size_t MorselGrain() {
  static const std::size_t grain = [] {
    const char* v = std::getenv("QUASII_GRAIN");
    if (v != nullptr && *v != '\0') {
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end != v && *end == '\0' && parsed > 0) {
        return static_cast<std::size_t>(parsed);
      }
    }
    return std::size_t{4096};
  }();
  return grain;
}

}  // namespace quasii

#endif  // QUASII_COMMON_TASK_SCHEDULER_H_
