#ifndef QUASII_COMMON_PACKED_COLUMN_H_
#define QUASII_COMMON_PACKED_COLUMN_H_

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/simd.h"
#include "geometry/point.h"

// Frame-of-reference bit-packed bound columns for frozen (converged,
// immutable) slices.
//
// A slice that has reached its leaf threshold — or carries the `frozen` flag —
// is never reorganized again, so its per-dim `lo`/`hi` bound columns are
// immutable until the next full compaction. Those columns are re-encoded
// once, at freeze time, into a form the SIMD kernels scan *directly*:
//
//   1. Each float is mapped to an order-preserving unsigned 32-bit integer
//      (`MapOrdered`): sign-magnitude floats become two's-complement-style
//      monotone integers, with -0.0 canonicalized to +0.0 so float and
//      integer comparisons agree on every non-NaN input.
//   2. The column stores `ref = min(mapped)` and only the deltas
//      `mapped[i] - ref`, each in `width` bits where `width` is the bit
//      length of `max - min` (0..32). A converged leaf covers a narrow value
//      interval, so width is far below 32.
//   3. Deltas are laid out in a vertical 8-lane layout: value `i` lives in
//      lane `i % 8`, each lane is a little-endian bitstream of 32-bit words,
//      and word `j` of all 8 lanes is stored contiguously
//      (`words[j*8 .. j*8+7]`). One unaligned 256-bit load therefore yields
//      the same bitstream word for 8 consecutive values, and a group of 8
//      deltas unpacks with two uniform shifts and a mask — no per-lane
//      shuffles. One pad word per lane keeps the (current, next) word pair
//      loadable for every group without bounds checks.
//
// Scans never decompress the column: the query bound is mapped once with
// `MapOrdered`, and the kernels compare `ref + delta` against it in mapped
// space (AVX2: signed compares after the usual 0x80000000 bias flip). The
// result is bit-identical to scanning the raw float columns.

namespace quasii {

/// Order-preserving map from float to uint32: for all non-NaN a, b
/// `a <= b  <=>  MapOrdered(a) <= MapOrdered(b)`. -0.0 maps like +0.0.
inline std::uint32_t MapOrdered(Scalar f) {
  static_assert(sizeof(Scalar) == 4, "packed columns assume float coords");
  if (f == Scalar(0)) f = Scalar(0);  // collapse -0.0 onto +0.0
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return (u & 0x80000000u) != 0 ? ~u : u ^ 0x80000000u;
}

/// One immutable bit-packed column (layout contract in the header comment).
struct PackedColumn {
  std::uint32_t ref = 0;        // min of the mapped values
  std::uint8_t width = 0;       // bits per delta, 0..32
  std::uint32_t rows = 0;       // logical value count
  std::vector<std::uint32_t> words;  // 8-lane interleaved bitstreams

  std::size_t bytes() const {
    return sizeof(PackedColumn) + words.size() * sizeof(std::uint32_t);
  }

  /// Scalar random access, mapped space (reference path + tails).
  std::uint32_t GetMapped(std::size_t i) const {
    if (width == 0) return ref;
    const std::size_t lane = i & 7;
    const std::size_t group = i >> 3;
    const std::size_t bitpos = group * width;
    const std::size_t wi = bitpos >> 5;
    const unsigned shift = static_cast<unsigned>(bitpos & 31);
    const std::uint64_t cur = words[wi * 8 + lane];
    const std::uint64_t nxt = words[(wi + 1) * 8 + lane];
    const std::uint64_t both = cur | (nxt << 32);
    const std::uint32_t wmask =
        width == 32 ? ~0u : ((1u << width) - 1u);
    return ref + (static_cast<std::uint32_t>(both >> shift) & wmask);
  }
};

/// Encodes `n` floats into a PackedColumn. Cold path: runs once per frozen
/// slice, under the index's exclusive lock.
inline PackedColumn PackColumn(const Scalar* vals, std::size_t n) {
  PackedColumn col;
  col.rows = static_cast<std::uint32_t>(n);
  if (n == 0) return col;
  std::uint32_t lo = MapOrdered(vals[0]);
  std::uint32_t hi = lo;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t u = MapOrdered(vals[i]);
    lo = u < lo ? u : lo;
    hi = u > hi ? u : hi;
  }
  col.ref = lo;
  col.width = static_cast<std::uint8_t>(std::bit_width(hi - lo));
  if (col.width == 0) return col;  // constant column: ref carries everything
  const std::size_t groups = (n + 7) / 8;
  const std::size_t words_per_lane = (groups * col.width + 31) / 32 + 1;
  col.words.assign(words_per_lane * 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t delta = MapOrdered(vals[i]) - col.ref;
    const std::size_t lane = i & 7;
    const std::size_t bitpos = (i >> 3) * col.width;
    const std::size_t wi = bitpos >> 5;
    const unsigned shift = static_cast<unsigned>(bitpos & 31);
    col.words[wi * 8 + lane] |= delta << shift;
    if (shift + col.width > 32) {
      col.words[(wi + 1) * 8 + lane] |= delta >> (32 - shift);
    }
  }
  return col;
}

// ---------------------------------------------------------------------------
// Packed scan kernels: mask[i] &= (value[i] <= bound) / (value[i] >= bound),
// compared in mapped space. Scalar reference + AVX2; the NEON tier falls back
// to scalar here (packed leaves are rare enough on aarch64 CI that the
// maintenance cost of a third layout kernel is not yet paid for).
//
// Before any per-value work, the bound is classified against the column's
// frame `[ref, ref + 2^width)`: a bound below the frame fails (Le) or passes
// (Ge) every value, and a bound at or beyond the frame's top does the
// opposite — converged leaves have narrow frames, so whole passes collapse
// into a memset or a no-op. Surviving compares run in *delta space*
// (`bound - ref`, no per-lane ref add), and the interval test's Le/Ge pair
// fuses into a single pass with one mask update per group.

namespace internal {

/// What a (column, bound) comparison resolves to for every value at once.
enum class ColVerdict { kAllPass, kAllFail, kCompare };

template <bool kLe>
inline ColVerdict Classify(const PackedColumn& col, std::uint32_t bound,
                           std::uint32_t* bound_delta) {
  if (col.width == 0) {  // constant column: ref decides alone
    const bool pass = kLe ? col.ref <= bound : col.ref >= bound;
    return pass ? ColVerdict::kAllPass : ColVerdict::kAllFail;
  }
  if (bound < col.ref) {
    return kLe ? ColVerdict::kAllFail : ColVerdict::kAllPass;
  }
  const std::uint64_t delta = bound - col.ref;
  if (col.width < 32 && delta >= (std::uint64_t{1} << col.width)) {
    return kLe ? ColVerdict::kAllPass : ColVerdict::kAllFail;
  }
  *bound_delta = static_cast<std::uint32_t>(delta);
  return ColVerdict::kCompare;
}

template <bool kLe>
inline void MaskPackedCmpScalar(const PackedColumn& col, std::uint32_t bound,
                                std::uint8_t* mask, std::size_t n,
                                std::size_t from = 0) {
  for (std::size_t i = from; i < n; ++i) {
    const std::uint32_t v = col.GetMapped(i);
    mask[i] &= static_cast<std::uint8_t>(kLe ? v <= bound : v >= bound);
  }
}

#if defined(QUASII_SIMD_X86)

/// Unpacks the 8 deltas of group `g` (width >= 1), biased for signed
/// compares.
__attribute__((target("avx2"))) inline __m256i UnpackGroupBiasedAvx2(
    const std::uint32_t* words, unsigned width, __m256i wmask, __m256i bias,
    std::size_t g) {
  const std::size_t bitpos = g * width;
  const std::size_t wi = bitpos >> 5;
  const int shift = static_cast<int>(bitpos & 31);
  const __m256i cur =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + wi * 8));
  __m256i val = _mm256_srl_epi32(cur, _mm_cvtsi32_si128(shift));
  if (static_cast<unsigned>(shift) + width > 32) {
    // Group straddles a word boundary: fold in the next word's low bits.
    // (Never taken when width <= 16, so narrow columns pay one load.)
    const __m256i nxt = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + wi * 8 + 8));
    val = _mm256_or_si256(val, _mm256_sll_epi32(nxt, _mm_cvtsi32_si128(32 - shift)));
  }
  const __m256i delta = _mm256_and_si256(val, wmask);
  return _mm256_xor_si256(delta, bias);
}

/// Single-column compare in delta space (`bound_delta = bound - ref`,
/// classification already ruled out the all-pass/all-fail cases).
template <bool kLe>
__attribute__((target("avx2"))) inline void MaskPackedCmpAvx2(
    const PackedColumn& col, std::uint32_t bound, std::uint32_t bound_delta,
    std::uint8_t* mask, std::size_t n) {
  const std::uint32_t wmask32 = col.width == 32 ? ~0u : ((1u << col.width) - 1u);
  const __m256i wmask = _mm256_set1_epi32(static_cast<int>(wmask32));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i boundv =
      _mm256_set1_epi32(static_cast<int>(bound_delta ^ 0x80000000u));
  const std::uint32_t* words = col.words.data();
  const std::size_t full_groups = n / 8;
  for (std::size_t g = 0; g < full_groups; ++g) {
    const __m256i biased =
        UnpackGroupBiasedAvx2(words, col.width, wmask, bias, g);
    // keep = !(v > bound) for Le, !(bound > v) for Ge.
    const __m256i gt = kLe ? _mm256_cmpgt_epi32(biased, boundv)
                           : _mm256_cmpgt_epi32(boundv, biased);
    const __m128i drop = simd::internal::PackLaneMaskToBytes(gt);
    const __m128i old =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + g * 8));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(mask + g * 8),
                     _mm_andnot_si128(drop, old));
  }
  MaskPackedCmpScalar<kLe>(col, bound, mask, n, full_groups * 8);
}

/// Fused interval test: mask[i] &= (le_col[i] <= le_bound) &
/// (ge_col[i] >= ge_bound), both columns compared in their own delta space,
/// one mask update per group.
__attribute__((target("avx2"))) inline void MaskPackedLeGeAvx2(
    const PackedColumn& le_col, std::uint32_t le_bound,
    std::uint32_t le_delta, const PackedColumn& ge_col,
    std::uint32_t ge_bound, std::uint32_t ge_delta, std::uint8_t* mask,
    std::size_t n) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i le_wmask = _mm256_set1_epi32(static_cast<int>(
      le_col.width == 32 ? ~0u : ((1u << le_col.width) - 1u)));
  const __m256i ge_wmask = _mm256_set1_epi32(static_cast<int>(
      ge_col.width == 32 ? ~0u : ((1u << ge_col.width) - 1u)));
  const __m256i le_boundv =
      _mm256_set1_epi32(static_cast<int>(le_delta ^ 0x80000000u));
  const __m256i ge_boundv =
      _mm256_set1_epi32(static_cast<int>(ge_delta ^ 0x80000000u));
  const std::uint32_t* le_words = le_col.words.data();
  const std::uint32_t* ge_words = ge_col.words.data();
  const std::size_t full_groups = n / 8;
  for (std::size_t g = 0; g < full_groups; ++g) {
    const __m256i le_v =
        UnpackGroupBiasedAvx2(le_words, le_col.width, le_wmask, bias, g);
    const __m256i ge_v =
        UnpackGroupBiasedAvx2(ge_words, ge_col.width, ge_wmask, bias, g);
    const __m256i drop32 =
        _mm256_or_si256(_mm256_cmpgt_epi32(le_v, le_boundv),
                        _mm256_cmpgt_epi32(ge_boundv, ge_v));
    const __m128i drop = simd::internal::PackLaneMaskToBytes(drop32);
    const __m128i old =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + g * 8));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(mask + g * 8),
                     _mm_andnot_si128(drop, old));
  }
  for (std::size_t i = full_groups * 8; i < n; ++i) {
    mask[i] &= static_cast<std::uint8_t>((le_col.GetMapped(i) <= le_bound) &
                                         (ge_col.GetMapped(i) >= ge_bound));
  }
}

#endif  // QUASII_SIMD_X86

template <bool kLe>
inline void MaskPackedCmp(const PackedColumn& col, std::uint32_t bound,
                          std::uint8_t* mask, std::size_t n) {
  std::uint32_t bound_delta = 0;
  switch (Classify<kLe>(col, bound, &bound_delta)) {
    case ColVerdict::kAllPass:
      return;
    case ColVerdict::kAllFail:
      // n may be 0 with mask == nullptr (empty leaf); memset's pointer
      // argument must be non-null even then.
      if (n != 0) std::memset(mask, 0, n);
      return;
    case ColVerdict::kCompare:
      break;
  }
#if defined(QUASII_SIMD_X86)
  if (simd::ActiveTier() == simd::Tier::kAvx2) {
    MaskPackedCmpAvx2<kLe>(col, bound, bound_delta, mask, n);
    return;
  }
#endif
  MaskPackedCmpScalar<kLe>(col, bound, mask, n);
}

}  // namespace internal

/// mask[i] &= (column value i <= bound), `bound` already mapped.
inline void MaskPackedLe(const PackedColumn& col, std::uint32_t bound,
                         std::uint8_t* mask, std::size_t n) {
  internal::MaskPackedCmp<true>(col, bound, mask, n);
}

/// mask[i] &= (column value i >= bound), `bound` already mapped.
inline void MaskPackedGe(const PackedColumn& col, std::uint32_t bound,
                         std::uint8_t* mask, std::size_t n) {
  internal::MaskPackedCmp<false>(col, bound, mask, n);
}

/// One dimension's full interval test over packed columns:
/// mask[i] &= (le_col[i] <= le_bound) & (ge_col[i] >= ge_bound), bounds
/// already mapped. Collapses to a single fused pass (or less, when a bound
/// clears a whole column) — the packed counterpart of `simd::MaskLeGe`.
inline void MaskPackedLeGe(const PackedColumn& le_col, std::uint32_t le_bound,
                           const PackedColumn& ge_col, std::uint32_t ge_bound,
                           std::uint8_t* mask, std::size_t n) {
  using internal::ColVerdict;
  std::uint32_t le_delta = 0;
  std::uint32_t ge_delta = 0;
  const ColVerdict le_v =
      internal::Classify<true>(le_col, le_bound, &le_delta);
  const ColVerdict ge_v =
      internal::Classify<false>(ge_col, ge_bound, &ge_delta);
  if (le_v == ColVerdict::kAllFail || ge_v == ColVerdict::kAllFail) {
    if (n != 0) std::memset(mask, 0, n);
    return;
  }
  const bool le_cmp = le_v == ColVerdict::kCompare;
  const bool ge_cmp = ge_v == ColVerdict::kCompare;
  if (!le_cmp && !ge_cmp) return;
#if defined(QUASII_SIMD_X86)
  if (simd::ActiveTier() == simd::Tier::kAvx2) {
    if (le_cmp && ge_cmp) {
      internal::MaskPackedLeGeAvx2(le_col, le_bound, le_delta, ge_col,
                                   ge_bound, ge_delta, mask, n);
    } else if (le_cmp) {
      internal::MaskPackedCmpAvx2<true>(le_col, le_bound, le_delta, mask, n);
    } else {
      internal::MaskPackedCmpAvx2<false>(ge_col, ge_bound, ge_delta, mask, n);
    }
    return;
  }
#endif
  if (le_cmp) internal::MaskPackedCmpScalar<true>(le_col, le_bound, mask, n);
  if (ge_cmp) internal::MaskPackedCmpScalar<false>(ge_col, ge_bound, mask, n);
}

/// The packed bound columns of one frozen leaf slice: per dimension the
/// packed `lo` and `hi` columns over the slice's row range. Immutable after
/// construction; slices hand shared ownership around by `shared_ptr`.
template <int D>
struct PackedLeaf {
  std::array<PackedColumn, static_cast<std::size_t>(D)> lo_cols;
  std::array<PackedColumn, static_cast<std::size_t>(D)> hi_cols;
  std::size_t rows = 0;

  /// Heap + struct footprint of the packed representation.
  std::size_t bytes() const {
    std::size_t total = sizeof(rows);
    for (int d = 0; d < D; ++d) {
      const std::size_t dd = static_cast<std::size_t>(d);
      total += lo_cols[dd].bytes() + hi_cols[dd].bytes();
    }
    return total;
  }
};

/// Packs one leaf's bound columns. `los[d]` / `his[d]` point at the first of
/// `n` contiguous bound values of dimension `d`.
template <int D>
std::shared_ptr<const PackedLeaf<D>> MakePackedLeaf(
    const std::array<const Scalar*, static_cast<std::size_t>(D)>& los,
    const std::array<const Scalar*, static_cast<std::size_t>(D)>& his,
    std::size_t n) {
  auto leaf = std::make_shared<PackedLeaf<D>>();
  leaf->rows = n;
  for (int d = 0; d < D; ++d) {
    const std::size_t dd = static_cast<std::size_t>(d);
    leaf->lo_cols[dd] = PackColumn(los[dd], n);
    leaf->hi_cols[dd] = PackColumn(his[dd], n);
  }
  return leaf;
}

}  // namespace quasii

#endif  // QUASII_COMMON_PACKED_COLUMN_H_
