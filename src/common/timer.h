#ifndef QUASII_COMMON_TIMER_H_
#define QUASII_COMMON_TIMER_H_

#include <chrono>

namespace quasii {

/// Monotonic wall-clock stopwatch used by the experiment harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last `Reset()`.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last `Reset()`.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace quasii

#endif  // QUASII_COMMON_TIMER_H_
