#ifndef QUASII_COMMON_SPATIAL_INDEX_H_
#define QUASII_COMMON_SPATIAL_INDEX_H_

#include <string_view>
#include <vector>

#include "common/query_stats.h"
#include "geometry/box.h"

namespace quasii {

/// An object as stored inside reorganizable index arrays: its MBB plus the
/// identifier pointing back into the original dataset.
template <int D>
struct Entry {
  Box<D> box;
  ObjectId id = 0;
};

using Entry2 = Entry<2>;
using Entry3 = Entry<3>;

/// Common interface of every index in the evaluation (Section 6.1 list:
/// Scan, SFC, SFCracker, Grid, Mosaic, R-Tree, QUASII).
///
/// Usage protocol:
///   1. construct with the dataset (all raw data is available up front —
///      the paper's static setting, Section 2);
///   2. call `Build()` once — static indexes pay their pre-processing cost
///      here, incremental ones return immediately;
///   3. call `Query()` repeatedly. Incremental indexes reorganize internal
///      state as a side effect, which is why `Query` is non-const.
template <int D>
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Human-readable name used by the experiment harness ("R-Tree", ...).
  virtual std::string_view name() const = 0;

  /// One-off pre-processing. No-op for incremental indexes.
  virtual void Build() {}

  /// Appends to `*result` the ids of all objects whose MBB intersects `q`.
  /// Result order is unspecified; ids are unique.
  virtual void Query(const Box<D>& q, std::vector<ObjectId>* result) = 0;

  /// Cumulative work counters since construction.
  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  QueryStats stats_;
};

}  // namespace quasii

#endif  // QUASII_COMMON_SPATIAL_INDEX_H_
