#ifndef QUASII_COMMON_SPATIAL_INDEX_H_
#define QUASII_COMMON_SPATIAL_INDEX_H_

#include <string_view>
#include <vector>

#include "common/query.h"
#include "common/query_stats.h"
#include "geometry/box.h"

namespace quasii {

/// An object as stored inside reorganizable index arrays: its MBB plus the
/// identifier pointing back into the original dataset.
template <int D>
struct Entry {
  Box<D> box;
  ObjectId id = 0;
};

using Entry2 = Entry<2>;
using Entry3 = Entry<3>;

/// Common interface of every index in the evaluation (Section 6.1 list:
/// Scan, SFC, SFCracker, Grid, Mosaic, R-Tree, QUASII).
///
/// Usage protocol:
///   1. construct with the dataset (all raw data is available up front —
///      the paper's static setting, Section 2);
///   2. call `Build()` once — static indexes pay their pre-processing cost
///      here, incremental ones return immediately;
///   3. call `Execute()` repeatedly with typed queries (range with a
///      topological predicate, point, count, k-nearest), streaming results
///      into a `Sink`. Incremental indexes reorganize internal state as a
///      side effect, which is why `Execute` is non-const.
///
/// `Execute` normalizes the query — empty boxes short-circuit (an inverted
/// box matches nothing and must not trigger reorganization), a point query
/// becomes the zero-extent closed range `[p, p]` — and dispatches to the two
/// per-index primitives: `ExecuteBox` (range/point/count; `count_only`
/// switches the leaf paths to anonymous `Sink::AddMatches` so no id is ever
/// materialized) and `ExecuteKNearest` (results emitted in ascending
/// (distance, id) order).
template <int D>
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Human-readable name used by the experiment harness ("R-Tree", ...).
  virtual std::string_view name() const = 0;

  /// One-off pre-processing. No-op for incremental indexes.
  virtual void Build() {}

  /// Typed query execution: the one entry point every query type funnels
  /// through.
  virtual void Execute(const quasii::Query<D>& query, Sink& sink) {
    switch (query.type) {
      case QueryType::kRange:
        if (query.box.IsEmpty()) return;
        ExecuteBox(query.box, query.predicate, /*count_only=*/false, sink);
        return;
      case QueryType::kPoint: {
        const Box<D> point_box(query.point, query.point);
        ExecuteBox(point_box, RangePredicate::kIntersects,
                   /*count_only=*/false, sink);
        return;
      }
      case QueryType::kCount:
        if (query.box.IsEmpty()) return;
        ExecuteBox(query.box, query.predicate, /*count_only=*/true, sink);
        return;
      case QueryType::kKNearest:
        if (query.k == 0) return;
        ExecuteKNearest(query.point, query.k, sink);
        return;
    }
  }

  /// Legacy single-shot API: appends to `*result` the ids of all objects
  /// whose MBB intersects `q` (order unspecified, ids unique). A thin shim
  /// over `Execute` kept so pre-engine callers keep compiling.
  void Query(const Box<D>& q, std::vector<ObjectId>* result) {
    VectorSink sink(result);
    Execute(RangeQuery<D>(q), sink);
  }

  /// Cumulative work counters since construction.
  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  /// Range/point/count execution over a non-empty (possibly zero-extent)
  /// box. Implementations stream ids via `Emit`/`EmitRun` — or, when
  /// `count_only`, report anonymous totals via `AddMatches` and never touch
  /// ids.
  virtual void ExecuteBox(const Box<D>& q, RangePredicate predicate,
                          bool count_only, Sink& sink) = 0;

  /// k-nearest-neighbor execution (`k >= 1`): emit the ids of the `k`
  /// objects with smallest `Box::MinDistSquaredTo(pt)` in ascending
  /// (distance, id) order (fewer when the dataset is smaller than `k`).
  virtual void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                               Sink& sink) = 0;

  /// Shared `ExecuteKNearest` body for indexes without a dedicated
  /// nearest-neighbor traversal: expanding-ring range probes through this
  /// index's own `ExecuteBox` (so incremental indexes keep reorganizing
  /// under kNN workloads), drained into `sink` in (distance, id) order.
  /// `data` maps ids back to boxes; `bounds` is the dataset MBB.
  void RingKNearest(const std::vector<Box<D>>& data, const Box<D>& bounds,
                    const Point<D>& pt, std::size_t k, Sink& sink) {
    TopKSink topk(k);
    ExpandingRingKNearest<D>(
        data, bounds, pt, k, &topk,
        [this](const Box<D>& cube, std::vector<ObjectId>* out) {
          VectorSink probe_sink(out);
          ExecuteBox(cube, RangePredicate::kIntersects, /*count_only=*/false,
                     probe_sink);
        });
    DrainTopK(&topk, &sink);
  }

  QueryStats stats_;
};

}  // namespace quasii

#endif  // QUASII_COMMON_SPATIAL_INDEX_H_
