#ifndef QUASII_COMMON_SPATIAL_INDEX_H_
#define QUASII_COMMON_SPATIAL_INDEX_H_

#include <string_view>
#include <vector>

#include "common/object_store.h"
#include "common/query.h"
#include "common/query_stats.h"
#include "geometry/box.h"

namespace quasii {

/// An object as stored inside reorganizable index arrays: its MBB plus the
/// identifier pointing back into the object store.
template <int D>
struct Entry {
  Box<D> box;
  ObjectId id = 0;
};

using Entry2 = Entry<2>;
using Entry3 = Entry<3>;

/// Common interface of every index in the evaluation (Section 6.1 list:
/// Scan, SFC, SFCracker, Grid, Mosaic, R-Tree, QUASII).
///
/// Usage protocol:
///   1. construct with the dataset (ids are dataset positions); the base
///      class wraps it in a copy-on-write `ObjectStore`, so the caller's
///      vector is never mutated;
///   2. call `Build()` once — static indexes pay their pre-processing cost
///      here, incremental ones return immediately;
///   3. call `Execute()` repeatedly with typed queries (range with a
///      topological predicate, point, count, k-nearest), streaming results
///      into a `Sink`. Incremental indexes reorganize internal state as a
///      side effect, which is why `Execute` is non-const;
///   4. interleave `Insert(id, box)` / `Erase(id)` freely with queries —
///      the store enforces the roster-wide mutation semantics (insert only
///      non-live ids, erase only live ones, reinsert-after-erase allowed)
///      and each index maintains its structure via `OnInsert`/`OnErase`.
///
/// `Execute` normalizes the query — empty boxes short-circuit (an inverted
/// box matches nothing and must not trigger reorganization), a point query
/// becomes the zero-extent closed range `[p, p]` — and dispatches to the two
/// per-index primitives: `ExecuteBox` (range/point/count; `count_only`
/// switches the leaf paths to anonymous `Sink::AddMatches` so no id is ever
/// materialized) and `ExecuteKNearest` (results emitted in ascending
/// (distance, id) order).
template <int D>
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Human-readable name used by the experiment harness ("R-Tree", ...).
  virtual std::string_view name() const = 0;

  /// One-off pre-processing. No-op for incremental indexes.
  virtual void Build() {}

  /// Adds object `id` with MBB `box`. Fails (returns false, no state
  /// change) when `id` is currently live or `box` is empty; an id erased
  /// earlier may be re-inserted, with any box.
  bool Insert(ObjectId id, const Box<D>& box) {
    if (box.IsEmpty()) return false;
    if (!store_.Insert(id, box)) return false;
    OnInsert(id, box);
    return true;
  }

  /// Removes object `id`. Fails (returns false) when `id` is not live —
  /// including ids that were never inserted.
  bool Erase(ObjectId id) {
    if (!store_.Erase(id)) return false;
    OnErase(id);
    return true;
  }

  /// The index's view of the object population (live set, boxes, bounds).
  const ObjectStore<D>& store() const { return store_; }

  /// Typed query execution: the one entry point every query type funnels
  /// through.
  virtual void Execute(const quasii::Query<D>& query, Sink& sink) {
    switch (query.type) {
      case QueryType::kRange:
        if (query.box.IsEmpty()) return;
        ExecuteBox(query.box, query.predicate, /*count_only=*/false, sink);
        return;
      case QueryType::kPoint: {
        const Box<D> point_box(query.point, query.point);
        ExecuteBox(point_box, RangePredicate::kIntersects,
                   /*count_only=*/false, sink);
        return;
      }
      case QueryType::kCount:
        if (query.box.IsEmpty()) return;
        ExecuteBox(query.box, query.predicate, /*count_only=*/true, sink);
        return;
      case QueryType::kKNearest:
        if (query.k == 0) return;
        ExecuteKNearest(query.point, query.k, sink);
        return;
    }
  }

  /// Legacy single-shot API: appends to `*result` the ids of all objects
  /// whose MBB intersects `q` (order unspecified, ids unique). A thin shim
  /// over `Execute` kept so pre-engine callers keep compiling.
  void Query(const Box<D>& q, std::vector<ObjectId>* result) {
    VectorSink sink(result);
    Execute(RangeQuery<D>(q), sink);
  }

  /// Cumulative work counters since construction.
  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 protected:
  explicit SpatialIndex(const std::vector<Box<D>>& data) : store_(data) {}

  /// Structure maintenance after a successful store insert/erase. Called
  /// exactly once per accepted mutation, after the store reflects it (so
  /// `store().box(id)` is the new box in `OnInsert`, and still the erased
  /// object's box in `OnErase`).
  virtual void OnInsert(ObjectId id, const Box<D>& box) = 0;
  virtual void OnErase(ObjectId id) = 0;

  /// Range/point/count execution over a non-empty (possibly zero-extent)
  /// box. Implementations stream ids via `Emit`/`EmitRun` — or, when
  /// `count_only`, report anonymous totals via `AddMatches` and never touch
  /// ids.
  virtual void ExecuteBox(const Box<D>& q, RangePredicate predicate,
                          bool count_only, Sink& sink) = 0;

  /// k-nearest-neighbor execution (`k >= 1`): emit the ids of the `k`
  /// objects with smallest `Box::MinDistSquaredTo(pt)` in ascending
  /// (distance, id) order (fewer when the dataset is smaller than `k`).
  virtual void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                               Sink& sink) = 0;

  /// Shared `ExecuteKNearest` body for indexes without a dedicated
  /// nearest-neighbor traversal: expanding-ring range probes through this
  /// index's own `ExecuteBox` (so incremental indexes keep reorganizing
  /// under kNN workloads), drained into `sink` in (distance, id) order.
  /// Boxes and the live bounds come from the object store, so the ring
  /// tracks inserts and erases automatically.
  void RingKNearest(const Point<D>& pt, std::size_t k, Sink& sink) {
    TopKSink topk(k);
    ExpandingRingKNearest<D>(
        store_.boxes(), store_.live_count(), store_.bounds(), pt, k, &topk,
        [this](const Box<D>& cube, std::vector<ObjectId>* out) {
          VectorSink probe_sink(out);
          ExecuteBox(cube, RangePredicate::kIntersects, /*count_only=*/false,
                     probe_sink);
        });
    DrainTopK(&topk, &sink);
  }

  ObjectStore<D> store_;
  QueryStats stats_;
};

}  // namespace quasii

#endif  // QUASII_COMMON_SPATIAL_INDEX_H_
