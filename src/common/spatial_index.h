#ifndef QUASII_COMMON_SPATIAL_INDEX_H_
#define QUASII_COMMON_SPATIAL_INDEX_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/object_store.h"
#include "common/query.h"
#include "common/query_stats.h"
#include "geometry/box.h"

namespace quasii {

/// An object as stored inside reorganizable index arrays: its MBB plus the
/// identifier pointing back into the object store.
template <int D>
struct Entry {
  Box<D> box;
  ObjectId id = 0;
};

using Entry2 = Entry<2>;
using Entry3 = Entry<3>;

/// Common interface of every index in the evaluation (Section 6.1 list:
/// Scan, SFC, SFCracker, Grid, Mosaic, R-Tree, QUASII).
///
/// Usage protocol:
///   1. construct with the dataset (ids are dataset positions); the base
///      class wraps it in a copy-on-write `ObjectStore`, so the caller's
///      vector is never mutated;
///   2. call `Build()` once — static indexes pay their pre-processing cost
///      here, incremental ones return immediately;
///   3. call `Execute()` repeatedly with typed queries (range with a
///      topological predicate, point, count, k-nearest, conjunctive plans),
///      streaming results into a `Sink` — or, for joins, into a `PairSink`
///      via the pair overload. Incremental indexes reorganize internal
///      state as a side effect, which is why `Execute` is non-const;
///   4. interleave `Insert(id, box)` / `Erase(id)` freely with queries —
///      the store enforces the roster-wide mutation semantics (insert only
///      non-live ids, erase only live ones, reinsert-after-erase allowed)
///      and each index maintains its structure via `OnInsert`/`OnErase`.
///
/// Concurrency contract: `Execute`, `Insert`, and `Erase` may be called
/// from any number of threads at once (each concurrently executing thread
/// must hold a distinct stats slot — the `ThreadPool` arranges this for its
/// workers). A reader-writer lock in this base class arbitrates: mutations
/// and reorganizing executions take the exclusive side; executions the
/// index declares safe via `ConvergedFor(query)` run concurrently under the
/// shared side. Static indexes are read-safe as soon as they are built;
/// adaptive indexes (QUASII, SFCracker, Mosaic) serialize while the query
/// would still crack/split and downgrade to shared mode once the touched
/// region has converged. An index-vs-index join locks BOTH indexes (in a
/// global address order, so concurrent A⋈B and B⋈A cannot deadlock) and
/// runs shared only when both sides' `ConvergedFor` agree. `Build()` and
/// the stats accessors are NOT thread-safe — call them while no query is in
/// flight.
///
/// `Execute` normalizes the query — empty boxes short-circuit (an inverted
/// box matches nothing and must not trigger reorganization), a point query
/// becomes the zero-extent closed range `[p, p]`, a conjunctive plan routes
/// its smallest-volume term as the driver descent — and dispatches to the
/// two per-index primitives: `ExecuteBox` (range/point/count/conjunction;
/// `count_only` switches the leaf paths to anonymous `Sink::AddMatches` so
/// no id is ever materialized) and `ExecuteKNearest` (results emitted in
/// ascending (distance, id) order). Joins dispatch to `ExecuteJoin` /
/// `ExecuteStreamJoin`, which default to index-nested-loop probes through
/// `ExecuteBox` — so every index joins correctly out of the box, and
/// adaptive ones crack from the probe traffic.
template <int D>
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Human-readable name used by the experiment harness ("R-Tree", ...).
  virtual std::string_view name() const = 0;

  /// One-off pre-processing. No-op for incremental indexes. Not
  /// thread-safe: call before queries start flowing.
  virtual void Build() {}

  /// Whether executing `query` right now is guaranteed not to change any
  /// index state (beyond the caller's own stats shard) — the predicate that
  /// routes `Execute` to the shared (concurrent) side of the lock. Static
  /// indexes answer true once built; adaptive indexes answer true when the
  /// query's descent would touch only converged structure. For `kJoin` the
  /// answer covers only this side's structure — `Execute` asks both
  /// participants before running a join shared. Only meaningful under at
  /// least the shared lock (i.e. from inside `Execute`) or while no other
  /// thread is mutating; conservative `false` is always correct.
  virtual bool ConvergedFor(const Query<D>& query) const {
    (void)query;
    return false;
  }

  /// Adds object `id` with MBB `box`. Fails (returns false, no state
  /// change) when `id` is currently live or `box` is empty; an id erased
  /// earlier may be re-inserted, with any box. Takes the exclusive side of
  /// the index lock.
  bool Insert(ObjectId id, const Box<D>& box) {
    if (box.IsEmpty()) return false;
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (!store_.Insert(id, box)) return false;
    OnInsert(id, box);
    return true;
  }

  /// Removes object `id`. Fails (returns false) when `id` is not live —
  /// including ids that were never inserted. Takes the exclusive side of
  /// the index lock.
  bool Erase(ObjectId id) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (!store_.Erase(id)) return false;
    OnErase(id);
    return true;
  }

  /// The index's view of the object population (live set, boxes, bounds).
  const ObjectStore<D>& store() const { return store_; }

  /// --- Persistence surface (used by `src/persist/`) ---
  ///
  /// Serializes the index's internal structure (everything beyond the
  /// store: crack columns, slice trees, packed nodes) by appending to
  /// `out` and returns true. The default returns false: the index declares
  /// *rebuild-from-store* and a snapshot carries only the object table.
  /// Not thread-safe — call while no query is in flight.
  virtual bool SerializeStructure(ByteWriter& out) const {
    (void)out;
    return false;
  }

  /// Restores structure previously produced by `SerializeStructure`, after
  /// the store has been restored via `RestoreSlots`. Returns false when the
  /// blob is inconsistent — the caller must treat the index as unusable
  /// (recovery surfaces this as a typed error). Not thread-safe.
  virtual bool DeserializeStructure(std::string_view bytes) {
    (void)bytes;
    return false;
  }

  /// Store-only restore path: re-derives the structure from the restored
  /// store. Static indexes rebuild eagerly; lazily-initialized ones reset
  /// so their next query re-reads the store. Not thread-safe.
  virtual void RebuildFromStore() { Build(); }

  /// Structural self-check for recovery validation and test teardown:
  /// true when the index's invariants hold against its store. Overrides
  /// extend the base (store-only) check with index-specific structure
  /// validation. False fills `why` (when non-null) with the first
  /// violation. Not thread-safe, potentially O(n).
  virtual bool CheckInvariants(std::string* why = nullptr) const {
    return store_.CheckInvariants(why);
  }

  /// Mutable store access for recovery's `RestoreSlots` — the one caller
  /// allowed to bypass the `Insert`/`Erase` protocol. Single-threaded.
  ObjectStore<D>& MutableStoreForRecovery() { return store_; }

  /// Per-row column footprint of the index's scan structures. `raw_bytes` is
  /// the footprint with no compression; `resident_bytes` substitutes the
  /// packed representation for every compressed (frozen) leaf. Indexes
  /// without per-row columns report zeros. Gauge semantics (a point-in-time
  /// measurement, not a counter), hence an accessor instead of a
  /// `QueryStats` field — sharded stats slots are summed on merge, which
  /// would multiply a gauge by the slot count. Not thread-safe: read
  /// between batches like the persistence surface.
  struct ColumnMemory {
    std::uint64_t resident_bytes = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t packed_leaves = 0;
    std::uint64_t packed_rows = 0;
  };
  virtual ColumnMemory column_memory() const { return {}; }

  /// Typed query execution: the one entry point every id-producing query
  /// funnels through (joins produce pairs — use the `PairSink` overload).
  /// Thread-safe (see the class comment): tries the shared lock first and
  /// falls back to exclusive when `ConvergedFor` declines.
  virtual void Execute(const Query<D>& query, Sink& sink) {
    // Degenerate queries resolve to nothing without touching (or locking)
    // any structure: an inverted box matches nothing and must not trigger
    // reorganization. (Malformed descriptions — k == 0, empty plans — are
    // unrepresentable: Query construction is factory-validated.)
    switch (query.type()) {
      case QueryType::kRange:
      case QueryType::kCount:
        if (query.box().IsEmpty()) return;
        break;
      case QueryType::kConjunction:
        for (const ConjunctiveTerm<D>& term : query.terms()) {
          if (term.box.IsEmpty()) return;
        }
        break;
      case QueryType::kJoin:
        QueryApiAbort(
            "joins emit pairs; use the Execute(query, PairSink&) overload");
      case QueryType::kPoint:
      case QueryType::kKNearest:
        break;
    }
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      // Holding the shared lock excludes writers, so a true answer stays
      // true for the whole dispatch.
      if (ConvergedFor(query)) {
#ifndef NDEBUG
        // Drift detector: `ConvergedFor` replays each index's routing
        // logic, so a future execution-path change that forgets to update
        // its replay would reorganize under the shared lock — a data race
        // TSan only catches on the right interleaving. Reorganization
        // counters of this thread's shard must stay untouched by a
        // shared-mode dispatch; Debug CI turns drift deterministic.
        const std::uint64_t cracks_before = stats_.Local().cracks;
        const std::uint64_t moved_before = stats_.Local().objects_moved;
#endif
        Dispatch(query, sink);
#ifndef NDEBUG
        assert(stats_.Local().cracks == cracks_before &&
               stats_.Local().objects_moved == moved_before &&
               "ConvergedFor approved a query that reorganized");
#endif
        return;
      }
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    Dispatch(query, sink);
  }

  /// Join execution: streams every qualifying pair into `sink` in canonical
  /// order (unique, ascending (left, right); self-joins report each
  /// unordered pair once and never `(id, id)` — see `JoinEmitter`).
  /// Thread-safe: an index-vs-index join locks both participants in global
  /// address order and runs shared only when both sides' `ConvergedFor`
  /// approve; otherwise both are locked exclusively so the adaptive
  /// implementations may crack either side.
  virtual void Execute(const Query<D>& query, PairSink& sink) {
    if (query.type() != QueryType::kJoin) {
      QueryApiAbort(
          "only joins emit pairs; use the Execute(query, Sink&) overload");
    }
    if (const std::vector<Box<D>>* stream = query.join_stream()) {
      JoinEmitter emit(/*self_join=*/false, &sink);
      {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        if (ConvergedFor(query)) {
          ExecuteStreamJoin(*stream, emit);
          emit.Flush();
          return;
        }
      }
      std::unique_lock<std::shared_mutex> lock(mutex_);
      ExecuteStreamJoin(*stream, emit);
      emit.Flush();
      return;
    }
    SpatialIndex<D>* other = query.join_other();
    const bool self = (other == this);
    JoinEmitter emit(self, &sink);
    // Global address order makes concurrent A⋈B and B⋈A acquire the two
    // locks in the same sequence — no deadlock.
    SpatialIndex<D>* first = this;
    SpatialIndex<D>* second = other;
    if (std::less<SpatialIndex<D>*>{}(second, first)) std::swap(first, second);
    {
      std::shared_lock<std::shared_mutex> lock1(first->mutex_);
      std::shared_lock<std::shared_mutex> lock2;
      if (!self) lock2 = std::shared_lock<std::shared_mutex>(second->mutex_);
      if (ConvergedFor(query) && (self || other->ConvergedFor(query))) {
#ifndef NDEBUG
        const std::uint64_t cracks_before = stats_.Local().cracks;
        const std::uint64_t moved_before = stats_.Local().objects_moved;
        const std::uint64_t other_cracks_before = other->stats_.Local().cracks;
        const std::uint64_t other_moved_before =
            other->stats_.Local().objects_moved;
#endif
        ExecuteJoin(*other, emit);
        emit.Flush();
#ifndef NDEBUG
        assert(stats_.Local().cracks == cracks_before &&
               stats_.Local().objects_moved == moved_before &&
               other->stats_.Local().cracks == other_cracks_before &&
               other->stats_.Local().objects_moved == other_moved_before &&
               "ConvergedFor approved a join that reorganized");
#endif
        return;
      }
    }
    std::unique_lock<std::shared_mutex> lock1(first->mutex_);
    std::unique_lock<std::shared_mutex> lock2;
    if (!self) lock2 = std::unique_lock<std::shared_mutex>(second->mutex_);
    ExecuteJoin(*other, emit);
    emit.Flush();
  }

  /// Cumulative work counters since construction, merged over every
  /// thread's shard. Not thread-safe: read between batches, not mid-batch.
  QueryStats stats() const { return stats_.Merged(); }
  void ResetStats() { stats_.Reset(); }

  /// The calling thread's shard alone — the per-op delta source for
  /// sequential measurement loops, where it equals the merged view's delta
  /// without folding all `kStatsSlots` slots around every timed op.
  const QueryStats& thread_stats() const { return stats_.Local(); }

 protected:
  explicit SpatialIndex(const std::vector<Box<D>>& data) : store_(data) {}

  /// Structure maintenance after a successful store insert/erase. Called
  /// exactly once per accepted mutation (under the exclusive lock), after
  /// the store reflects it (so `store().box(id)` is the new box in
  /// `OnInsert`, and still the erased object's box in `OnErase`).
  virtual void OnInsert(ObjectId id, const Box<D>& box) = 0;
  virtual void OnErase(ObjectId id) = 0;

  /// Range/point/count execution over a non-empty (possibly zero-extent)
  /// box. Implementations stream ids via `Emit`/`EmitRun` — or, when
  /// `count_only`, report anonymous totals via `AddMatches` and never touch
  /// ids.
  ///
  /// Traversal contract (shared by every index): the implementation builds
  /// one `MatchEmitter` for the execution and threads a small per-call
  /// context — the ORIGINAL query box for the exact predicate filter, the
  /// predicate, the emitter, plus whatever the index's traversal needs
  /// (e.g. a pre-extended probe box for centre-assigned structures) —
  /// through its walk, then calls `Flush` exactly once at the end. The
  /// context lives on the caller's stack, never in index members, so
  /// concurrent shared-mode executions cannot interfere; per-index `BoxExec`
  /// comments below document only their deltas from this contract.
  virtual void ExecuteBox(const Box<D>& q, RangePredicate predicate,
                          bool count_only, Sink& sink) = 0;

  /// k-nearest-neighbor execution (`k >= 1`): emit the ids of the `k`
  /// objects with smallest `Box::MinDistSquaredTo(pt)` in ascending
  /// (distance, id) order (fewer when the dataset is smaller than `k`).
  virtual void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                               Sink& sink) = 0;

  /// Index-vs-index join body: `Add` every pair (left id from this index,
  /// right id from `other`) whose MBBs intersect. `other` may be `*this`
  /// (self-join); canonicalization — ordering, dedup, diagonal removal —
  /// happens in the emitter's `Flush`, which the caller owns. Default is
  /// the generic index-nested-loop: probe this index with every live box of
  /// `other`, so any index pair joins correctly and adaptive left sides
  /// crack from the probe traffic. Overrides provide the synchronized
  /// traversals (R-Tree node-pair descent, QUASII's both-sides crack-driven
  /// descent) when `other` is of their own type.
  virtual void ExecuteJoin(SpatialIndex<D>& other, JoinEmitter& emit) {
    other.store_.ForEachLive([&](ObjectId rid, const Box<D>& b) {
      ProbeJoinLeft(b, rid, &emit);
    });
  }

  /// Index-vs-stream join body: `Add` every pair (left id from this index,
  /// stream position) whose MBBs intersect. Empty stream boxes match
  /// nothing. Default: one probe per stream box.
  virtual void ExecuteStreamJoin(const std::vector<Box<D>>& stream,
                                 JoinEmitter& emit) {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      ProbeJoinLeft(stream[i], static_cast<ObjectId>(i), &emit);
    }
  }

  /// Probes this index with `box` and records each hit as the pair
  /// (hit, right_id) — the building block of nested-loop joins where this
  /// index is the left side.
  void ProbeJoinLeft(const Box<D>& box, ObjectId right_id, JoinEmitter* emit) {
    if (box.IsEmpty()) return;
    ProbePairSink probe(emit, right_id, /*hit_is_left=*/true);
    ExecuteBox(box, RangePredicate::kIntersects, /*count_only=*/false, probe);
  }

  /// Probes this index with `box` and records each hit as the pair
  /// (left_id, hit) — for nested-loop legs where this index is the right
  /// side (e.g. a partner's overflow rows probed against this structure).
  void ProbeJoinRight(const Box<D>& box, ObjectId left_id, JoinEmitter* emit) {
    if (box.IsEmpty()) return;
    ProbePairSink probe(emit, left_id, /*hit_is_left=*/false);
    ExecuteBox(box, RangePredicate::kIntersects, /*count_only=*/false, probe);
  }

  /// Shared `ExecuteKNearest` body for indexes without a dedicated
  /// nearest-neighbor traversal: expanding-ring range probes through this
  /// index's own `ExecuteBox` (so incremental indexes keep reorganizing
  /// under kNN workloads), drained into `sink` in (distance, id) order.
  /// Boxes and the live bounds come from the object store, so the ring
  /// tracks inserts and erases automatically.
  void RingKNearest(const Point<D>& pt, std::size_t k, Sink& sink) {
    TopKSink topk(k);
    ExpandingRingKNearest<D>(
        store_.boxes(), store_.live_count(), store_.bounds(), pt, k, &topk,
        [this](const Box<D>& cube, std::vector<ObjectId>* out) {
          VectorSink probe_sink(out);
          ExecuteBox(cube, RangePredicate::kIntersects, /*count_only=*/false,
                     probe_sink);
        });
    DrainTopK(&topk, &sink);
  }

  /// Work counters of the calling thread — the only stats view execution
  /// paths may write. Each concurrent thread owns one shard; `stats()`
  /// merges them.
  QueryStats& Stats() { return stats_.Local(); }

  ObjectStore<D> store_;
  ShardedQueryStats stats_;

 private:
  /// Adapts a box execution into join pairs: each emitted id pairs with the
  /// fixed partner id, on the side `hit_is_left` selects.
  class ProbePairSink final : public Sink {
   public:
    ProbePairSink(JoinEmitter* emit, ObjectId fixed, bool hit_is_left)
        : emit_(emit), fixed_(fixed), hit_is_left_(hit_is_left) {}
    void Emit(ObjectId id) override {
      if (hit_is_left_) {
        emit_->Add(id, fixed_);
      } else {
        emit_->Add(fixed_, id);
      }
    }
    void AddMatches(std::uint64_t) override {}

   private:
    JoinEmitter* emit_;
    ObjectId fixed_;
    bool hit_is_left_;
  };

  /// Filters a driver descent's candidates through the remaining terms of a
  /// conjunctive plan — the exact refinement the driver's own predicate
  /// check does not cover.
  class ConjunctionFilterSink final : public Sink {
   public:
    ConjunctionFilterSink(const ObjectStore<D>* store,
                          const std::vector<ConjunctiveTerm<D>>* terms,
                          std::size_t driver, Sink* out)
        : store_(store), terms_(terms), driver_(driver), out_(out) {}
    void Emit(ObjectId id) override {
      const Box<D>& b = store_->box(id);
      for (std::size_t t = 0; t < terms_->size(); ++t) {
        if (t == driver_) continue;
        if (!MatchesPredicate(b, (*terms_)[t].box, (*terms_)[t].predicate)) {
          return;
        }
      }
      out_->Emit(id);
    }
    void AddMatches(std::uint64_t n) override { out_->AddMatches(n); }

   private:
    const ObjectStore<D>* store_;
    const std::vector<ConjunctiveTerm<D>>* terms_;
    std::size_t driver_;
    Sink* out_;
  };

  /// Conjunctive plan execution: one descent with the smallest-volume term
  /// (sound for any driver — containment implies intersection and every
  /// index executes all three predicates exactly; the volume rule is just
  /// the cost heuristic), remaining terms applied as exact per-candidate
  /// filters. Never count-only: the filter needs ids, so count consumers
  /// simply count the emitted stream.
  void ExecuteConjunction(const std::vector<ConjunctiveTerm<D>>& terms,
                          Sink& sink) {
    const std::size_t driver = ConjunctionDriverIndex(terms);
    if (terms.size() == 1) {
      ExecuteBox(terms[driver].box, terms[driver].predicate,
                 /*count_only=*/false, sink);
      return;
    }
    ConjunctionFilterSink filter(&store_, &terms, driver, &sink);
    ExecuteBox(terms[driver].box, terms[driver].predicate,
               /*count_only=*/false, filter);
  }

  /// The locked body of `Execute`: type dispatch to the per-index
  /// primitives. The caller holds the lock side `ConvergedFor` selected.
  void Dispatch(const Query<D>& query, Sink& sink) {
    switch (query.type()) {
      case QueryType::kRange:
        ExecuteBox(query.box(), query.predicate(), /*count_only=*/false,
                   sink);
        return;
      case QueryType::kPoint: {
        const Box<D> point_box(query.point(), query.point());
        ExecuteBox(point_box, RangePredicate::kIntersects,
                   /*count_only=*/false, sink);
        return;
      }
      case QueryType::kCount:
        ExecuteBox(query.box(), query.predicate(), /*count_only=*/true, sink);
        return;
      case QueryType::kKNearest:
        ExecuteKNearest(query.point(), query.k(), sink);
        return;
      case QueryType::kConjunction:
        ExecuteConjunction(query.terms(), sink);
        return;
      case QueryType::kJoin:
        return;  // Routed to the PairSink overload before dispatch.
    }
  }

  /// Reader-writer arbitration between concurrent converged/static reads
  /// (shared) and mutations or reorganizing executions (exclusive).
  mutable std::shared_mutex mutex_;
};

}  // namespace quasii

#endif  // QUASII_COMMON_SPATIAL_INDEX_H_
