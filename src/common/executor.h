#ifndef QUASII_COMMON_EXECUTOR_H_
#define QUASII_COMMON_EXECUTOR_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/query.h"
#include "common/query_stats.h"
#include "common/spatial_index.h"
#include "common/task_scheduler.h"

namespace quasii {

/// Fixed-size thread pool — the inter-query concurrency entry point of the
/// execution layer (its intra-query sibling, the work-stealing
/// `TaskScheduler`, lives in common/task_scheduler.h). Deliberately
/// minimal: a single FIFO queue, no work stealing, no dynamic sizing, so
/// the thread ↔ work assignment of a deterministic submission order is
/// itself deterministic.
///
/// Every worker binds a distinct stats slot (1 .. size; slot 0 stays with
/// the caller thread), so tasks may drive `SpatialIndex::Execute`
/// concurrently and each thread's work counters land in its own shard.
/// Consequently the pool size is capped at `kStatsSlots - 1`.
class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    const int n = std::clamp(threads, 1, kStatsSlots - 1);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
  }

  /// Destruction is a full `Shutdown()`: every task submitted before the
  /// destructor runs — queued-but-unstarted ones included — executes to
  /// completion before the workers join. Tasks are never dropped.
  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Deterministic drain-and-join: signals the workers to exit once the
  /// queue is empty, then blocks until they have finished every task
  /// submitted so far and joined. This is the shutdown contract the query
  /// server builds on — an accepted (submitted) request cannot be dropped
  /// by tearing the pool down. Idempotent; `Submit` after `Shutdown` is a
  /// programming error (the task would never run).
  void Shutdown() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution by some worker. Never blocks.
  void Submit(std::function<void()> fn) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(fn));
      ++pending_;
    }
    cv_.notify_one();
  }

  /// Blocks until every task submitted so far has finished executing.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void WorkerLoop(int slot) {
    ScopedStatsSlot bind(slot);
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and nothing left to run
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Result of one query of a batch: ids for id-producing types (`kKNearest`
/// ids arrive in (distance, id) order), `count` for everything (`kCount`
/// never materializes ids, so there `ids` stays empty).
struct BatchResult {
  std::vector<ObjectId> ids;
  std::uint64_t count = 0;
};

/// Runs a batch of queries against ONE index on a thread pool, with
/// per-thread sinks and deterministic result merging: the batch is cut into
/// `pool->size()` contiguous chunks (a pure function of batch size and pool
/// size), each chunk's queries execute in order on one worker with that
/// worker's reused sinks, and every result lands in its query's own slot.
/// With no interleaving mutation, every query's result *set* (and kNN's
/// canonical (distance, id) order) equals the sequential loop's whatever
/// the scheduling; only the emission order inside a range result can vary
/// on a still-cracking adaptive index, since it follows the physical array
/// order the warm-up races to produce.
///
/// Thread safety is the index's own: `SpatialIndex::Execute` serializes
/// reorganizing executions and runs converged/static ones concurrently
/// under the shared lock. The executor adds none of its own locking around
/// the index.
template <int D>
class BatchExecutor {
 public:
  explicit BatchExecutor(ThreadPool* pool) : pool_(pool) {}

  /// Executes `queries` against `index`, returning per-query results in
  /// query order.
  std::vector<BatchResult> Run(SpatialIndex<D>* index,
                               std::span<const Query<D>> queries) {
    return Run(index, queries, nullptr);
  }

  /// As above, but additionally invokes `on_result(i, results[i])` on the
  /// executing worker thread the moment query `i` completes, so streaming
  /// consumers (latency recording, the query server's bookkeeping) need not
  /// wait for the whole batch. The callback runs concurrently from several
  /// workers and must be thread-safe; results are still returned in query
  /// order after the full batch drains.
  std::vector<BatchResult> Run(
      SpatialIndex<D>* index, std::span<const Query<D>> queries,
      const std::function<void(std::size_t, const BatchResult&)>& on_result) {
    std::vector<BatchResult> results(queries.size());
    const std::uint64_t version_before = index->store().version();
    const std::size_t threads =
        std::max<std::size_t>(1, static_cast<std::size_t>(pool_->size()));
    const std::size_t chunk = (queries.size() + threads - 1) / threads;
    for (std::size_t begin = 0; begin < queries.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, queries.size());
      pool_->Submit([index, queries, &results, &on_result, begin, end] {
        CountSink count_sink;
        for (std::size_t i = begin; i < end; ++i) {
          BatchResult& out = results[i];
          if (queries[i].type() == QueryType::kCount) {
            count_sink.Reset();
            index->Execute(queries[i], count_sink);
            out.count = count_sink.count();
          } else {
            // Sink straight into the result slot (a VectorSink is one
            // pointer store) — copying through a scratch vector would fold
            // pure memcpy into every throughput measurement on this path.
            VectorSink sink(&out.ids);
            index->Execute(queries[i], sink);
            out.count = out.ids.size();
          }
          if (on_result) on_result(i, out);
        }
      });
    }
    pool_->Wait();
    store_mutated_ = index->store().version() != version_before;
    return results;
  }

  /// Whether the store's mutation epoch moved while the last `Run` was in
  /// flight — i.e. some other thread inserted or erased, so the batch did
  /// not observe one population snapshot.
  bool store_mutated() const { return store_mutated_; }

 private:
  ThreadPool* pool_;
  bool store_mutated_ = false;
};

}  // namespace quasii

#endif  // QUASII_COMMON_EXECUTOR_H_
