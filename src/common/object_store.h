#ifndef QUASII_COMMON_OBJECT_STORE_H_
#define QUASII_COMMON_OBJECT_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "geometry/box.h"

namespace quasii {

/// The mutable id → MBB table behind every index's dynamic-data support.
///
/// Construction wraps the caller's dataset as a zero-copy *view* (the
/// bulk-load setting of the paper: ids are dataset positions, everything is
/// alive). The first `Insert`/`Erase` switches to copy-on-write: the boxes
/// are copied into an owned table with a per-slot liveness byte, and the
/// original dataset is never touched again — so several indexes sharing one
/// dataset each mutate their own store independently.
///
/// Semantics (the roster-wide mutation contract):
///  - `Insert(id, box)` succeeds iff `id` is not currently alive; ids past
///    the current slot range grow the table, and erased slots may be
///    re-inserted (possibly with a different box).
///  - `Erase(id)` succeeds iff `id` is alive; the slot's box stays readable
///    until a reinsert overwrites it (indexes use it to locate stale
///    copies), but `alive(id)` turns false immediately.
///  - `box(id)` may only be called for ids that are (or were) stored;
///    `boxes()` exposes the full slot table for id-indexed lookups (kNN
///    drivers) — only live ids may be dereferenced through it.
///
/// Concurrency: every accessor is a plain read with no hidden cache fills
/// (the live MBB is maintained eagerly by the mutations), so any number of
/// threads may read concurrently as long as mutations are excluded — the
/// locking discipline `SpatialIndex` enforces. `version()` is the mutation
/// epoch: it ticks once per accepted `Insert`/`Erase` (atomically, so it may
/// be polled without holding the index lock), letting a reader detect that
/// the population changed between two looks at the store.
template <int D>
class ObjectStore {
 public:
  explicit ObjectStore(const std::vector<Box<D>>& data)
      : view_(&data), live_count_(data.size()) {
    bounds_ = Box<D>::Empty();
    for (const Box<D>& b : data) bounds_.ExpandToInclude(b);
  }

  /// Upper bound (exclusive) of ids ever stored.
  std::size_t slots() const { return view_ ? view_->size() : boxes_.size(); }
  std::size_t live_count() const { return live_count_; }
  /// True once any `Insert`/`Erase` succeeded (the store owns its boxes).
  bool mutated() const { return view_ == nullptr; }

  /// Mutation epoch: incremented by every accepted `Insert`/`Erase`. Two
  /// equal reads bracket a span with no population change.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  bool alive(ObjectId id) const {
    if (view_) return id < view_->size();
    return id < alive_.size() && alive_[id] != 0;
  }

  const Box<D>& box(ObjectId id) const {
    return view_ ? (*view_)[id] : boxes_[id];
  }

  /// The id-indexed slot table (view or owned copy). Slots of erased ids
  /// hold their last box; only live ids may be dereferenced.
  const std::vector<Box<D>>& boxes() const {
    return view_ ? *view_ : boxes_;
  }

  bool Insert(ObjectId id, const Box<D>& b) {
    if (alive(id)) return false;
    Materialize();
    if (id >= boxes_.size()) {
      boxes_.resize(static_cast<std::size_t>(id) + 1);
      alive_.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    boxes_[id] = b;
    alive_[id] = 1;
    ++live_count_;
    bounds_.ExpandToInclude(b);
    version_.fetch_add(1, std::memory_order_release);
    return true;
  }

  bool Erase(ObjectId id) {
    if (!alive(id)) return false;
    Materialize();
    alive_[id] = 0;
    --live_count_;
    // The live MBB only shrinks when a boundary-touching box leaves; it is
    // recomputed here, eagerly, so `bounds()` stays a plain read that any
    // number of concurrent query threads may share. The trade: such an
    // erase costs O(live). Interior erases (the common case — uniform
    // victims rarely attain the hull) stay O(1), but data whose boxes all
    // touch one bounding plane pays the recompute per erase; if such an
    // erase-heavy workload ever matters, batch the shrink under the
    // exclusive lock rather than reintroducing a lazily-filled cache the
    // shared readers would race on.
    if (!StrictlyInside(boxes_[id], bounds_)) RecomputeBounds();
    version_.fetch_add(1, std::memory_order_release);
    return true;
  }

  /// MBB of the live objects — the kNN termination bound. Maintained
  /// eagerly: inserts expand it in place, erases of boundary boxes
  /// recompute it on the spot.
  const Box<D>& bounds() const { return bounds_; }

  /// Recovery entry point (`src/persist/`): replaces the whole population
  /// with snapshot state — the slot table, the liveness column, and the
  /// mutation epoch (the snapshot's LSN, so WAL replay continues exactly
  /// where the snapshot left off). Always lands in owned mode, even when
  /// the snapshot was taken from an unmutated view: recovery severs any
  /// tie to a caller's dataset vector. Live count and bounds are
  /// re-derived. Not thread-safe (nothing may query during recovery).
  void RestoreSlots(std::vector<Box<D>> boxes, std::vector<std::uint8_t> alive,
                    std::uint64_t version) {
    boxes_ = std::move(boxes);
    alive_ = std::move(alive);
    alive_.resize(boxes_.size(), 0);
    view_ = nullptr;
    live_count_ = 0;
    for (const std::uint8_t a : alive_) live_count_ += a != 0;
    RecomputeBounds();
    version_.store(version, std::memory_order_release);
  }

  /// Structural self-check: the liveness column, live count, and
  /// eagerly-maintained bounds agree. False fills `why` (when non-null)
  /// with the first violation. Debug/recovery validation — O(live).
  bool CheckInvariants(std::string* why) const {
    if (!view_ && alive_.size() != boxes_.size()) {
      if (why) *why = "object store: alive column size != slot count";
      return false;
    }
    std::size_t live = 0;
    Box<D> mbb = Box<D>::Empty();
    ForEachLive([&](ObjectId, const Box<D>& b) {
      ++live;
      mbb.ExpandToInclude(b);
    });
    if (live != live_count_) {
      if (why) *why = "object store: live_count disagrees with live column";
      return false;
    }
    if (live > 0 && !(mbb == bounds_)) {
      if (why) *why = "object store: bounds are not the exact live MBB";
      return false;
    }
    return true;
  }

  /// Invokes `fn(id, box)` for every live object, in ascending id order.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    if (view_) {
      for (ObjectId id = 0; id < view_->size(); ++id) fn(id, (*view_)[id]);
      return;
    }
    for (ObjectId id = 0; id < boxes_.size(); ++id) {
      if (alive_[id]) fn(id, boxes_[id]);
    }
  }

 private:
  /// Copy-on-write switch: copies the viewed dataset into the owned table.
  void Materialize() {
    if (!view_) return;
    boxes_ = *view_;
    alive_.assign(boxes_.size(), 1);
    view_ = nullptr;
  }

  void RecomputeBounds() {
    bounds_ = Box<D>::Empty();
    ForEachLive([this](ObjectId, const Box<D>& b) {
      bounds_.ExpandToInclude(b);
    });
  }

  static bool StrictlyInside(const Box<D>& b, const Box<D>& outer) {
    for (int d = 0; d < D; ++d) {
      if (b.lo[d] <= outer.lo[d] || b.hi[d] >= outer.hi[d]) return false;
    }
    return true;
  }

  const std::vector<Box<D>>* view_;
  std::vector<Box<D>> boxes_;
  std::vector<std::uint8_t> alive_;
  std::size_t live_count_ = 0;
  Box<D> bounds_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace quasii

#endif  // QUASII_COMMON_OBJECT_STORE_H_
