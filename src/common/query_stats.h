#ifndef QUASII_COMMON_QUERY_STATS_H_
#define QUASII_COMMON_QUERY_STATS_H_

#include <array>
#include <cstdint>
#include <ostream>

namespace quasii {

/// Work counters accumulated while executing queries. Every index maintains
/// one instance per executing thread (see `ShardedQueryStats`); the
/// experiment harness snapshots the merged view per query to reproduce the
/// paper's "objects considered for intersection" analyses (Section 6.2).
struct QueryStats {
  /// Boxes tested for intersection against the query (candidate objects).
  std::uint64_t objects_tested = 0;
  /// Index partitions (cells, nodes, slices) visited.
  std::uint64_t partitions_visited = 0;
  /// Reorganization passes over some array segment (cracks / splits).
  std::uint64_t cracks = 0;
  /// Entries relocated while reorganizing data (incremental indexes).
  std::uint64_t objects_moved = 0;
  /// Candidates discarded by de-duplication (replication-based indexes).
  std::uint64_t duplicates_removed = 0;
  /// 1d intervals a query decomposed into (SFC-based indexes).
  std::uint64_t intervals = 0;
  /// Column bytes read by leaf scans (bound or packed columns, live-byte
  /// probes, emitted ids). Only `CrackArray::StreamScan`-based paths report
  /// it; a packed (compressed) leaf advances it by its packed footprint, so
  /// the counter directly exposes the scan working-set shrink.
  std::uint64_t bytes_scanned = 0;

  void Reset() { *this = QueryStats{}; }

  QueryStats& operator+=(const QueryStats& o) {
    objects_tested += o.objects_tested;
    partitions_visited += o.partitions_visited;
    cracks += o.cracks;
    objects_moved += o.objects_moved;
    duplicates_removed += o.duplicates_removed;
    intervals += o.intervals;
    bytes_scanned += o.bytes_scanned;
    return *this;
  }

  friend QueryStats operator-(QueryStats a, const QueryStats& b) {
    a.objects_tested -= b.objects_tested;
    a.partitions_visited -= b.partitions_visited;
    a.cracks -= b.cracks;
    a.objects_moved -= b.objects_moved;
    a.duplicates_removed -= b.duplicates_removed;
    a.intervals -= b.intervals;
    a.bytes_scanned -= b.bytes_scanned;
    return a;
  }
};

inline std::ostream& operator<<(std::ostream& os, const QueryStats& s) {
  return os << "{tested=" << s.objects_tested
            << " visited=" << s.partitions_visited << " cracks=" << s.cracks
            << " moved=" << s.objects_moved
            << " dedup=" << s.duplicates_removed
            << " intervals=" << s.intervals
            << " bytes_scanned=" << s.bytes_scanned << '}';
}

/// Number of per-thread counter slots an index carries. Slot 0 belongs to
/// unregistered threads (the main thread of a single-threaded run); the
/// `ThreadPool` binds each worker to one of the remaining slots, so
/// concurrency is bounded at `kStatsSlots - 1` pool workers.
inline constexpr int kStatsSlots = 64;

namespace internal {
inline thread_local int tls_stats_slot = 0;
}  // namespace internal

/// The counter slot the calling thread writes to (0 unless bound).
inline int CurrentStatsSlot() { return internal::tls_stats_slot; }

/// Binds the calling thread to a stats slot for its lifetime. Every thread
/// that executes queries concurrently with others MUST hold a distinct slot
/// (the `ThreadPool` does this for its workers); two unbound threads would
/// otherwise race on slot 0.
class ScopedStatsSlot {
 public:
  explicit ScopedStatsSlot(int slot) : prev_(internal::tls_stats_slot) {
    internal::tls_stats_slot = slot;
  }
  ~ScopedStatsSlot() { internal::tls_stats_slot = prev_; }
  ScopedStatsSlot(const ScopedStatsSlot&) = delete;
  ScopedStatsSlot& operator=(const ScopedStatsSlot&) = delete;

 private:
  int prev_;
};

/// One cache line per slot: concurrent threads bump their own counters
/// without invalidating each other's lines (the sharing would otherwise
/// serialize the lock-free read paths right back).
struct alignas(64) PaddedQueryStats {
  QueryStats stats;
};

/// Mergeable per-thread work counters: execution paths write the calling
/// thread's `Local()` slot with plain stores, and `Merged()` folds all slots
/// into one total. Writes are unsynchronized by design — `Merged()`/`Reset()`
/// are only meaningful while no query is in flight (the harness reads stats
/// between phases, never mid-batch).
class ShardedQueryStats {
 public:
  QueryStats& Local() {
    return slots_[static_cast<std::size_t>(CurrentStatsSlot())].stats;
  }

  const QueryStats& Local() const {
    return slots_[static_cast<std::size_t>(CurrentStatsSlot())].stats;
  }

  QueryStats Merged() const {
    QueryStats total;
    for (const PaddedQueryStats& slot : slots_) total += slot.stats;
    return total;
  }

  void Reset() {
    for (PaddedQueryStats& slot : slots_) slot.stats.Reset();
  }

 private:
  std::array<PaddedQueryStats, kStatsSlots> slots_{};
};

}  // namespace quasii

#endif  // QUASII_COMMON_QUERY_STATS_H_
