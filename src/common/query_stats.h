#ifndef QUASII_COMMON_QUERY_STATS_H_
#define QUASII_COMMON_QUERY_STATS_H_

#include <cstdint>
#include <ostream>

namespace quasii {

/// Work counters accumulated while executing queries. Every index maintains
/// one instance; the experiment harness snapshots it per query to reproduce
/// the paper's "objects considered for intersection" analyses (Section 6.2).
struct QueryStats {
  /// Boxes tested for intersection against the query (candidate objects).
  std::uint64_t objects_tested = 0;
  /// Index partitions (cells, nodes, slices) visited.
  std::uint64_t partitions_visited = 0;
  /// Reorganization passes over some array segment (cracks / splits).
  std::uint64_t cracks = 0;
  /// Entries relocated while reorganizing data (incremental indexes).
  std::uint64_t objects_moved = 0;
  /// Candidates discarded by de-duplication (replication-based indexes).
  std::uint64_t duplicates_removed = 0;
  /// 1d intervals a query decomposed into (SFC-based indexes).
  std::uint64_t intervals = 0;

  void Reset() { *this = QueryStats{}; }

  QueryStats& operator+=(const QueryStats& o) {
    objects_tested += o.objects_tested;
    partitions_visited += o.partitions_visited;
    cracks += o.cracks;
    objects_moved += o.objects_moved;
    duplicates_removed += o.duplicates_removed;
    intervals += o.intervals;
    return *this;
  }

  friend QueryStats operator-(QueryStats a, const QueryStats& b) {
    a.objects_tested -= b.objects_tested;
    a.partitions_visited -= b.partitions_visited;
    a.cracks -= b.cracks;
    a.objects_moved -= b.objects_moved;
    a.duplicates_removed -= b.duplicates_removed;
    a.intervals -= b.intervals;
    return a;
  }
};

inline std::ostream& operator<<(std::ostream& os, const QueryStats& s) {
  return os << "{tested=" << s.objects_tested
            << " visited=" << s.partitions_visited << " cracks=" << s.cracks
            << " moved=" << s.objects_moved
            << " dedup=" << s.duplicates_removed
            << " intervals=" << s.intervals << '}';
}

}  // namespace quasii

#endif  // QUASII_COMMON_QUERY_STATS_H_
