#ifndef QUASII_COMMON_SIMD_H_
#define QUASII_COMMON_SIMD_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "geometry/point.h"

#if defined(__x86_64__) || defined(__i386__)
#define QUASII_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define QUASII_SIMD_NEON 1
#include <arm_neon.h>
#endif

// Explicit SIMD kernels for the leaf-scan hot path.
//
// Every kernel exists in a portable scalar form plus (where the target
// supports it) a vector form: AVX2 on x86-64 (compiled via function-level
// `target` attributes so the rest of the binary stays baseline), NEON on
// aarch64 (baseline there, no dispatch needed). Which form runs is decided
// once at startup from cpuid — `__builtin_cpu_supports("avx2")` — and cached;
// `QUASII_FORCE_SCALAR=1` in the environment pins the scalar tier, and
// `ForceTier()` lets tests and the microbench A/B harness flip tiers at
// runtime. All tiers are bit-identical: the vector kernels use ordered-quiet
// float compares, which agree with the scalar `<=`/`>=` on every non-NaN
// input, and the compaction kernel preserves id order exactly.
//
// The kernels deliberately mirror the three shapes `CrackArray::StreamScan`
// needs and nothing more:
//   MaskLeGe    mask[i] &= (le_col[i] <= le_bound) & (ge_col[i] >= ge_bound)
//   MaskCount   sum of 0/1 mask bytes
//   CompactIds  order-preserving gather of ids[i] where mask[i] != 0
//   MaskPackedLe/Ge  the same interval tests over bit-packed columns
//                    (see packed_column.h for the layout contract)

namespace quasii::simd {

enum class Tier : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

inline const char* TierName(Tier t) {
  switch (t) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

inline std::ostream& operator<<(std::ostream& os, Tier t) {
  return os << TierName(t);
}

/// Best tier the hardware supports, ignoring overrides.
inline Tier DetectTier() {
#if defined(QUASII_SIMD_X86)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") ? Tier::kAvx2 : Tier::kScalar;
#elif defined(QUASII_SIMD_NEON)
  return Tier::kNeon;
#else
  return Tier::kScalar;
#endif
}

namespace internal {
inline std::atomic<Tier>& TierState() {
  static std::atomic<Tier> tier = [] {
    const char* force = std::getenv("QUASII_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1' && force[1] == '\0') {
      return Tier::kScalar;
    }
    return DetectTier();
  }();
  return tier;
}
}  // namespace internal

/// The tier every kernel dispatches on. Resolved once from
/// `QUASII_FORCE_SCALAR` + cpuid, then cached; cheap to read per scan.
inline Tier ActiveTier() {
  return internal::TierState().load(std::memory_order_relaxed);
}

/// Overrides the active tier (microbench A/B, tests). Requests for a tier
/// the hardware cannot run are clamped to the detected one; `kScalar` is
/// always honored. Returns the tier actually installed.
inline Tier ForceTier(Tier t) {
  if (t != Tier::kScalar && t != DetectTier()) t = DetectTier();
  internal::TierState().store(t, std::memory_order_relaxed);
  return t;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the semantics; vector tiers must match
// them bit-for-bit.

inline void MaskLeGeScalar(const Scalar* le_col, Scalar le_bound,
                           const Scalar* ge_col, Scalar ge_bound,
                           std::uint8_t* mask, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<std::uint8_t>((le_col[i] <= le_bound) &
                                         (ge_col[i] >= ge_bound));
  }
}

inline std::uint64_t MaskCountScalar(const std::uint8_t* mask, std::size_t n) {
  std::uint64_t matches = 0;
  for (std::size_t i = 0; i < n; ++i) matches += mask[i];
  return matches;
}

inline std::size_t CompactIdsScalar(const ObjectId* ids,
                                    const std::uint8_t* mask, std::size_t n,
                                    ObjectId* out) {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[m] = ids[i];
    m += mask[i];
  }
  return m;
}

// ---------------------------------------------------------------------------
// AVX2 tier. Each function carries its own `target("avx2")` so the
// translation unit can stay baseline x86-64; they are only ever called after
// the cpuid check in ActiveTier().

#if defined(QUASII_SIMD_X86)

namespace internal {

/// Packs the eight 32-bit lane masks of `m32` (0 / 0xFFFFFFFF) into eight
/// bytes of 0 / 1, in lane order.
__attribute__((target("avx2"))) inline __m128i PackLaneMaskToBytes(
    __m256i m32) {
  const __m128i lo = _mm256_castsi256_si128(m32);
  const __m128i hi = _mm256_extracti128_si256(m32, 1);
  const __m128i p16 = _mm_packs_epi32(lo, hi);
  const __m128i p8 = _mm_packs_epi16(p16, _mm_setzero_si128());
  return _mm_and_si128(p8, _mm_set1_epi8(1));
}

/// Shuffle table for the 8-lane compress: entry `m` lists, in order, the lane
/// indices whose mask bit is set (padding is irrelevant — padded lanes land
/// past the survivor count and are overwritten by the next block).
inline constexpr auto kCompressIdx = [] {
  std::array<std::array<std::uint8_t, 8>, 256> t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int j = 0; j < 8; ++j) {
      if ((m >> j) & 1) t[static_cast<std::size_t>(m)]
                         [static_cast<std::size_t>(k++)] =
            static_cast<std::uint8_t>(j);
    }
  }
  return t;
}();

}  // namespace internal

__attribute__((target("avx2"))) inline void MaskLeGeAvx2(
    const Scalar* le_col, Scalar le_bound, const Scalar* ge_col,
    Scalar ge_bound, std::uint8_t* mask, std::size_t n) {
  static_assert(sizeof(Scalar) == 4, "AVX2 kernels assume float columns");
  const __m256 le_b = _mm256_set1_ps(le_bound);
  const __m256 ge_b = _mm256_set1_ps(ge_bound);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(le_col + i);
    const __m256 b = _mm256_loadu_ps(ge_col + i);
    const __m256 ca = _mm256_cmp_ps(a, le_b, _CMP_LE_OQ);
    const __m256 cb = _mm256_cmp_ps(b, ge_b, _CMP_GE_OQ);
    const __m256i m32 = _mm256_castps_si256(_mm256_and_ps(ca, cb));
    const __m128i hit = internal::PackLaneMaskToBytes(m32);
    const __m128i old =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + i));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(mask + i),
                     _mm_and_si128(old, hit));
  }
  MaskLeGeScalar(le_col + i, le_bound, ge_col + i, ge_bound, mask + i, n - i);
}

__attribute__((target("avx2"))) inline std::uint64_t MaskCountAvx2(
    const std::uint8_t* mask, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         MaskCountScalar(mask + i, n - i);
}

__attribute__((target("avx2"))) inline std::size_t CompactIdsAvx2(
    const ObjectId* ids, const std::uint8_t* mask, std::size_t n,
    ObjectId* out) {
  static_assert(sizeof(ObjectId) == 4, "compress kernel assumes 32-bit ids");
  std::size_t m = 0;
  std::size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 8 <= n; i += 8) {
    const __m128i mb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mask + i));
    const unsigned bits =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpgt_epi8(mb, zero))) &
        0xFFu;
    const __m128i idx8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
        internal::kCompressIdx[bits].data()));
    const __m256i idx = _mm256_cvtepu8_epi32(idx8);
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    // The store writes a full 8-lane block at out+m; because m <= i, it stays
    // inside an `out` buffer sized n, and the tail lanes are overwritten by
    // the next block (or are past the returned count).
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + m),
                        _mm256_permutevar8x32_epi32(v, idx));
    m += static_cast<std::size_t>(std::popcount(bits));
  }
  return m + CompactIdsScalar(ids + i, mask + i, n - i, out + m);
}

#endif  // QUASII_SIMD_X86

// ---------------------------------------------------------------------------
// NEON tier (aarch64). NEON is baseline on aarch64, so no target attributes
// or cpuid are needed; count and compaction stay scalar (no movemask — the
// branchless scalar compaction is already strong there).

#if defined(QUASII_SIMD_NEON)

inline void MaskLeGeNeon(const Scalar* le_col, Scalar le_bound,
                         const Scalar* ge_col, Scalar ge_bound,
                         std::uint8_t* mask, std::size_t n) {
  static_assert(sizeof(Scalar) == 4, "NEON kernels assume float columns");
  const float32x4_t le_b = vdupq_n_f32(le_bound);
  const float32x4_t ge_b = vdupq_n_f32(ge_bound);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32x4_t c0 = vandq_u32(vcleq_f32(vld1q_f32(le_col + i), le_b),
                                    vcgeq_f32(vld1q_f32(ge_col + i), ge_b));
    const uint32x4_t c1 =
        vandq_u32(vcleq_f32(vld1q_f32(le_col + i + 4), le_b),
                  vcgeq_f32(vld1q_f32(ge_col + i + 4), ge_b));
    // Narrow 2x4x32-bit lane masks to 8 bytes of 0/1 and AND into the mask.
    const uint16x8_t n16 = vcombine_u16(vmovn_u32(c0), vmovn_u32(c1));
    const uint8x8_t hit = vand_u8(vmovn_u16(n16), vdup_n_u8(1));
    vst1_u8(mask + i, vand_u8(vld1_u8(mask + i), hit));
  }
  MaskLeGeScalar(le_col + i, le_bound, ge_col + i, ge_bound, mask + i, n - i);
}

#endif  // QUASII_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatching entry points. One relaxed atomic load and a predictable branch
// per kernel call — noise against the O(n) body.

inline void MaskLeGe(const Scalar* le_col, Scalar le_bound,
                     const Scalar* ge_col, Scalar ge_bound, std::uint8_t* mask,
                     std::size_t n) {
  switch (ActiveTier()) {
#if defined(QUASII_SIMD_X86)
    case Tier::kAvx2:
      MaskLeGeAvx2(le_col, le_bound, ge_col, ge_bound, mask, n);
      return;
#endif
#if defined(QUASII_SIMD_NEON)
    case Tier::kNeon:
      MaskLeGeNeon(le_col, le_bound, ge_col, ge_bound, mask, n);
      return;
#endif
    default:
      MaskLeGeScalar(le_col, le_bound, ge_col, ge_bound, mask, n);
      return;
  }
}

inline std::uint64_t MaskCount(const std::uint8_t* mask, std::size_t n) {
#if defined(QUASII_SIMD_X86)
  if (ActiveTier() == Tier::kAvx2) return MaskCountAvx2(mask, n);
#endif
  return MaskCountScalar(mask, n);
}

inline std::size_t CompactIds(const ObjectId* ids, const std::uint8_t* mask,
                              std::size_t n, ObjectId* out) {
#if defined(QUASII_SIMD_X86)
  if (ActiveTier() == Tier::kAvx2) return CompactIdsAvx2(ids, mask, n, out);
#endif
  return CompactIdsScalar(ids, mask, n, out);
}

}  // namespace quasii::simd

#endif  // QUASII_COMMON_SIMD_H_
