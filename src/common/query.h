#ifndef QUASII_COMMON_QUERY_H_
#define QUASII_COMMON_QUERY_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/box.h"

namespace quasii {

template <int D>
class SpatialIndex;

/// The query types of the execution engine (the FESTIval-style query_type ×
/// predicate matrix, adapted to the paper's volumetric setting):
///  - kRange:       all objects whose MBB relates to `box` per `predicate`;
///  - kPoint:       all objects whose MBB contains `point` (a zero-extent
///                  range query — closed boxes make `[p, p]` a valid box);
///  - kCount:       the *number* of `kRange` matches — executed without ever
///                  materializing ids (sinks receive anonymous match counts);
///  - kKNearest:    the `k` objects with smallest MBB distance to `point`,
///                  ties broken by smaller id;
///  - kJoin:        all intersecting (left, right) pairs between this index
///                  and a second set — another index or a box stream —
///                  executed via the `PairSink` overload of `Execute`;
///  - kConjunction: all objects matching *every* term of a conjunctive
///                  range plan (one descent drives, the rest filter).
enum class QueryType { kRange, kPoint, kCount, kKNearest, kJoin, kConjunction };

/// Topological predicate of a range/count query, relating a candidate
/// object's MBB `b` to the query box `q`. Both containment predicates imply
/// intersection, so every index's intersection traversal is a valid
/// candidate generator for all three.
enum class RangePredicate {
  kIntersects,   ///< b ∩ q ≠ ∅ (the paper's only query type)
  kContains,     ///< b ⊇ q: the object covers the whole query box
  kContainedBy,  ///< b ⊆ q: the object lies entirely inside the query box
};

/// One predicate of a conjunctive range plan: a box plus the topological
/// predicate relating candidate MBBs to it. An object matches the plan when
/// it matches every term.
template <int D>
struct ConjunctiveTerm {
  Box<D> box;
  RangePredicate predicate = RangePredicate::kIntersects;
};

/// Aborts with a clear message on an invalid query description or a
/// misrouted execution — construction-time validation instead of silent
/// misbehaviour inside dispatch.
[[noreturn]] inline void QueryApiAbort(const char* msg) {
  std::fprintf(stderr, "quasii query API: %s\n", msg);
  std::abort();
}

/// Whether every coordinate is a finite number — the validation gate the
/// `Try*` factories apply to untrusted (wire/parsed) descriptions. NaN
/// poisons every comparison-based traversal and infinities are reserved
/// for the sentinel empty box, so neither belongs in a deserialized query.
template <int D>
bool IsFinite(const Point<D>& p) {
  for (int d = 0; d < D; ++d) {
    if (!std::isfinite(p[d])) return false;
  }
  return true;
}

template <int D>
bool IsFinite(const Box<D>& b) {
  for (int d = 0; d < D; ++d) {
    if (!std::isfinite(b.lo[d]) || !std::isfinite(b.hi[d])) return false;
  }
  return true;
}

/// The driver of a conjunctive plan: the term whose box has the smallest
/// volume generates the candidates (the first minimal term wins, so the
/// choice is deterministic); every other term filters the candidates
/// exactly. Any term is a sound driver — containment predicates imply
/// intersection and each index executes all three predicates exactly — the
/// volume rule is purely a cost heuristic. Shared by `SpatialIndex`'s
/// dispatch and by the adaptive indexes' `ConvergedFor` replays so both
/// route identically.
template <int D>
std::size_t ConjunctionDriverIndex(
    const std::vector<ConjunctiveTerm<D>>& terms) {
  std::size_t best = 0;
  double best_volume = terms[0].box.Volume();
  for (std::size_t i = 1; i < terms.size(); ++i) {
    const double v = terms[i].box.Volume();
    if (v < best_volume) {
      best = i;
      best_volume = v;
    }
  }
  return best;
}

/// A typed query description, consumed by `SpatialIndex::Execute`.
/// Construction is factory-only: the `Make*`/`Try*` statics (or the free
/// `RangeQuery`/`PointQuery`/`CountQuery`/`KNearestQuery`/`JoinQuery`/
/// `ConjunctiveQuery` wrappers) validate every description up front, so a
/// malformed query — a `k == 0` kNN, a join without a second set, a
/// conjunction without terms — fails at construction with a clear error
/// instead of inside dispatch. `Try*` variants return `std::nullopt`
/// instead of aborting, for callers that validate user input.
template <int D>
class Query {
 public:
  /// A default-constructed query is a valid degenerate range: its empty box
  /// matches nothing. Exists so op streams and containers can
  /// default-construct and overwrite; every meaningful query comes from a
  /// factory.
  Query() = default;

  QueryType type() const { return type_; }
  RangePredicate predicate() const { return predicate_; }
  /// kRange / kCount: the query box.
  const Box<D>& box() const { return box_; }
  /// kPoint / kKNearest: the query point.
  const Point<D>& point() const { return point_; }
  /// kKNearest: number of neighbors requested (>= 1 by construction).
  std::size_t k() const { return k_; }
  /// kJoin: the right-hand index (the executing index itself on a
  /// self-join); null on stream joins.
  SpatialIndex<D>* join_other() const { return join_other_; }
  /// kJoin: the right-hand box stream (pair right ids are stream
  /// positions); null on index-vs-index joins.
  const std::vector<Box<D>>* join_stream() const { return join_stream_; }
  /// kConjunction: the ANDed terms (at least one by construction).
  const std::vector<ConjunctiveTerm<D>>& terms() const { return terms_; }

  static Query MakeRange(const Box<D>& box, RangePredicate predicate) {
    Query q;
    q.type_ = QueryType::kRange;
    q.predicate_ = predicate;
    q.box_ = box;
    return q;
  }

  static Query MakePoint(const Point<D>& point) {
    Query q;
    q.type_ = QueryType::kPoint;
    q.point_ = point;
    return q;
  }

  static Query MakeCount(const Box<D>& box, RangePredicate predicate) {
    Query q;
    q.type_ = QueryType::kCount;
    q.predicate_ = predicate;
    q.box_ = box;
    return q;
  }

  /// Validating variants for untrusted descriptions (the wire protocol and
  /// other parsers): reject NaN/infinite coordinates, which the trusting
  /// `Make*` factories accept unchecked from in-process callers.
  static std::optional<Query> TryRange(const Box<D>& box,
                                       RangePredicate predicate) {
    if (!IsFinite(box)) return std::nullopt;
    return MakeRange(box, predicate);
  }

  static std::optional<Query> TryPoint(const Point<D>& point) {
    if (!IsFinite(point)) return std::nullopt;
    return MakePoint(point);
  }

  static std::optional<Query> TryCount(const Box<D>& box,
                                       RangePredicate predicate) {
    if (!IsFinite(box)) return std::nullopt;
    return MakeCount(box, predicate);
  }

  static std::optional<Query> TryKNearest(const Point<D>& point,
                                          std::size_t k) {
    if (k == 0 || !IsFinite(point)) return std::nullopt;
    Query q;
    q.type_ = QueryType::kKNearest;
    q.point_ = point;
    q.k_ = k;
    return q;
  }

  static Query MakeKNearest(const Point<D>& point, std::size_t k) {
    auto q = TryKNearest(point, k);
    if (!q) QueryApiAbort("kNearest query requires k >= 1");
    return *std::move(q);
  }

  static std::optional<Query> TryJoin(SpatialIndex<D>* other) {
    if (other == nullptr) return std::nullopt;
    Query q;
    q.type_ = QueryType::kJoin;
    q.join_other_ = other;
    return q;
  }

  /// Index-vs-index join; pass the executing index itself for a self-join.
  static Query MakeJoin(SpatialIndex<D>& other) {
    return *TryJoin(&other);
  }

  static std::optional<Query> TryJoin(const std::vector<Box<D>>* stream) {
    if (stream == nullptr) return std::nullopt;
    Query q;
    q.type_ = QueryType::kJoin;
    q.join_stream_ = stream;
    return q;
  }

  /// Index-vs-stream join: `stream` is borrowed and must outlive every
  /// `Execute` of this query. Empty boxes in the stream match nothing.
  static Query MakeJoin(const std::vector<Box<D>>& stream) {
    return *TryJoin(&stream);
  }

  static std::optional<Query> TryConjunction(
      std::vector<ConjunctiveTerm<D>> terms) {
    if (terms.empty()) return std::nullopt;
    Query q;
    q.type_ = QueryType::kConjunction;
    q.terms_ = std::move(terms);
    return q;
  }

  static Query MakeConjunction(std::vector<ConjunctiveTerm<D>> terms) {
    auto q = TryConjunction(std::move(terms));
    if (!q) QueryApiAbort("conjunctive query requires at least one term");
    return *std::move(q);
  }

 private:
  QueryType type_ = QueryType::kRange;
  RangePredicate predicate_ = RangePredicate::kIntersects;
  Box<D> box_;
  Point<D> point_{};
  std::size_t k_ = 0;
  SpatialIndex<D>* join_other_ = nullptr;
  const std::vector<Box<D>>* join_stream_ = nullptr;
  std::vector<ConjunctiveTerm<D>> terms_;
};

using Query2 = Query<2>;
using Query3 = Query<3>;

template <int D>
Query<D> RangeQuery(const Box<D>& box,
                    RangePredicate predicate = RangePredicate::kIntersects) {
  return Query<D>::MakeRange(box, predicate);
}

template <int D>
Query<D> PointQuery(const Point<D>& point) {
  return Query<D>::MakePoint(point);
}

template <int D>
Query<D> CountQuery(const Box<D>& box,
                    RangePredicate predicate = RangePredicate::kIntersects) {
  return Query<D>::MakeCount(box, predicate);
}

template <int D>
Query<D> KNearestQuery(const Point<D>& point, std::size_t k) {
  return Query<D>::MakeKNearest(point, k);
}

/// All intersecting (left, right) pairs between the executing index and
/// `other` — pass the executing index itself for a self-join (each
/// unordered pair reported once, never `(id, id)`).
template <int D>
Query<D> JoinQuery(SpatialIndex<D>& other) {
  return Query<D>::MakeJoin(other);
}

/// All intersecting (left id, stream position) pairs between the executing
/// index and a borrowed box stream.
template <int D>
Query<D> JoinQuery(const std::vector<Box<D>>& stream) {
  return Query<D>::MakeJoin(stream);
}

template <int D>
Query<D> ConjunctiveQuery(std::vector<ConjunctiveTerm<D>> terms) {
  return Query<D>::MakeConjunction(std::move(terms));
}

/// The box that drives a query's single-index descent — what the adaptive
/// indexes replay in `ConvergedFor`: the query box for ranges/counts,
/// `[p, p]` for point probes, the driver term's box for conjunctions. Must
/// mirror `SpatialIndex`'s dispatch exactly. Not meaningful for kKNearest
/// or kJoin (their replays answer before needing a box).
template <int D>
Box<D> DescentBox(const Query<D>& q) {
  switch (q.type()) {
    case QueryType::kPoint:
      return Box<D>(q.point(), q.point());
    case QueryType::kConjunction:
      return q.terms()[ConjunctionDriverIndex(q.terms())].box;
    default:
      return q.box();
  }
}

/// The exact refinement test of a range/count query.
template <int D>
constexpr bool MatchesPredicate(const Box<D>& object, const Box<D>& q,
                                RangePredicate predicate) {
  switch (predicate) {
    case RangePredicate::kIntersects:
      return object.Intersects(q);
    case RangePredicate::kContains:
      return object.ContainsBox(q);
    case RangePredicate::kContainedBy:
      return q.ContainsBox(object);
  }
  return false;
}

/// Result sink of the execution engine. Indexes stream matches into a sink
/// instead of appending to a vector, so aggregate queries never materialize
/// ids and bulk paths (a fully covered slice, a contained R-Tree node) cost
/// one virtual call instead of one per object.
///
/// Contract: `Emit`/`EmitRun` deliver matching object ids (unique within a
/// query); `AddMatches` delivers anonymous matches and is only used by the
/// count-only execution path (`QueryType::kCount`) — an id-collecting sink
/// never sees it for other query types. For `kKNearest`, ids arrive in
/// ascending (distance, id) order.
class Sink {
 public:
  virtual ~Sink() = default;

  /// One matching object.
  virtual void Emit(ObjectId id) = 0;

  /// A contiguous run of matching ids (bulk fast path).
  virtual void EmitRun(const ObjectId* ids, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) Emit(ids[i]);
  }

  /// `n` anonymous matches (count-only execution paths).
  virtual void AddMatches(std::uint64_t n) = 0;
};

/// Collects ids into a caller-owned vector — the general-purpose sink of
/// tests and measurement loops.
class VectorSink final : public Sink {
 public:
  explicit VectorSink(std::vector<ObjectId>* out) : out_(out) {}
  void Emit(ObjectId id) override { out_->push_back(id); }
  void EmitRun(const ObjectId* ids, std::size_t n) override {
    out_->insert(out_->end(), ids, ids + n);
  }
  /// Anonymous matches carry no ids; pair count queries with a `CountSink`.
  void AddMatches(std::uint64_t) override {}

 private:
  std::vector<ObjectId>* out_;
};

/// Counts matches without storing anything — the sink for `kCount` queries.
class CountSink final : public Sink {
 public:
  void Emit(ObjectId) override { ++count_; }
  void EmitRun(const ObjectId*, std::size_t n) override { count_ += n; }
  void AddMatches(std::uint64_t n) override { count_ += n; }
  std::uint64_t count() const { return count_; }
  void Reset() { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

/// An ordered join result pair: `first` identifies an object of the
/// executing (left) index, `second` an object of the right-hand set — the
/// partner index's object id, or the stream position on stream joins.
using IdPair = std::pair<ObjectId, ObjectId>;

/// Result sink of join execution (`Execute(query, PairSink&)`). Pairs
/// arrive canonicalized: unique, in ascending (left, right) order, and on
/// self-joins normalized to `left < right` — so every implementation
/// reports the bit-identical pair sequence for the same inputs.
class PairSink {
 public:
  virtual ~PairSink() = default;

  /// One qualifying pair.
  virtual void EmitPair(ObjectId left, ObjectId right) = 0;
};

/// Collects pairs into a caller-owned vector.
class VectorPairSink final : public PairSink {
 public:
  explicit VectorPairSink(std::vector<IdPair>* out) : out_(out) {}
  void EmitPair(ObjectId left, ObjectId right) override {
    out_->emplace_back(left, right);
  }

 private:
  std::vector<IdPair>* out_;
};

/// Counts pairs without storing them.
class CountPairSink final : public PairSink {
 public:
  void EmitPair(ObjectId, ObjectId) override { ++count_; }
  std::uint64_t count() const { return count_; }
  void Reset() { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

/// Collects the raw candidate pairs of one join execution and
/// canonicalizes them at `Flush` — the single home of the join determinism
/// guarantee. Implementations `Add` pairs in whatever order their traversal
/// produces (including duplicates, and both orientations of a self-join
/// pair); `Flush` normalizes self-join pairs to (min, max) and drops the
/// `(id, id)` diagonal, sorts lexicographically, deduplicates, and streams
/// the survivors to the `PairSink`. Call `Flush` exactly once, at the end
/// of the execution.
class JoinEmitter {
 public:
  JoinEmitter(bool self_join, PairSink* sink)
      : self_join_(self_join), sink_(sink) {}

  /// One candidate pair (already exact — implementations only `Add` pairs
  /// whose boxes truly intersect).
  void Add(ObjectId left, ObjectId right) { pairs_.emplace_back(left, right); }

  void Flush() {
    if (self_join_) {
      std::size_t m = 0;
      for (const IdPair& p : pairs_) {
        if (p.first == p.second) continue;
        pairs_[m++] = {std::min(p.first, p.second),
                       std::max(p.first, p.second)};
      }
      pairs_.resize(m);
    }
    std::sort(pairs_.begin(), pairs_.end());
    pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
    for (const IdPair& p : pairs_) sink_->EmitPair(p.first, p.second);
    pairs_.clear();
  }

 private:
  bool self_join_;
  PairSink* sink_;
  std::vector<IdPair> pairs_;
};

/// Streams or counts the matches of one box execution — the single home of
/// the emit-vs-count convention every index's `ExecuteBox` follows: id
/// paths `Add`/`AddRun` straight through to the sink, count-only paths
/// accumulate locally and report one `AddMatches` total at `Flush` (so no
/// id is ever materialized and the sink sees one call per query, not one
/// per partition).
class MatchEmitter {
 public:
  MatchEmitter(bool count_only, Sink* sink)
      : count_only_(count_only), sink_(sink) {}

  bool count_only() const { return count_only_; }

  /// One matching object.
  void Add(ObjectId id) {
    if (count_only_) {
      ++matches_;
    } else {
      sink_->Emit(id);
    }
  }

  /// A contiguous run of matching ids (bulk fast path).
  void AddRun(const ObjectId* ids, std::size_t n) {
    if (count_only_) {
      matches_ += n;
    } else {
      sink_->EmitRun(ids, n);
    }
  }

  /// `n` matches resolved without ids — only legal on count-only
  /// executions (bulk count paths that never touch an id column).
  void AddAnonymous(std::uint64_t n) { matches_ += n; }

  /// Reports the accumulated count to the sink. Call exactly once, at the
  /// end of the execution; a no-op for id-streaming executions.
  void Flush() {
    if (count_only_) {
      sink_->AddMatches(matches_);
      matches_ = 0;
    }
  }

 private:
  bool count_only_;
  Sink* sink_;
  std::uint64_t matches_ = 0;
};

/// One kNN result: an object id and its squared MBB distance to the query
/// point (squared distances order identically and avoid the sqrt).
struct Neighbor {
  ObjectId id = 0;
  double distance_sq = 0;
};

/// Bounded best-k collector for nearest-neighbor execution: a max-heap of at
/// most `k` (distance, id) pairs, ordered by distance with ties broken by
/// smaller id so every index returns bit-identical kNN results.
class TopKSink {
 public:
  explicit TopKSink(std::size_t k) : k_(k) {}

  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// Current pruning bound: the squared distance of the worst kept neighbor
  /// once `k` are held, +inf before. A candidate with `distance_sq` strictly
  /// above the bound can never enter; one exactly at the bound still can
  /// (smaller id wins the tie), so prune with `>`, not `>=`.
  double bound() const {
    return full() && k_ > 0 ? heap_.front().distance_sq
                            : std::numeric_limits<double>::infinity();
  }

  void Offer(ObjectId id, double distance_sq) {
    if (k_ == 0) return;
    const Neighbor cand{id, distance_sq};
    if (heap_.size() < k_) {
      heap_.push_back(cand);
      std::push_heap(heap_.begin(), heap_.end(), Before);
      return;
    }
    if (Before(cand, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Before);
      heap_.back() = cand;
      std::push_heap(heap_.begin(), heap_.end(), Before);
    }
  }

  void Clear() { heap_.clear(); }

  /// The kept neighbors in ascending (distance, id) order; empties the sink.
  std::vector<Neighbor> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), Before);
    return std::move(heap_);
  }

 private:
  /// Strict weak order "a is a better (closer) neighbor than b". Used
  /// directly as the max-heap comparator: the heap root is the *worst* kept
  /// neighbor.
  static bool Before(const Neighbor& a, const Neighbor& b) {
    if (a.distance_sq != b.distance_sq) return a.distance_sq < b.distance_sq;
    return a.id < b.id;
  }

  std::size_t k_;
  std::vector<Neighbor> heap_;
};

/// Streams a TopKSink's results into a generic sink in ascending
/// (distance, id) order — the tail of every `kKNearest` execution.
inline void DrainTopK(TopKSink* topk, Sink* sink) {
  for (const Neighbor& nb : topk->TakeSorted()) sink->Emit(nb.id);
}

/// Generic kNN driver for indexes without a dedicated nearest-neighbor
/// traversal: probes cubes of doubling half-width around `pt` with the
/// index's own range machinery — so incremental indexes (QUASII, SFCracker,
/// Mosaic) keep cracking/refining under kNN workloads — until the current
/// k-th best distance is provably covered by the probed cube.
///
/// Correctness: an object whose MBB distance to `pt` is `m <= r` has its
/// closest point within the closed cube of half-width `r`, so its box
/// intersects the cube and the probe reports it. Each round therefore sees
/// *every* object at distance up to the cube's guaranteed half-width
/// (`r_eff`, computed from the rounded float corners), and the loop stops
/// when k candidates sit at or below it — or when the cube covers `bounds`,
/// the MBB of the whole dataset, and everything has been probed.
///
/// `probe(box, &out)` must append all ids whose MBB intersects `box`
/// (duplicates within one probe are not allowed); `data` maps ids back to
/// boxes for the exact distance — only ids the probe emits are ever
/// dereferenced, so slots of erased objects may hold stale boxes.
/// `population` is the number of *live* objects (the density input of the
/// initial radius; under mutation it differs from `data.size()`). The TopK
/// set is rebuilt from scratch each round (probes are nested, so later
/// rounds re-find earlier candidates).
template <int D, typename Probe>
void ExpandingRingKNearest(const std::vector<Box<D>>& data,
                           std::size_t population, const Box<D>& bounds,
                           const Point<D>& pt, std::size_t k, TopKSink* topk,
                           Probe&& probe) {
  if (k == 0 || population == 0 || bounds.IsEmpty()) return;
  double max_extent = 0;
  for (int d = 0; d < D; ++d) {
    max_extent = std::max(max_extent, static_cast<double>(bounds.Extent(d)));
  }
  // Initial half-width sized to the expected k-neighborhood, but at least
  // the distance to the data region (a far-away query point would otherwise
  // waste rounds on empty cubes) and strictly positive (degenerate bounds).
  double r = 0.5 * max_extent *
             std::pow((static_cast<double>(k) + 1.0) /
                          static_cast<double>(population),
                      1.0 / D);
  r = std::max(r, std::sqrt(bounds.MinDistSquaredTo(pt)));
  if (!(r > 0)) r = 1;

  std::vector<ObjectId> candidates;
  while (true) {
    Box<D> cube;
    bool covers_all = true;
    double r_eff = std::numeric_limits<double>::infinity();
    for (int d = 0; d < D; ++d) {
      cube.lo[d] = static_cast<Scalar>(static_cast<double>(pt[d]) - r);
      cube.hi[d] = static_cast<Scalar>(static_cast<double>(pt[d]) + r);
      covers_all = covers_all && cube.lo[d] <= bounds.lo[d] &&
                   cube.hi[d] >= bounds.hi[d];
      r_eff = std::min(r_eff, static_cast<double>(pt[d]) -
                                  static_cast<double>(cube.lo[d]));
      r_eff = std::min(r_eff, static_cast<double>(cube.hi[d]) -
                                  static_cast<double>(pt[d]));
    }
    // Probe the part of the cube that can hold objects: every object box
    // lies inside `bounds`, so clamping loses nothing and keeps probe
    // coordinates finite for grid/Z-order arithmetic.
    const Box<D> probe_box = cube.IntersectionWith(bounds);
    candidates.clear();
    if (!probe_box.IsEmpty()) probe(probe_box, &candidates);
    topk->Clear();
    for (const ObjectId id : candidates) {
      topk->Offer(id, data[id].MinDistSquaredTo(pt));
    }
    if (covers_all) return;
    if (topk->full() && topk->bound() <= r_eff * r_eff) return;
    r *= 2;
  }
}

}  // namespace quasii

#endif  // QUASII_COMMON_QUERY_H_
