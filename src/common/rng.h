#ifndef QUASII_COMMON_RNG_H_
#define QUASII_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "geometry/point.h"

namespace quasii {

/// Deterministic random source for data/workload generation and tests.
///
/// A thin wrapper over `std::mt19937_64` so that every generator in the
/// repository draws from one seeded stream and experiments are reproducible
/// run-to-run (the paper's workloads are synthetic and regenerable as well).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in `[lo, hi)`.
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform Scalar in `[lo, hi)`.
  Scalar UniformScalar(Scalar lo, Scalar hi) {
    return static_cast<Scalar>(
        Uniform(static_cast<double>(lo), static_cast<double>(hi)));
  }

  /// Uniform integer in `[lo, hi]` (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace quasii

#endif  // QUASII_COMMON_RNG_H_
