#ifndef QUASII_COMMON_RNG_H_
#define QUASII_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "geometry/point.h"

namespace quasii {

/// Deterministic random source for data/workload generation and tests.
///
/// A thin wrapper over `std::mt19937_64` so that every generator in the
/// repository draws from one seeded stream and experiments are reproducible
/// run-to-run (the paper's workloads are synthetic and regenerable as well).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : seed_(seed), engine_(seed) {}

  /// The seed this stream was constructed with (not affected by draws).
  std::uint64_t seed() const { return seed_; }

  /// SplitMix64 finalizer [Steele et al., "Fast splittable PRNGs"]: a
  /// bijective avalanche mix, so distinct inputs give well-separated seeds.
  static std::uint64_t SplitMix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Derives an independent child stream for `stream_id` — the per-thread
  /// op streams of concurrent workloads. Split is a pure function of the
  /// *construction* seed (draws on the parent don't shift it), so
  /// `Rng(s).Split(t)` is stable however the parent has been used, and
  /// distinct `(seed, stream_id)` pairs land on unrelated mt19937_64
  /// seedings via a double SplitMix64 mix.
  Rng Split(std::uint64_t stream_id) const {
    return Rng(SplitMix64(seed_ ^ SplitMix64(stream_id)));
  }

  /// Uniform double in `[lo, hi)`.
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform Scalar in `[lo, hi)`.
  Scalar UniformScalar(Scalar lo, Scalar hi) {
    return static_cast<Scalar>(
        Uniform(static_cast<double>(lo), static_cast<double>(hi)));
  }

  /// Uniform integer in `[lo, hi]` (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace quasii

#endif  // QUASII_COMMON_RNG_H_
