#ifndef QUASII_PERSIST_CRC32C_H_
#define QUASII_PERSIST_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace quasii::persist {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
/// framing every WAL record and snapshot payload. Table-driven software
/// implementation: persistence is not a hot path here, and a portable
/// byte-at-a-time loop keeps the on-disk format independent of CPU
/// features.
inline std::uint32_t Crc32c(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace quasii::persist

#endif  // QUASII_PERSIST_CRC32C_H_
