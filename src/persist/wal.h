#ifndef QUASII_PERSIST_WAL_H_
#define QUASII_PERSIST_WAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "geometry/box.h"
#include "persist/crc32c.h"
#include "persist/failpoint.h"
#include "persist/io.h"

namespace quasii::persist {

/// On-disk WAL layout:
///
///   header  [u32 magic "QWAL"] [u32 format] [u32 D] [u32 sizeof(Scalar)]
///   record* [u32 payload_len] [u32 crc32c(payload)] [payload]
///   payload [u64 lsn] [u8 op] [u32 id] [2*D Scalars box — insert only]
///
/// LSN discipline: only *accepted* mutations are logged, and each record's
/// LSN is `ObjectStore::version()` after the mutation — so a log over a
/// fresh store carries exactly 1, 2, 3, ... and recovery can both skip the
/// snapshot-covered prefix (`lsn <= snapshot lsn`) and refuse gaps.
///
/// Both payload lengths are fixed per op, which makes corruption detection
/// exact: a frame whose declared length is neither valid value is corrupt
/// when followed by more bytes, torn when it runs past EOF.

inline constexpr std::uint32_t kWalMagic = 0x4C415751u;  // "QWAL"
inline constexpr std::uint32_t kWalFormatVersion = 1;
inline constexpr std::size_t kWalHeaderSize = 16;

enum class WalOp : std::uint8_t { kInsert = 1, kErase = 2 };

enum class FsyncPolicy { kEveryOp, kEveryN, kNone };

inline const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kEveryOp:
      return "every_op";
    case FsyncPolicy::kEveryN:
      return "every_n";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "unknown";
}

template <int D>
struct WalRecord {
  std::uint64_t lsn = 0;
  WalOp op = WalOp::kInsert;
  ObjectId id = 0;
  Box<D> box;  // meaningful for inserts only
};

template <int D>
constexpr std::size_t WalErasePayloadSize() {
  return 8 + 1 + 4;
}

template <int D>
constexpr std::size_t WalInsertPayloadSize() {
  return WalErasePayloadSize<D>() + 2 * D * sizeof(Scalar);
}

/// Appender with a group-commit fsync policy. Fault-injection sites:
/// `wal_crash_before_append`, `wal_crash_after_append` (process dies around
/// the write), `wal_short_write` (half a frame reaches the file, then the
/// process dies), `wal_bitflip` (a payload byte is flipped *after* the CRC
/// is computed — the record lands corrupt), `wal_fsync_fail` (the barrier
/// reports failure without syncing).
template <int D>
class WalWriter {
 public:
  /// Opens (creating or appending to) the log. A fresh or empty file gets
  /// the header; appending to an existing log assumes the caller recovered
  /// from it first (so the tail is known-valid and truncated).
  PersistError Open(const std::string& path, FsyncPolicy policy,
                    std::size_t every_n) {
    policy_ = policy;
    every_n_ = every_n == 0 ? 1 : every_n;
    std::string existing;
    const ReadFileResult r = ReadFile(path, &existing);
    if (r == ReadFileResult::kError) return PersistError::kIo;
    const bool fresh = r == ReadFileResult::kNotFound || existing.empty();
    if (!file_.OpenWrite(path, /*truncate=*/false)) return PersistError::kIo;
    if (fresh) {
      std::string header;
      ByteWriter w(&header);
      w.U32(kWalMagic);
      w.U32(kWalFormatVersion);
      w.U32(static_cast<std::uint32_t>(D));
      w.U32(static_cast<std::uint32_t>(sizeof(Scalar)));
      const PersistError err = file_.WriteAll(
          header.data(), header.size(), /*short_write_failpoint=*/nullptr);
      if (err != PersistError::kNone) return err;
      bytes_written_ += header.size();
    }
    return PersistError::kNone;
  }

  PersistError Append(const WalRecord<D>& rec) {
    if (FailPoints::Hit("wal_crash_before_append")) CrashNow();
    frame_.clear();
    std::string& payload = payload_;
    payload.clear();
    ByteWriter pw(&payload);
    pw.U64(rec.lsn);
    pw.U8(static_cast<std::uint8_t>(rec.op));
    pw.U32(rec.id);
    if (rec.op == WalOp::kInsert) PutBox<D>(&pw, rec.box);
    ByteWriter fw(&frame_);
    fw.U32(static_cast<std::uint32_t>(payload.size()));
    fw.U32(Crc32c(payload.data(), payload.size()));
    fw.Bytes(payload.data(), payload.size());
    if (FailPoints::Hit("wal_bitflip")) frame_[frame_.size() / 2] ^= 0x20;
    const PersistError err =
        file_.WriteAll(frame_.data(), frame_.size(), "wal_short_write");
    if (err != PersistError::kNone) return err;
    bytes_written_ += frame_.size();
    ++records_appended_;
    ++unsynced_;
    if (FailPoints::Hit("wal_crash_after_append")) CrashNow();
    if (policy_ == FsyncPolicy::kEveryOp ||
        (policy_ == FsyncPolicy::kEveryN && unsynced_ >= every_n_)) {
      return Sync();
    }
    return PersistError::kNone;
  }

  /// Group-commit barrier: makes every appended record durable.
  PersistError Sync() {
    if (unsynced_ == 0) return PersistError::kNone;
    const PersistError err = file_.Sync("wal_fsync_fail");
    if (err != PersistError::kNone) return err;
    unsynced_ = 0;
    ++syncs_;
    return PersistError::kNone;
  }

  void Close() { file_.Close(); }

  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t syncs() const { return syncs_; }

 private:
  FileHandle file_;
  FsyncPolicy policy_ = FsyncPolicy::kEveryOp;
  std::size_t every_n_ = 1;
  std::size_t unsynced_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t syncs_ = 0;
  std::string payload_;
  std::string frame_;
};

template <int D>
struct WalContents {
  bool exists = false;
  std::vector<WalRecord<D>> records;
  /// Prefix length (bytes) of the header plus every valid record — the
  /// truncation target when the tail is torn.
  std::uint64_t valid_bytes = 0;
  /// An incomplete final frame was dropped (the crash-mid-append case).
  bool truncated_tail = false;
  PersistError error = PersistError::kNone;
};

/// Parses a WAL file. A frame that runs past EOF is a *torn tail* — the
/// expected residue of a crash mid-append — and is dropped with
/// `truncated_tail` set; the prefix before it stays usable. A complete
/// frame that fails its CRC (or declares an impossible length with more
/// data following, or breaks LSN continuity) is *corruption* and refuses
/// the whole log with a typed error.
template <int D>
WalContents<D> ReadWal(const std::string& path) {
  WalContents<D> out;
  std::string raw;
  const ReadFileResult r = ReadFile(path, &raw);
  if (r == ReadFileResult::kNotFound) return out;
  if (r == ReadFileResult::kError) {
    out.error = PersistError::kIo;
    return out;
  }
  out.exists = true;
  if (raw.empty()) return out;
  if (raw.size() < kWalHeaderSize) {
    // Crash while writing the header itself: nothing usable yet.
    out.truncated_tail = true;
    return out;
  }
  ByteReader hr(raw.data(), kWalHeaderSize);
  if (hr.U32() != kWalMagic) {
    out.error = PersistError::kBadMagic;
    return out;
  }
  if (hr.U32() != kWalFormatVersion) {
    out.error = PersistError::kBadFormatVersion;
    return out;
  }
  if (hr.U32() != static_cast<std::uint32_t>(D) ||
      hr.U32() != static_cast<std::uint32_t>(sizeof(Scalar))) {
    out.error = PersistError::kDimensionMismatch;
    return out;
  }
  out.valid_bytes = kWalHeaderSize;

  std::size_t pos = kWalHeaderSize;
  std::uint64_t prev_lsn = 0;
  while (pos < raw.size()) {
    const std::size_t remaining = raw.size() - pos;
    if (remaining < 8) {
      out.truncated_tail = true;
      break;
    }
    ByteReader fr(raw.data() + pos, remaining);
    const std::uint32_t len = fr.U32();
    const std::uint32_t crc = fr.U32();
    const bool len_valid = len == WalInsertPayloadSize<D>() ||
                           len == WalErasePayloadSize<D>();
    if (8 + static_cast<std::size_t>(len) > remaining) {
      // Frame runs past EOF. With a valid length this is the classic torn
      // append; with garbage it is still unprovable either way — but no
      // complete record follows, so truncating loses nothing durable.
      out.truncated_tail = true;
      break;
    }
    if (!len_valid) {
      out.error = PersistError::kWalRecordCorrupt;
      return out;
    }
    const char* payload = raw.data() + pos + 8;
    if (Crc32c(payload, len) != crc) {
      out.error = PersistError::kWalRecordCorrupt;
      return out;
    }
    ByteReader pr(payload, len);
    WalRecord<D> rec;
    rec.lsn = pr.U64();
    const std::uint8_t op = pr.U8();
    rec.id = pr.U32();
    if (op == static_cast<std::uint8_t>(WalOp::kInsert) &&
        len == WalInsertPayloadSize<D>()) {
      rec.op = WalOp::kInsert;
      rec.box = GetBox<D>(&pr);
    } else if (op == static_cast<std::uint8_t>(WalOp::kErase) &&
               len == WalErasePayloadSize<D>()) {
      rec.op = WalOp::kErase;
    } else {
      out.error = PersistError::kWalRecordCorrupt;
      return out;
    }
    if (!pr.ok() || rec.lsn == 0 ||
        (prev_lsn != 0 && rec.lsn != prev_lsn + 1)) {
      out.error = PersistError::kWalLsnGap;
      return out;
    }
    prev_lsn = rec.lsn;
    out.records.push_back(rec);
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace quasii::persist

#endif  // QUASII_PERSIST_WAL_H_
