#ifndef QUASII_PERSIST_SNAPSHOT_H_
#define QUASII_PERSIST_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/spatial_index.h"
#include "geometry/box.h"
#include "persist/crc32c.h"
#include "persist/failpoint.h"
#include "persist/io.h"

namespace quasii::persist {

/// On-disk snapshot layout:
///
///   [u32 magic "QSNP"] [u32 format] [u64 payload_len] [payload]
///   [u32 crc32c(payload)]
///
///   payload: [u32 D] [u32 sizeof(Scalar)] [u64 lsn] [str index kind]
///            [u64 slots] [u64 live_count]
///            slots × [box (2*D Scalars)] slots × [u8 alive]
///            [u8 has_structure] { [str structure blob] }
///
/// `lsn` is `ObjectStore::version()` at capture time, which ties the
/// snapshot to its place in the WAL: recovery replays exactly the records
/// with larger LSNs. The structure blob is the index's own
/// `SerializeStructure` serialization (QUASII's crack columns + slice
/// tree, R-Tree's packed levels); indexes without one are restored by
/// `RebuildFromStore`. Derived acceleration state is deliberately NOT
/// serialized: QUASII's bit-packed frozen-leaf columns are rebuilt by
/// `DeserializeStructure` from the restored slice tree (same leaves, same
/// frames), so the format is independent of packing policy and the
/// restored index still replays converged workloads with zero cracks.
///
/// Writes are atomic: the file is assembled under `path + ".tmp"`, synced,
/// and renamed over `path` — a crash mid-snapshot leaves the previous valid
/// snapshot in place, which is how "load the newest valid snapshot" stays
/// trivially true.

inline constexpr std::uint32_t kSnapshotMagic = 0x504E5351u;  // "QSNP"
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

template <int D>
PersistError WriteSnapshot(const SpatialIndex<D>& index,
                           const std::string& path,
                           std::uint64_t* bytes_out = nullptr) {
  const ObjectStore<D>& store = index.store();
  std::string payload;
  ByteWriter w(&payload);
  w.U32(static_cast<std::uint32_t>(D));
  w.U32(static_cast<std::uint32_t>(sizeof(Scalar)));
  w.U64(store.version());
  w.Str(index.name());
  const std::size_t slots = store.slots();
  w.U64(slots);
  w.U64(store.live_count());
  const std::vector<Box<D>>& boxes = store.boxes();
  for (std::size_t i = 0; i < slots; ++i) PutBox<D>(&w, boxes[i]);
  for (std::size_t i = 0; i < slots; ++i) {
    w.U8(store.alive(static_cast<ObjectId>(i)) ? 1 : 0);
  }
  std::string structure;
  ByteWriter sw(&structure);
  const bool has_structure = index.SerializeStructure(sw);
  w.U8(has_structure ? 1 : 0);
  if (has_structure) w.Str(structure);

  std::string file;
  ByteWriter fw(&file);
  fw.U32(kSnapshotMagic);
  fw.U32(kSnapshotFormatVersion);
  fw.U64(payload.size());
  const std::uint32_t crc = Crc32c(payload.data(), payload.size());
  if (FailPoints::Hit("snapshot_bitflip")) payload[payload.size() / 2] ^= 0x04;
  fw.Bytes(payload.data(), payload.size());
  fw.U32(crc);

  const std::string tmp = path + ".tmp";
  FileHandle fh;
  if (!fh.OpenWrite(tmp, /*truncate=*/true)) return PersistError::kIo;
  PersistError err =
      fh.WriteAll(file.data(), file.size(), "snapshot_short_write");
  if (err != PersistError::kNone) return err;
  err = fh.Sync("snapshot_fsync_fail");
  if (err != PersistError::kNone) return err;
  fh.Close();
  if (FailPoints::Hit("snapshot_crash_before_rename")) CrashNow();
  err = AtomicReplace(tmp, path);
  if (err != PersistError::kNone) return err;
  if (bytes_out != nullptr) *bytes_out = file.size();
  return PersistError::kNone;
}

template <int D>
struct SnapshotContents {
  bool exists = false;
  PersistError error = PersistError::kNone;
  std::uint64_t lsn = 0;
  std::string kind;
  std::vector<Box<D>> boxes;
  std::vector<std::uint8_t> alive;
  std::uint64_t live_count = 0;
  bool has_structure = false;
  std::string structure;
};

/// Parses and validates a snapshot file; refuses (typed error) anything
/// that is truncated, checksum-damaged, or written for a different
/// dimensionality/scalar width. Does not touch any index.
template <int D>
SnapshotContents<D> ReadSnapshot(const std::string& path) {
  SnapshotContents<D> out;
  std::string raw;
  const ReadFileResult r = ReadFile(path, &raw);
  if (r == ReadFileResult::kNotFound) return out;
  if (r == ReadFileResult::kError) {
    out.error = PersistError::kIo;
    return out;
  }
  out.exists = true;
  if (raw.size() < 4) {
    out.error = PersistError::kSnapshotTruncated;
    return out;
  }
  ByteReader hr(raw.data(), raw.size());
  if (hr.U32() != kSnapshotMagic) {
    out.error = PersistError::kBadMagic;
    return out;
  }
  if (raw.size() < 16) {
    out.error = PersistError::kSnapshotTruncated;
    return out;
  }
  if (hr.U32() != kSnapshotFormatVersion) {
    out.error = PersistError::kBadFormatVersion;
    return out;
  }
  const std::uint64_t payload_len = hr.U64();
  if (!hr.ok() || raw.size() < 16 + payload_len + 4) {
    out.error = PersistError::kSnapshotTruncated;
    return out;
  }
  const char* payload = raw.data() + 16;
  std::uint32_t crc;
  std::memcpy(&crc, raw.data() + 16 + payload_len, 4);
  if (Crc32c(payload, static_cast<std::size_t>(payload_len)) != crc) {
    out.error = PersistError::kSnapshotCorrupt;
    return out;
  }
  ByteReader pr(payload, static_cast<std::size_t>(payload_len));
  if (pr.U32() != static_cast<std::uint32_t>(D) ||
      pr.U32() != static_cast<std::uint32_t>(sizeof(Scalar))) {
    out.error = PersistError::kDimensionMismatch;
    return out;
  }
  out.lsn = pr.U64();
  out.kind = pr.Str();
  const std::uint64_t slots = pr.U64();
  out.live_count = pr.U64();
  // A slot is one box + one alive byte; an impossible count is framing
  // corruption that survived the CRC only if the writer was broken.
  if (!pr.ok() || slots > pr.remaining() / (2 * D * sizeof(Scalar) + 1)) {
    out.error = PersistError::kSnapshotCorrupt;
    return out;
  }
  out.boxes.resize(static_cast<std::size_t>(slots));
  for (std::uint64_t i = 0; i < slots; ++i) {
    out.boxes[static_cast<std::size_t>(i)] = GetBox<D>(&pr);
  }
  out.alive.resize(static_cast<std::size_t>(slots));
  for (std::uint64_t i = 0; i < slots; ++i) {
    out.alive[static_cast<std::size_t>(i)] = pr.U8();
  }
  out.has_structure = pr.U8() != 0;
  if (out.has_structure) out.structure = pr.Str();
  if (!pr.ok()) {
    out.error = PersistError::kSnapshotCorrupt;
    return out;
  }
  std::uint64_t live = 0;
  for (const std::uint8_t a : out.alive) live += a != 0;
  if (live != out.live_count) {
    out.error = PersistError::kSnapshotCorrupt;
    return out;
  }
  return out;
}

}  // namespace quasii::persist

#endif  // QUASII_PERSIST_SNAPSHOT_H_
