#ifndef QUASII_PERSIST_IO_H_
#define QUASII_PERSIST_IO_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "persist/errors.h"
#include "persist/failpoint.h"

namespace quasii::persist {

enum class ReadFileResult { kOk, kNotFound, kError };

/// Reads a whole file into `out`. Persistence artifacts are memory-sized by
/// construction (the store itself is in RAM), so whole-file reads keep the
/// parsing single-pass and the torn-tail arithmetic trivial.
inline ReadFileResult ReadFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno == ENOENT ? ReadFileResult::kNotFound
                                     : ReadFileResult::kError;
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ReadFileResult::kError;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return ReadFileResult::kOk;
}

/// RAII wrapper over a POSIX fd with the two fault-injection hooks the
/// crash matrix needs: a named short-write site (writes half the buffer,
/// then dies mid-operation) and a named fsync-failure site (reports `kIo`
/// without syncing).
class FileHandle {
 public:
  FileHandle() = default;
  ~FileHandle() { Close(); }
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  bool OpenWrite(const std::string& path, bool truncate) {
    Close();
    int flags = O_CREAT | O_WRONLY | O_CLOEXEC;
    flags |= truncate ? O_TRUNC : O_APPEND;
    fd_ = ::open(path.c_str(), flags, 0644);
    return fd_ >= 0;
  }

  bool is_open() const { return fd_ >= 0; }

  /// Appends the whole buffer. When the named fail point fires, half the
  /// buffer reaches the file and the process dies — the torn-frame case
  /// recovery must truncate.
  PersistError WriteAll(const void* data, std::size_t n,
                        const char* short_write_failpoint) {
    if (short_write_failpoint != nullptr &&
        FailPoints::Hit(short_write_failpoint)) {
      WriteSpan(data, n / 2);
      CrashNow();
    }
    return WriteSpan(data, n) ? PersistError::kNone : PersistError::kIo;
  }

  /// Durability barrier. When the named fail point fires the sync is
  /// *skipped* and reported failed — callers must treat the data as not yet
  /// durable.
  PersistError Sync(const char* fail_failpoint) {
    if (fail_failpoint != nullptr && FailPoints::Hit(fail_failpoint)) {
      return PersistError::kIo;
    }
    return ::fsync(fd_) == 0 ? PersistError::kNone : PersistError::kIo;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  bool WriteSpan(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  }

  int fd_ = -1;
};

/// Renames `tmp` over `final_path` and syncs the containing directory, so a
/// crash leaves either the previous file or the complete new one — the
/// atomicity snapshot writes are built on.
inline PersistError AtomicReplace(const std::string& tmp,
                                  const std::string& final_path) {
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) return PersistError::kIo;
  const std::size_t slash = final_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : final_path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return PersistError::kNone;
}

inline PersistError TruncateFile(const std::string& path, std::uint64_t len) {
  return ::truncate(path.c_str(), static_cast<off_t>(len)) == 0
             ? PersistError::kNone
             : PersistError::kIo;
}

}  // namespace quasii::persist

#endif  // QUASII_PERSIST_IO_H_
