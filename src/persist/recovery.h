#ifndef QUASII_PERSIST_RECOVERY_H_
#define QUASII_PERSIST_RECOVERY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/spatial_index.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace quasii::persist {

struct RecoveryResult {
  PersistError error = PersistError::kNone;
  /// Extra context for diagnostics (invariant message, rejected LSN, ...).
  std::string detail;
  bool snapshot_loaded = false;
  /// The snapshot carried a structure blob the index accepted (vs a
  /// rebuild-from-store restore).
  bool structure_restored = false;
  std::uint64_t snapshot_lsn = 0;
  std::size_t wal_records = 0;
  std::size_t wal_replayed = 0;
  /// A torn trailing record was detected and physically truncated away.
  bool wal_tail_truncated = false;
  /// `ObjectStore::version()` after recovery — the LSN the next WAL append
  /// will succeed.
  std::uint64_t recovered_lsn = 0;

  bool ok() const { return error == PersistError::kNone; }
};

/// Restores `index` from the newest valid snapshot at `snapshot_path` (if
/// any) plus the WAL tail at `wal_path` (if any), in that order:
///
///   1. load + validate the snapshot; restore the store slots and either
///      the index's serialized structure or a rebuild-from-store;
///   2. parse the WAL, truncating a torn trailing record (the residue of a
///      crash mid-append) — any other damage is refused with a typed error;
///   3. replay every record with `lsn > snapshot lsn` through the index's
///      normal `Insert`/`Erase` path, requiring exact LSN continuity;
///   4. run `CheckInvariants` on the result.
///
/// Either path may be empty (snapshot-only restore, WAL-only replay). On
/// any non-`kNone` result the index is unusable and must be discarded —
/// recovery never leaves it half-restored silently.
template <int D>
RecoveryResult RecoverIndex(SpatialIndex<D>* index,
                            const std::string& snapshot_path,
                            const std::string& wal_path) {
  RecoveryResult out;
  if (!snapshot_path.empty()) {
    SnapshotContents<D> snap = ReadSnapshot<D>(snapshot_path);
    if (snap.error != PersistError::kNone) {
      out.error = snap.error;
      return out;
    }
    if (snap.exists) {
      if (snap.kind != index->name()) {
        out.error = PersistError::kIndexKindMismatch;
        out.detail = "snapshot of '" + snap.kind + "'";
        return out;
      }
      index->MutableStoreForRecovery().RestoreSlots(
          std::move(snap.boxes), std::move(snap.alive), snap.lsn);
      if (snap.has_structure && index->DeserializeStructure(snap.structure)) {
        out.structure_restored = true;
      } else if (snap.has_structure) {
        out.error = PersistError::kStructureCorrupt;
        return out;
      } else {
        index->RebuildFromStore();
      }
      out.snapshot_loaded = true;
      out.snapshot_lsn = snap.lsn;
    }
  }
  if (!wal_path.empty()) {
    WalContents<D> wal = ReadWal<D>(wal_path);
    if (wal.error != PersistError::kNone) {
      out.error = wal.error;
      return out;
    }
    if (wal.truncated_tail) {
      out.wal_tail_truncated = true;
      if (TruncateFile(wal_path, wal.valid_bytes) != PersistError::kNone) {
        out.error = PersistError::kIo;
        return out;
      }
    }
    out.wal_records = wal.records.size();
    for (const WalRecord<D>& rec : wal.records) {
      const std::uint64_t version = index->store().version();
      if (rec.lsn <= version) continue;  // covered by the snapshot
      if (rec.lsn != version + 1) {
        out.error = PersistError::kWalLsnGap;
        out.detail = "lsn " + std::to_string(rec.lsn) + " after version " +
                     std::to_string(version);
        return out;
      }
      const bool applied = rec.op == WalOp::kInsert
                               ? index->Insert(rec.id, rec.box)
                               : index->Erase(rec.id);
      if (!applied) {
        out.error = PersistError::kReplayRejected;
        out.detail = "lsn " + std::to_string(rec.lsn);
        return out;
      }
      ++out.wal_replayed;
    }
  }
  std::string why;
  if (!index->CheckInvariants(&why)) {
    out.error = PersistError::kInvariantViolation;
    out.detail = why;
    return out;
  }
  out.recovered_lsn = index->store().version();
  return out;
}

}  // namespace quasii::persist

#endif  // QUASII_PERSIST_RECOVERY_H_
