#ifndef QUASII_PERSIST_ERRORS_H_
#define QUASII_PERSIST_ERRORS_H_

#include <ostream>

namespace quasii::persist {

/// Typed outcome of every persistence operation. Corrupt or mismatched
/// input is *refused* with one of these — never undefined behaviour, never
/// a partial restore: on any non-`kNone` result the target index must be
/// treated as unusable and discarded.
enum class PersistError {
  kNone = 0,
  /// Filesystem-level failure (open/read/write/fsync/rename/truncate).
  kIo,
  /// The file does not start with the expected magic number.
  kBadMagic,
  /// Recognized file, unsupported format version.
  kBadFormatVersion,
  /// The file was written for a different dimensionality or scalar width.
  kDimensionMismatch,
  /// The snapshot belongs to a different index type than the target.
  kIndexKindMismatch,
  /// The snapshot file ends before its declared payload does.
  kSnapshotTruncated,
  /// Snapshot checksum mismatch or inconsistent payload framing.
  kSnapshotCorrupt,
  /// The store section decoded but the index's structure blob did not.
  kStructureCorrupt,
  /// A complete WAL record failed its CRC or has inconsistent framing.
  kWalRecordCorrupt,
  /// WAL LSNs are not the contiguous successors of the recovered version.
  kWalLsnGap,
  /// A replayed mutation was rejected by the store (duplicate insert,
  /// erase of a non-live id) — log and snapshot disagree about history.
  kReplayRejected,
  /// The recovered index failed its structural self-check.
  kInvariantViolation,
};

inline const char* PersistErrorName(PersistError e) {
  switch (e) {
    case PersistError::kNone:
      return "none";
    case PersistError::kIo:
      return "io";
    case PersistError::kBadMagic:
      return "bad_magic";
    case PersistError::kBadFormatVersion:
      return "bad_format_version";
    case PersistError::kDimensionMismatch:
      return "dimension_mismatch";
    case PersistError::kIndexKindMismatch:
      return "index_kind_mismatch";
    case PersistError::kSnapshotTruncated:
      return "snapshot_truncated";
    case PersistError::kSnapshotCorrupt:
      return "snapshot_corrupt";
    case PersistError::kStructureCorrupt:
      return "structure_corrupt";
    case PersistError::kWalRecordCorrupt:
      return "wal_record_corrupt";
    case PersistError::kWalLsnGap:
      return "wal_lsn_gap";
    case PersistError::kReplayRejected:
      return "replay_rejected";
    case PersistError::kInvariantViolation:
      return "invariant_violation";
  }
  return "unknown";
}

inline std::ostream& operator<<(std::ostream& os, PersistError e) {
  return os << PersistErrorName(e);
}

}  // namespace quasii::persist

#endif  // QUASII_PERSIST_ERRORS_H_
