#ifndef QUASII_PERSIST_FAILPOINT_H_
#define QUASII_PERSIST_FAILPOINT_H_

#include <cstdlib>
#include <string>
#include <unordered_map>

namespace quasii::persist {

/// Exit code crash sites use, so a fault-injection harness can tell an
/// injected crash apart from an assertion failure or a signal.
inline constexpr int kCrashExitCode = 42;

/// Terminates the process immediately — no atexit handlers, no buffer
/// flushes, no destructor-driven fsyncs. The closest a test can get to
/// pulling the plug at a chosen instruction.
[[noreturn]] inline void CrashNow() { std::_Exit(kCrashExitCode); }

/// Deterministic fault-injection registry. Persistence code plants named
/// sites (`FailPoints::Hit("wal_short_write")`); a test arms a site with a
/// counted trigger and the site fires on exactly its N-th hit — never
/// randomly, so every injected failure is replayable.
///
/// Arming: `FailPoints::Instance().Arm("wal_short_write=3")` (comma-
/// separated list; the count is 1-based, `name` alone means `name=1`), or
/// via the `QUASII_FAILPOINTS` environment variable through `ArmFromEnv()`.
/// What a firing site *does* — short write, failed fsync, bit flip,
/// `CrashNow()` — is decided by the site itself.
///
/// Single-threaded by design, like all persistence paths (the bench driver
/// restricts durability runs to `--threads=1`).
class FailPoints {
 public:
  static FailPoints& Instance() {
    static FailPoints instance;
    return instance;
  }

  /// Parses and arms a trigger spec. Returns false (leaving prior arms in
  /// place) on a malformed spec.
  bool Arm(const std::string& spec) {
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::size_t end = comma == std::string::npos ? spec.size() : comma;
      if (end > start) {
        const std::string item = spec.substr(start, end - start);
        const std::size_t eq = item.find('=');
        std::string name = item.substr(0, eq);
        long long count = 1;
        if (eq != std::string::npos) {
          const std::string num = item.substr(eq + 1);
          char* parse_end = nullptr;
          count = std::strtoll(num.c_str(), &parse_end, 10);
          if (num.empty() || *parse_end != '\0' || count <= 0) return false;
        }
        if (name.empty()) return false;
        armed_[name] = count;
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return true;
  }

  void ArmFromEnv() {
    if (const char* spec = std::getenv("QUASII_FAILPOINTS")) Arm(spec);
  }

  void Clear() { armed_.clear(); }

  /// Counts a hit of the named site; true exactly once, on the armed hit.
  static bool Hit(const char* name) { return Instance().HitImpl(name); }

 private:
  bool HitImpl(const char* name) {
    if (armed_.empty()) return false;
    auto it = armed_.find(name);
    if (it == armed_.end()) return false;
    return --it->second == 0;  // goes negative afterwards: fires once
  }

  std::unordered_map<std::string, long long> armed_;
};

}  // namespace quasii::persist

#endif  // QUASII_PERSIST_FAILPOINT_H_
