#ifndef QUASII_BENCH_WORKLOAD_H_
#define QUASII_BENCH_WORKLOAD_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/query.h"
#include "common/request.h"
#include "common/rng.h"
#include "geometry/box.h"

namespace quasii::bench {

/// Per-type composition of a mixed workload: relative weights of the five
/// engine query types plus the two mutation operations (they need not sum
/// to 1; only ratios matter). The default is the paper's pure-intersection
/// workload, so existing configs keep their exact behaviour.
struct WorkloadMix {
  double range = 1.0;
  double point = 0.0;
  double count = 0.0;
  double knn = 0.0;
  double join = 0.0;
  double insert = 0.0;
  double erase = 0.0;

  double Total() const {
    return range + point + count + knn + join + insert + erase;
  }
  bool IsPureRange() const {
    return point == 0 && count == 0 && knn == 0 && join == 0 && IsReadOnly();
  }
  bool IsReadOnly() const { return insert == 0 && erase == 0; }
};

/// The default heterogeneous mix of the mixed-workload experiments:
/// 70% range / 20% point / 5% count / 5% kNN (read-only).
inline WorkloadMix DefaultMixedWorkloadMix() {
  WorkloadMix mix;
  mix.range = 0.70;
  mix.point = 0.20;
  mix.count = 0.05;
  mix.knn = 0.05;
  return mix;
}

/// The default read/write mix: the mixed workload's query spread with 20%
/// of the stream replaced by mutations (3:1 insert-heavy, so the dataset
/// grows under the index while it converges).
inline WorkloadMix DefaultReadWriteMix() {
  WorkloadMix mix;
  mix.range = 0.55;
  mix.point = 0.15;
  mix.count = 0.05;
  mix.knn = 0.05;
  mix.insert = 0.15;
  mix.erase = 0.05;
  return mix;
}

/// Everything needed to type a box workload: the mix plus the per-query
/// parameters of the non-range types.
struct WorkloadSpec {
  WorkloadMix mix;
  /// Neighbors per kNN query.
  std::size_t knn_k = 10;
  /// Boxes per stream-join op (a join op probes the index with a contiguous
  /// window of the join source, so one op stays comparable in cost to the
  /// other types instead of being a full n×m join).
  std::size_t join_window = 8;
  /// Seed of the type-interleaving draw (independent of the box workload's
  /// own seed so the spatial footprint stays identical across mixes).
  std::uint64_t seed = 5;
};

/// Stable indices/names of the per-op-type report sections. The first five
/// are the engine query types; insert/erase are the mutation operations of
/// read/write workloads.
enum QueryTypeIndex {
  kTypeRange = 0,
  kTypePoint = 1,
  kTypeCount = 2,
  kTypeKnn = 3,
  kTypeJoin = 4,
  kNumQueryTypes = 5,
  kTypeInsert = 5,
  kTypeErase = 6,
  kNumOpTypes = 7,
};

inline const char* QueryTypeName(int type_index) {
  switch (type_index) {
    case kTypeRange:
      return "range";
    case kTypePoint:
      return "point";
    case kTypeCount:
      return "count";
    case kTypeKnn:
      return "knn";
    case kTypeJoin:
      return "join";
    case kTypeInsert:
      return "insert";
    case kTypeErase:
      return "erase";
    default:
      return "?";
  }
}

template <int D>
int TypeIndexOf(const Query<D>& q) {
  switch (q.type()) {
    case QueryType::kRange:
      return kTypeRange;
    case QueryType::kPoint:
      return kTypePoint;
    case QueryType::kCount:
      return kTypeCount;
    case QueryType::kKNearest:
      return kTypeKnn;
    case QueryType::kJoin:
      return kTypeJoin;
    case QueryType::kConjunction:
      return kTypeRange;  // a conjunctive plan is a filtered range descent
  }
  return kTypeRange;
}

/// One operation of a (possibly read/write) workload stream IS a typed
/// request — the same validated sum type the wire protocol, the workload
/// recorder, and the query server speak, so a generated stream can be
/// executed in-process, serialized, or served without re-encoding. The
/// legacy `Op`/`OpKind` names are aliases kept for the existing bench
/// surface; a stream-join request owns its box window (`join_stream()`),
/// and the `JoinQuery` is built at execution time because a query borrowing
/// that vector would dangle as soon as the op is copied.
using OpKind = RequestKind;

template <int D>
using Op = Request<D>;

using Op2 = Op<2>;
using Op3 = Op<3>;

template <int D>
int OpTypeIndexOf(const Op<D>& op) {
  switch (op.kind()) {
    case RequestKind::kJoin:
      return kTypeJoin;
    case RequestKind::kInsert:
      return kTypeInsert;
    case RequestKind::kErase:
      return kTypeErase;
    case RequestKind::kQuery:
    case RequestKind::kStats:
    case RequestKind::kSnapshot:
    case RequestKind::kPing:
      break;  // admin ops never appear in generated streams
  }
  return TypeIndexOf(op.query());
}

/// A data-like object for an insert op, derived deterministically from the
/// footprint box: a small box (a few percent of the footprint extent per
/// dimension) around a uniform point inside it, so inserted objects land
/// where the workload is looking.
template <int D>
Box<D> MakeInsertBox(const Box<D>& footprint, Rng* rng) {
  Box<D> out;
  for (int d = 0; d < D; ++d) {
    const double lo = static_cast<double>(footprint.lo[d]);
    const double hi = static_cast<double>(footprint.hi[d]);
    const double centre = rng->Uniform(lo, hi > lo ? hi : lo + 1.0);
    const double half = (hi - lo) * rng->Uniform(0.01, 0.1) / 2;
    out.lo[d] = static_cast<Scalar>(centre - half);
    out.hi[d] = static_cast<Scalar>(centre + half);
  }
  return out;
}

/// The core stream typer behind `MakeOpWorkload` and `MakeThreadOpStreams`:
/// types the footprint boxes `[begin, end)` into one op stream, drawing the
/// type interleave and insert geometry from `rng`. Fresh insert ids are
/// allocated from `next_id` upward; erase victims come from the id pool
/// seeded with `[pool_begin, pool_end)` (plus this stream's own inserts), so
/// callers can hand concurrent streams disjoint id spaces. A zero-weight
/// type is never emitted; an erase drawn against an empty pool degrades to
/// a range query, as does a join drawn without a usable `join_source`
/// (stream-join ops copy a contiguous `spec.join_window`-sized window of
/// the source boxes).
template <int D>
std::vector<Op<D>> MakeOpStream(const std::vector<Box<D>>& boxes,
                                std::size_t begin, std::size_t end,
                                const WorkloadSpec& spec, Rng rng,
                                ObjectId next_id, ObjectId pool_begin,
                                ObjectId pool_end,
                                const std::vector<Box<D>>* join_source =
                                    nullptr) {
  const double weights[kNumOpTypes] = {
      spec.mix.range, spec.mix.point,  spec.mix.count, spec.mix.knn,
      spec.mix.join,  spec.mix.insert, spec.mix.erase};
  const double total = spec.mix.Total();
  std::vector<ObjectId> pool;
  if (!spec.mix.IsReadOnly()) {
    pool.resize(pool_end - pool_begin);
    std::iota(pool.begin(), pool.end(), pool_begin);
  }
  std::vector<Op<D>> ops;
  ops.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const Box<D>& b = boxes[i];
    // Roulette-wheel draw over the positive weights. The fallback for
    // floating-point drift past the last cumulative threshold is the last
    // *positive* type, so a type with weight 0 can never be emitted.
    int pick = kTypeRange;
    if (total > 0) {
      double u = rng.Uniform(0.0, total);
      bool chosen = false;
      for (int t = 0; t < kNumOpTypes && !chosen; ++t) {
        if (weights[t] <= 0) continue;
        pick = t;
        chosen = u < weights[t];
        u -= weights[t];
      }
    }
    Op<D> op;
    switch (pick) {
      case kTypePoint:
        op = Op<D>::MakeQuery(PointQuery<D>(b.Center()));
        break;
      case kTypeCount:
        op = Op<D>::MakeQuery(CountQuery<D>(b));
        break;
      case kTypeKnn:
        op = Op<D>::MakeQuery(KNearestQuery<D>(b.Center(), spec.knn_k));
        break;
      case kTypeJoin: {
        const std::size_t window =
            join_source == nullptr
                ? 0
                : std::min(spec.join_window, join_source->size());
        if (window == 0) {
          op = Op<D>::MakeQuery(RangeQuery<D>(b));
          break;
        }
        const std::size_t offset = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(join_source->size() - window)));
        op = Op<D>::MakeStreamJoin(std::vector<Box<D>>(
            join_source->begin() + offset,
            join_source->begin() + offset + window));
        break;
      }
      case kTypeInsert: {
        const ObjectId id = next_id++;
        op = Op<D>::MakeInsert(id, MakeInsertBox(b, &rng));
        pool.push_back(id);
        break;
      }
      case kTypeErase:
        if (pool.empty()) {
          op = Op<D>::MakeQuery(RangeQuery<D>(b));
          break;
        }
        {
          const std::size_t victim = static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(pool.size()) - 1));
          op = Op<D>::MakeErase(pool[victim]);
          pool[victim] = pool.back();
          pool.pop_back();
        }
        break;
      default:
        op = Op<D>::MakeQuery(RangeQuery<D>(b));
        break;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Types a box workload into an operation stream: each footprint box
/// becomes one op, its type drawn from the mix — deterministic interleaving
/// from the shared `Rng`, so a (boxes, spec, initial_n) triple always
/// produces the same stream. Point and kNN queries probe the box centre, so
/// every type exercises the same spatial region and per-type results stay
/// comparable. Inserts allocate fresh ids starting at `initial_n` with an
/// object derived from the footprint; erases pick a uniform victim from the
/// currently live id pool (seeded with `0 .. initial_n-1`), so the stream
/// is valid against any index loaded with the same initial dataset.
template <int D>
std::vector<Op<D>> MakeOpWorkload(const std::vector<Box<D>>& boxes,
                                  const WorkloadSpec& spec,
                                  std::size_t initial_n,
                                  const std::vector<Box<D>>* join_source =
                                      nullptr) {
  return MakeOpStream(boxes, 0, boxes.size(), spec, Rng(spec.seed),
                      /*next_id=*/static_cast<ObjectId>(initial_n),
                      /*pool_begin=*/ObjectId{0},
                      /*pool_end=*/static_cast<ObjectId>(initial_n),
                      join_source);
}

/// Splits a box workload into `threads` deterministic, independent op
/// streams for concurrent execution: stream `t` types a contiguous chunk of
/// the footprint boxes with its own `Rng::Split(t)` child stream, allocates
/// fresh insert ids from a disjoint id space (`initial_n + t * boxes`), and
/// draws erase victims from a disjoint slice of the initial id pool — so no
/// two streams ever name the same id and the set of *accepted* mutations is
/// schedule-independent (each stream's ops would be accepted even run
/// alone). Query results still depend on how mutations interleave with
/// queries across threads; with a read-only mix the whole run is
/// deterministic.
template <int D>
std::vector<std::vector<Op<D>>> MakeThreadOpStreams(
    const std::vector<Box<D>>& boxes, const WorkloadSpec& spec,
    std::size_t initial_n, int threads,
    const std::vector<Box<D>>* join_source = nullptr) {
  const std::size_t n_threads =
      static_cast<std::size_t>(threads > 0 ? threads : 1);
  const Rng base(spec.seed);
  std::vector<std::vector<Op<D>>> streams;
  streams.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    const std::size_t begin = boxes.size() * t / n_threads;
    const std::size_t end = boxes.size() * (t + 1) / n_threads;
    const ObjectId pool_begin =
        static_cast<ObjectId>(initial_n * t / n_threads);
    const ObjectId pool_end =
        static_cast<ObjectId>(initial_n * (t + 1) / n_threads);
    const ObjectId next_id =
        static_cast<ObjectId>(initial_n + t * boxes.size());
    streams.push_back(MakeOpStream(boxes, begin, end, spec, base.Split(t),
                                   next_id, pool_begin, pool_end,
                                   join_source));
  }
  return streams;
}

/// Read-only view of `MakeOpWorkload`: types a box workload into queries
/// (the pre-mutation API, still the bulk of the test surface). The mix must
/// be read-only.
template <int D>
std::vector<Query<D>> MakeTypedWorkload(const std::vector<Box<D>>& boxes,
                                        const WorkloadSpec& spec) {
  std::vector<Query<D>> queries;
  queries.reserve(boxes.size());
  for (const Op<D>& op : MakeOpWorkload(boxes, spec, /*initial_n=*/0)) {
    if (op.kind() == RequestKind::kQuery) queries.push_back(op.query());
  }
  return queries;
}

/// Parses a `--mix` specification of the form
/// `range:0.6,point:0.2,count:0.05,knn:0.05,join:0.05,insert:0.07,erase:0.03`
/// (types may be omitted; their weight defaults to 0). Returns false on unknown
/// type names, malformed pairs, or weights that are negative, non-numeric,
/// or trailed by garbage.
inline bool ParseWorkloadMix(const std::string& s, WorkloadMix* mix) {
  WorkloadMix parsed;
  parsed.range = 0;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    const std::string part = s.substr(start, end - start);
    start = end + 1;
    if (part.empty()) continue;
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = part.substr(0, colon);
    const char* weight_text = part.c_str() + colon + 1;
    char* weight_end = nullptr;
    const double weight = std::strtod(weight_text, &weight_end);
    if (weight_end == weight_text || *weight_end != '\0') return false;
    if (!(weight >= 0) || weight > 1e12) return false;  // rejects NaN/inf
    if (name == "range") {
      parsed.range = weight;
    } else if (name == "point") {
      parsed.point = weight;
    } else if (name == "count") {
      parsed.count = weight;
    } else if (name == "knn") {
      parsed.knn = weight;
    } else if (name == "join") {
      parsed.join = weight;
    } else if (name == "insert") {
      parsed.insert = weight;
    } else if (name == "erase") {
      parsed.erase = weight;
    } else {
      return false;
    }
  }
  if (parsed.Total() <= 0) return false;
  *mix = parsed;
  return true;
}

}  // namespace quasii::bench

#endif  // QUASII_BENCH_WORKLOAD_H_
