#ifndef QUASII_BENCH_WORKLOAD_H_
#define QUASII_BENCH_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/query.h"
#include "common/rng.h"
#include "geometry/box.h"

namespace quasii::bench {

/// Per-type composition of a mixed workload: relative weights of the four
/// engine query types (they need not sum to 1; only ratios matter). The
/// default is the paper's pure-intersection workload, so existing configs
/// keep their exact behaviour.
struct WorkloadMix {
  double range = 1.0;
  double point = 0.0;
  double count = 0.0;
  double knn = 0.0;

  double Total() const { return range + point + count + knn; }
  bool IsPureRange() const { return point == 0 && count == 0 && knn == 0; }
};

/// The default heterogeneous mix of the mixed-workload experiments:
/// 70% range / 20% point / 5% count / 5% kNN.
inline WorkloadMix DefaultMixedWorkloadMix() {
  WorkloadMix mix;
  mix.range = 0.70;
  mix.point = 0.20;
  mix.count = 0.05;
  mix.knn = 0.05;
  return mix;
}

/// Everything needed to type a box workload: the mix plus the per-query
/// parameters of the non-range types.
struct WorkloadSpec {
  WorkloadMix mix;
  /// Neighbors per kNN query.
  std::size_t knn_k = 10;
  /// Seed of the type-interleaving draw (independent of the box workload's
  /// own seed so the spatial footprint stays identical across mixes).
  std::uint64_t seed = 5;
};

/// Stable indices/names of the per-type report sections.
enum QueryTypeIndex {
  kTypeRange = 0,
  kTypePoint = 1,
  kTypeCount = 2,
  kTypeKnn = 3,
  kNumQueryTypes = 4,
};

inline const char* QueryTypeName(int type_index) {
  switch (type_index) {
    case kTypeRange:
      return "range";
    case kTypePoint:
      return "point";
    case kTypeCount:
      return "count";
    case kTypeKnn:
      return "knn";
    default:
      return "?";
  }
}

template <int D>
int TypeIndexOf(const Query<D>& q) {
  switch (q.type) {
    case QueryType::kRange:
      return kTypeRange;
    case QueryType::kPoint:
      return kTypePoint;
    case QueryType::kCount:
      return kTypeCount;
    case QueryType::kKNearest:
      return kTypeKnn;
  }
  return kTypeRange;
}

/// Types a box workload: each footprint box becomes one typed query, its
/// type drawn from the mix — deterministic interleaving from the shared
/// `Rng`, so a (boxes, spec) pair always produces the same typed sequence.
/// Point and kNN queries probe the box centre, so every type exercises the
/// same spatial region and per-type results stay comparable.
template <int D>
std::vector<Query<D>> MakeTypedWorkload(const std::vector<Box<D>>& boxes,
                                        const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  const double weights[kNumQueryTypes] = {spec.mix.range, spec.mix.point,
                                          spec.mix.count, spec.mix.knn};
  const double total = spec.mix.Total();
  std::vector<Query<D>> queries;
  queries.reserve(boxes.size());
  for (const Box<D>& b : boxes) {
    // Roulette-wheel draw over the positive weights. The fallback for
    // floating-point drift past the last cumulative threshold is the last
    // *positive* type, so a type with weight 0 can never be emitted.
    int pick = kTypeRange;
    if (total > 0) {
      double u = rng.Uniform(0.0, total);
      bool chosen = false;
      for (int t = 0; t < kNumQueryTypes && !chosen; ++t) {
        if (weights[t] <= 0) continue;
        pick = t;
        chosen = u < weights[t];
        u -= weights[t];
      }
    }
    switch (pick) {
      case kTypePoint:
        queries.push_back(PointQuery<D>(b.Center()));
        break;
      case kTypeCount:
        queries.push_back(CountQuery<D>(b));
        break;
      case kTypeKnn:
        queries.push_back(KNearestQuery<D>(b.Center(), spec.knn_k));
        break;
      default:
        queries.push_back(RangeQuery<D>(b));
        break;
    }
  }
  return queries;
}

/// Parses a `--mix` specification of the form
/// `range:0.7,point:0.2,count:0.05,knn:0.05` (types may be omitted; their
/// weight defaults to 0). Returns false on unknown type names, malformed
/// pairs, or weights that are negative, non-numeric, or trailed by garbage.
inline bool ParseWorkloadMix(const std::string& s, WorkloadMix* mix) {
  WorkloadMix parsed;
  parsed.range = 0;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    const std::string part = s.substr(start, end - start);
    start = end + 1;
    if (part.empty()) continue;
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    const std::string name = part.substr(0, colon);
    const char* weight_text = part.c_str() + colon + 1;
    char* weight_end = nullptr;
    const double weight = std::strtod(weight_text, &weight_end);
    if (weight_end == weight_text || *weight_end != '\0') return false;
    if (!(weight >= 0) || weight > 1e12) return false;  // rejects NaN/inf
    if (name == "range") {
      parsed.range = weight;
    } else if (name == "point") {
      parsed.point = weight;
    } else if (name == "count") {
      parsed.count = weight;
    } else if (name == "knn") {
      parsed.knn = weight;
    } else {
      return false;
    }
  }
  if (parsed.Total() <= 0) return false;
  *mix = parsed;
  return true;
}

}  // namespace quasii::bench

#endif  // QUASII_BENCH_WORKLOAD_H_
