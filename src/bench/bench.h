#ifndef QUASII_BENCH_BENCH_H_
#define QUASII_BENCH_BENCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/json.h"
#include "common/dataset.h"
#include "common/spatial_index.h"
#include "common/timer.h"
#include "datagen/neuro.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "grid/grid_index.h"
#include "mosaic/mosaic_index.h"
#include "quasii/quasii_index.h"
#include "rtree/rtree_index.h"
#include "scan/scan_index.h"
#include "sfc/sfc_index.h"
#include "sfc/sfcracker_index.h"

namespace quasii::bench {

/// Configuration of one experiment run (paper Section 6.1 setup, scaled by
/// the caller): one dataset, one query workload, a roster of indexes.
struct BenchConfig {
  /// "uniform" (synthetic, Section 6.1) or "neuro" (clustered substitute).
  std::string dataset = "uniform";
  /// "uniform" (Section 6.6) or "clustered" (Section 6.1 default).
  std::string workload = "uniform";
  std::size_t n = std::size_t{1} << 17;
  int queries = 1000;
  double selectivity = 1e-3;
  std::uint64_t seed = 1;
  /// Empty = every index in the roster; otherwise exact `name()` matches.
  std::vector<std::string> indexes;
};

/// The full evaluation roster over one dataset (Section 6.1 list).
inline std::vector<std::unique_ptr<SpatialIndex<3>>> MakeIndexRoster(
    const Dataset3& data, const Box3& universe) {
  std::vector<std::unique_ptr<SpatialIndex<3>>> roster;
  roster.push_back(std::make_unique<ScanIndex<3>>(data));
  roster.push_back(std::make_unique<SfcIndex<3>>(data, universe));
  roster.push_back(std::make_unique<SfcrackerIndex<3>>(data, universe));
  {
    GridIndex<3>::Params p;
    p.assignment = GridAssignment::kQueryExtension;
    roster.push_back(std::make_unique<GridIndex<3>>(data, universe, p));
  }
  roster.push_back(std::make_unique<MosaicIndex<3>>(data, universe));
  roster.push_back(std::make_unique<RTreeIndex<3>>(data));
  roster.push_back(std::make_unique<QuasiiIndex<3>>(data));
  return roster;
}

/// Per-index measurement: build time, per-query latencies, cumulative stats.
struct IndexRun {
  std::string name;
  double build_ms = 0;
  double total_query_ms = 0;
  std::vector<double> latencies_ms;
  std::uint64_t result_objects = 0;
  QueryStats cumulative;
};

inline void MakeBenchInputs(const BenchConfig& config, Dataset3* data,
                            Box3* universe, std::vector<Box3>* queries) {
  if (config.dataset == "neuro") {
    datagen::NeuroDatasetParams p;
    p.count = config.n;
    p.seed = config.seed;
    *data = datagen::MakeNeuroDataset(p);
    *universe = datagen::NeuroUniverse(p);
  } else {
    datagen::UniformDatasetParams p;
    p.count = config.n;
    p.seed = config.seed;
    *data = datagen::MakeUniformDataset(p);
    *universe = datagen::UniformUniverse(p);
  }
  if (config.workload == "clustered") {
    datagen::ClusteredQueryParams p;
    // Round up per cluster, then trim, so exactly `queries` run.
    p.queries_per_cluster =
        (config.queries + p.clusters - 1) / std::max(p.clusters, 1);
    p.selectivity = config.selectivity;
    p.seed = config.seed + 1;
    *queries = datagen::MakeClusteredQueries(*universe, *data, p);
    // Trim the rounded-up cluster output. Clamp instead of a blind resize: a
    // resize past the generated count would *enlarge* the workload with
    // default-constructed (empty) query boxes.
    const std::size_t want = static_cast<std::size_t>(config.queries);
    if (queries->size() > want) queries->resize(want);
  } else {
    datagen::UniformQueryParams p;
    p.count = config.queries;
    p.selectivity = config.selectivity;
    p.seed = config.seed + 1;
    *queries = datagen::MakeUniformQueries(*universe, p);
  }
}

inline IndexRun RunIndex(SpatialIndex<3>* index,
                         const std::vector<Box3>& queries) {
  IndexRun run;
  run.name = std::string(index->name());
  Timer build_timer;
  index->Build();
  run.build_ms = build_timer.Millis();
  index->ResetStats();

  // Pre-size both vectors so reallocation never lands inside a timed query.
  run.latencies_ms.reserve(queries.size());
  std::vector<ObjectId> result;
  result.reserve(4096);
  for (const Box3& q : queries) {
    result.clear();
    Timer t;
    index->Query(q, &result);
    run.latencies_ms.push_back(t.Millis());
    run.total_query_ms += run.latencies_ms.back();
    run.result_objects += result.size();
  }
  run.cumulative = index->stats();
  return run;
}

inline void WriteStats(JsonWriter* w, const QueryStats& s) {
  w->BeginObject();
  w->Key("objects_tested").Uint(s.objects_tested);
  w->Key("partitions_visited").Uint(s.partitions_visited);
  w->Key("cracks").Uint(s.cracks);
  w->Key("objects_moved").Uint(s.objects_moved);
  w->Key("duplicates_removed").Uint(s.duplicates_removed);
  w->Key("intervals").Uint(s.intervals);
  w->EndObject();
}

/// Runs the configured experiment and returns the JSON report consumed by
/// the BENCH_*.json comparison tooling.
inline std::string RunBenchmark(const BenchConfig& config) {
  Dataset3 data;
  Box3 universe;
  std::vector<Box3> queries;
  MakeBenchInputs(config, &data, &universe, &queries);

  JsonWriter w;
  w.BeginObject();
  w.Key("config").BeginObject();
  w.Key("dataset").String(config.dataset);
  w.Key("workload").String(config.workload);
  w.Key("n").Uint(data.size());
  w.Key("queries").Uint(queries.size());
  w.Key("selectivity").Double(config.selectivity);
  w.Key("seed").Uint(config.seed);
  w.EndObject();

  w.Key("results").BeginArray();
  auto roster = MakeIndexRoster(data, universe);
  for (const auto& index : roster) {
    if (!config.indexes.empty() &&
        std::find(config.indexes.begin(), config.indexes.end(),
                  std::string(index->name())) == config.indexes.end()) {
      continue;
    }
    const IndexRun run = RunIndex(index.get(), queries);
    w.BeginObject();
    w.Key("index").String(run.name);
    w.Key("build_ms").Double(run.build_ms);
    w.Key("total_query_ms").Double(run.total_query_ms);
    w.Key("result_objects").Uint(run.result_objects);
    w.Key("cumulative_stats");
    WriteStats(&w, run.cumulative);
    w.Key("latencies_ms").BeginArray();
    for (const double ms : run.latencies_ms) w.Double(ms);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace quasii::bench

#endif  // QUASII_BENCH_BENCH_H_
