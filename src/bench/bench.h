#ifndef QUASII_BENCH_BENCH_H_
#define QUASII_BENCH_BENCH_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/workload.h"
#include "common/dataset.h"
#include "common/executor.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "common/timer.h"
#include "datagen/neuro.h"
#include "datagen/queries.h"
#include "datagen/synthetic.h"
#include "geometry/box.h"
#include "grid/grid_index.h"
#include "mosaic/mosaic_index.h"
#include "persist/recovery.h"
#include "quasii/quasii_index.h"
#include "rtree/rtree_index.h"
#include "scan/scan_index.h"
#include "sfc/sfc_index.h"
#include "sfc/sfcracker_index.h"

namespace quasii::bench {

/// Linear-interpolated percentile of a latency sample, `p` in [0, 1].
/// Copies and sorts; the report paths call it a handful of times per run.
/// Shared by the bench report (p50/p90/p99 per thread and overall) and the
/// wire client's per-client tail-latency summary.
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 1.0) return values.back();
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Durability wiring of a run (`src/persist/`): WAL every accepted
/// mutation, periodic snapshots, and an optional recover-before-run phase.
/// Restricted to sequential single-index runs — persistence is
/// single-threaded by contract, and one WAL belongs to one index.
struct DurabilityConfig {
  /// Append-only mutation log; empty disables durability entirely.
  std::string wal_path;
  /// Defaults to `wal_path + ".snapshot"`.
  std::string snapshot_path;
  /// Snapshot after every N accepted mutations (0 = never).
  std::size_t snapshot_every = 0;
  persist::FsyncPolicy fsync = persist::FsyncPolicy::kEveryOp;
  std::size_t fsync_every_n = 8;
  /// Recover from the snapshot + WAL before running the workload.
  bool recover = false;

  bool enabled() const { return !wal_path.empty(); }
  std::string EffectiveSnapshotPath() const {
    return snapshot_path.empty() ? wal_path + ".snapshot" : snapshot_path;
  }
};

/// Durability-side measurements of one run: logging/snapshot cost (kept
/// out of the per-op latencies, reported separately) and the recovery
/// outcome when `recover` was requested.
struct DurabilityRun {
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_syncs = 0;
  double wal_ms = 0;
  std::uint64_t snapshots_written = 0;
  double snapshot_ms = 0;
  /// First persistence failure of the run (`kNone` when clean); logging
  /// stops at the first failure so a broken disk cannot corrupt the log.
  persist::PersistError error = persist::PersistError::kNone;
  bool recovered = false;
  double recover_ms = 0;
  persist::RecoveryResult recovery;
};

/// Configuration of one experiment run (paper Section 6.1 setup, scaled by
/// the caller): one dataset, one query workload, a roster of indexes.
struct BenchConfig {
  /// "uniform" (synthetic, Section 6.1) or "neuro" (clustered substitute).
  std::string dataset = "uniform";
  /// "uniform" (Section 6.6) or "clustered" (Section 6.1 default).
  std::string workload = "uniform";
  std::size_t n = std::size_t{1} << 17;
  int queries = 1000;
  double selectivity = 1e-3;
  std::uint64_t seed = 1;
  /// Empty = every index in the roster; otherwise exact `name()` matches.
  std::vector<std::string> indexes;
  /// Per-type composition of the workload (default: pure range, the paper's
  /// setting) plus the kNN parameter.
  WorkloadMix mix;
  std::size_t knn_k = 10;
  /// Concurrent driver threads. 1 = the classic sequential measurement;
  /// N > 1 splits the workload into N deterministic per-thread op streams
  /// (disjoint id spaces) executed at once on a `ThreadPool`.
  int threads = 1;
  /// WAL + snapshot persistence (off unless `wal_path` is set).
  DurabilityConfig durability;
};

/// The full evaluation roster over one dataset (Section 6.1 list).
inline std::vector<std::unique_ptr<SpatialIndex<3>>> MakeIndexRoster(
    const Dataset3& data, const Box3& universe) {
  std::vector<std::unique_ptr<SpatialIndex<3>>> roster;
  roster.push_back(std::make_unique<ScanIndex<3>>(data));
  roster.push_back(std::make_unique<SfcIndex<3>>(data, universe));
  roster.push_back(std::make_unique<SfcrackerIndex<3>>(data, universe));
  {
    GridIndex<3>::Params p;
    p.assignment = GridAssignment::kQueryExtension;
    roster.push_back(std::make_unique<GridIndex<3>>(data, universe, p));
  }
  roster.push_back(std::make_unique<MosaicIndex<3>>(data, universe));
  roster.push_back(std::make_unique<RTreeIndex<3>>(data));
  roster.push_back(std::make_unique<QuasiiIndex<3>>(data));
  return roster;
}

/// Per-op-type aggregate of a run: how many operations of the type ran,
/// their wall clock, their result cardinality (query results; for mutations
/// the number of *accepted* operations), and the work counters they were
/// responsible for (stats deltas, so the per-type counters sum to the
/// cumulative ones).
struct TypeBreakdown {
  std::uint64_t queries = 0;
  double total_ms = 0;
  std::uint64_t result_objects = 0;
  QueryStats stats;
};

/// One thread's share of a concurrent run: its op stream's latencies and
/// per-type breakdown. The per-type `stats` stay zero here — work counters
/// are shared across threads mid-run, so per-op deltas are not attributable;
/// only the run-wide cumulative stats are reported.
struct ThreadRun {
  int thread = 0;
  double total_ms = 0;
  std::vector<double> latencies_ms;
  std::uint64_t result_objects = 0;
  std::array<TypeBreakdown, kNumOpTypes> per_type{};
};

/// Per-index measurement: build time, per-op latencies, cumulative stats,
/// and the per-op-type breakdown (the five query types plus insert/erase).
/// Threaded runs add the batch wall clock and one section per thread;
/// `latencies_ms` then concatenates the streams in thread order and
/// `total_query_ms` sums the client-observed per-op latencies across
/// threads — scheduling delay included, so it exceeds `wall_ms` under
/// contention; `wall_ms` is the throughput denominator.
struct IndexRun {
  std::string name;
  double build_ms = 0;
  double total_query_ms = 0;
  std::vector<double> latencies_ms;
  std::uint64_t result_objects = 0;
  QueryStats cumulative;
  std::array<TypeBreakdown, kNumOpTypes> per_type;
  int threads = 1;
  double wall_ms = 0;
  std::vector<ThreadRun> per_thread;
};

/// The right-hand box set of a config's stream-join ops: a fixed-size
/// uniform box set drawn with its own seed stream (`seed + 3`), so adding
/// `join:` to a mix perturbs neither the dataset nor the query footprints.
inline std::vector<Box3> MakeJoinSource(const BenchConfig& config,
                                        const Box3& universe) {
  datagen::UniformQueryParams p;
  p.count = 64;
  p.selectivity = config.selectivity;
  p.seed = config.seed + 3;
  return datagen::MakeUniformQueries(universe, p);
}

inline void MakeBenchInputs(const BenchConfig& config, Dataset3* data,
                            Box3* universe, std::vector<Box3>* queries) {
  if (config.dataset == "neuro") {
    datagen::NeuroDatasetParams p;
    p.count = config.n;
    p.seed = config.seed;
    *data = datagen::MakeNeuroDataset(p);
    *universe = datagen::NeuroUniverse(p);
  } else {
    datagen::UniformDatasetParams p;
    p.count = config.n;
    p.seed = config.seed;
    *data = datagen::MakeUniformDataset(p);
    *universe = datagen::UniformUniverse(p);
  }
  if (config.workload == "clustered") {
    datagen::ClusteredQueryParams p;
    // Round up per cluster, then trim, so exactly `queries` run.
    p.queries_per_cluster =
        (config.queries + p.clusters - 1) / std::max(p.clusters, 1);
    p.selectivity = config.selectivity;
    p.seed = config.seed + 1;
    *queries = datagen::MakeClusteredQueries(*universe, *data, p);
    // Trim the rounded-up cluster output. Clamp instead of a blind resize: a
    // resize past the generated count would *enlarge* the workload with
    // default-constructed (empty) query boxes.
    const std::size_t want = static_cast<std::size_t>(config.queries);
    if (queries->size() > want) queries->resize(want);
  } else {
    datagen::UniformQueryParams p;
    p.count = config.queries;
    p.selectivity = config.selectivity;
    p.seed = config.seed + 1;
    *queries = datagen::MakeUniformQueries(*universe, p);
  }
}

/// The operation stream of a config: the box footprints typed per the mix
/// (queries plus insert/erase mutations), interleaved deterministically
/// from the config seed. `initial_n` is the dataset size the indexes were
/// loaded with (fresh insert ids start there).
inline std::vector<Op3> MakeBenchOps(const BenchConfig& config,
                                     const std::vector<Box3>& boxes,
                                     std::size_t initial_n,
                                     const std::vector<Box3>* join_source =
                                         nullptr) {
  WorkloadSpec spec;
  spec.mix = config.mix;
  spec.knn_k = config.knn_k;
  spec.seed = config.seed + 2;
  return MakeOpWorkload<3>(boxes, spec, initial_n, join_source);
}

/// Reusable sinks of a measurement loop, pre-sized so reallocation never
/// lands inside a timed query.
struct RunSinks {
  RunSinks() { result.reserve(4096); }
  std::vector<ObjectId> result;
  VectorSink vector_sink{&result};
  CountSink count_sink;
  CountPairSink pair_count;
};

struct TimedExec {
  double ms = 0;
  std::uint64_t results = 0;
};

/// Executes one operation — query (with the sink its type calls for) or
/// mutation — and times it. No stats accounting: safe to call from
/// concurrent threads, where work counters are shared and per-op deltas are
/// not attributable. For mutations `results` is 1 when the operation was
/// accepted.
inline TimedExec ExecTimedOp(SpatialIndex<3>* index, const Op3& op,
                             RunSinks* sinks) {
  TimedExec exec;
  if (op.kind() == OpKind::kQuery) {
    const Query3& q = op.query();
    if (q.type() == QueryType::kCount) {
      sinks->count_sink.Reset();
      Timer t;
      index->Execute(q, sinks->count_sink);
      exec.ms = t.Millis();
      exec.results = sinks->count_sink.count();
    } else {
      sinks->result.clear();
      Timer t;
      index->Execute(q, sinks->vector_sink);
      exec.ms = t.Millis();
      exec.results = sinks->result.size();
    }
    return exec;
  }
  if (op.kind() == OpKind::kJoin) {
    // The query is built here, at execution time: it borrows the op-owned
    // stream vector, which is only stable for this call.
    const Query3 q = JoinQuery<3>(op.join_stream());
    sinks->pair_count.Reset();
    Timer t;
    index->Execute(q, sinks->pair_count);
    exec.ms = t.Millis();
    exec.results = sinks->pair_count.count();
    return exec;
  }
  Timer t;
  const bool accepted = op.kind() == OpKind::kInsert
                            ? index->Insert(op.id(), op.box())
                            : index->Erase(op.id());
  exec.ms = t.Millis();
  exec.results = accepted ? 1 : 0;
  return exec;
}

/// Folds one executed op into its per-op-type section (latency, op count,
/// result/acceptance count — not stats).
inline void AccumulateOp(const Op3& op, const TimedExec& exec,
                         std::array<TypeBreakdown, kNumOpTypes>* per_type) {
  TypeBreakdown& agg =
      (*per_type)[static_cast<std::size_t>(OpTypeIndexOf(op))];
  ++agg.queries;
  agg.total_ms += exec.ms;
  agg.result_objects += exec.results;
}

/// Executes one operation — query or mutation — timing it into its
/// per-op-type section including the stats delta (sequential measurement
/// loops only: reading `index->stats()` around an op is only meaningful
/// when no other thread is working). For mutations `results` is 1 when the
/// operation was accepted (the store semantics are index-independent, so
/// acceptance patterns must agree across the roster like query results do).
inline TimedExec RunTimedOp(SpatialIndex<3>* index, const Op3& op,
                            RunSinks* sinks,
                            std::array<TypeBreakdown, kNumOpTypes>* per_type) {
  // Sequential loop: all work lands in this thread's shard, so the delta
  // comes from `thread_stats()` instead of folding every slot twice per op.
  const QueryStats before = index->thread_stats();
  const TimedExec exec = ExecTimedOp(index, op, sinks);
  AccumulateOp(op, exec, per_type);
  (*per_type)[static_cast<std::size_t>(OpTypeIndexOf(op))].stats +=
      index->thread_stats() - before;
  return exec;
}

/// Executes one typed query against `index`, timing it into its per-type
/// section — the sequential measurement primitive the microbench loop
/// shares with `RunTimedOp`.
inline TimedExec RunTimedQuery(
    SpatialIndex<3>* index, const Query3& q, RunSinks* sinks,
    std::array<TypeBreakdown, kNumOpTypes>* per_type) {
  return RunTimedOp(index, Op3::MakeQuery(q), sinks, per_type);
}

/// Sequential measurement loop. With a durability config, every accepted
/// mutation is WAL-logged (LSN = the store version it produced) and a
/// snapshot is taken every `snapshot_every` accepted mutations; the
/// logging/snapshot cost lands in `dur_out`, not in the per-op latencies.
inline IndexRun RunIndex(SpatialIndex<3>* index, const std::vector<Op3>& ops,
                         const DurabilityConfig* dur = nullptr,
                         DurabilityRun* dur_out = nullptr) {
  IndexRun run;
  run.name = std::string(index->name());
  Timer build_timer;
  index->Build();
  run.build_ms = build_timer.Millis();
  index->ResetStats();

  persist::WalWriter<3> wal;
  bool logging = dur != nullptr && dur->enabled() && dur_out != nullptr;
  if (logging) {
    const persist::PersistError err =
        wal.Open(dur->wal_path, dur->fsync, dur->fsync_every_n);
    if (err != persist::PersistError::kNone) {
      dur_out->error = err;
      logging = false;
    }
  }
  std::size_t accepted_mutations = 0;

  run.latencies_ms.reserve(ops.size());
  RunSinks sinks;
  for (const Op3& op : ops) {
    const TimedExec exec = RunTimedOp(index, op, &sinks, &run.per_type);
    run.latencies_ms.push_back(exec.ms);
    run.total_query_ms += exec.ms;
    run.result_objects += exec.results;
    const bool mutation = op.is_mutation();
    if (logging && mutation && exec.results == 1) {
      persist::WalRecord<3> rec;
      rec.lsn = index->store().version();
      rec.id = op.id();
      if (op.kind() == OpKind::kInsert) {
        rec.op = persist::WalOp::kInsert;
        rec.box = op.box();
      } else {
        rec.op = persist::WalOp::kErase;
      }
      Timer wal_timer;
      const persist::PersistError err = wal.Append(rec);
      dur_out->wal_ms += wal_timer.Millis();
      if (err != persist::PersistError::kNone) {
        dur_out->error = err;
        logging = false;
        continue;
      }
      ++accepted_mutations;
      if (dur->snapshot_every > 0 &&
          accepted_mutations % dur->snapshot_every == 0) {
        Timer snap_timer;
        const persist::PersistError serr =
            persist::WriteSnapshot<3>(*index, dur->EffectiveSnapshotPath());
        dur_out->snapshot_ms += snap_timer.Millis();
        if (serr != persist::PersistError::kNone) {
          dur_out->error = serr;
          logging = false;
        } else {
          ++dur_out->snapshots_written;
        }
      }
    }
  }
  if (dur_out != nullptr && (logging || wal.records_appended() > 0)) {
    Timer sync_timer;
    const persist::PersistError err = wal.Sync();
    dur_out->wal_ms += sync_timer.Millis();
    if (err != persist::PersistError::kNone &&
        dur_out->error == persist::PersistError::kNone) {
      dur_out->error = err;
    }
    dur_out->wal_records = wal.records_appended();
    dur_out->wal_bytes = wal.bytes_written();
    dur_out->wal_syncs = wal.syncs();
  }
  run.cumulative = index->stats();
  return run;
}

/// Concurrent measurement: each per-thread op stream runs on its own pool
/// worker against the shared index, with per-thread sinks and latency
/// vectors. Per-op stats deltas are not recorded (counters are shared
/// mid-run); the cumulative stats are read once after the pool drains. The
/// aggregate view concatenates/sums the thread sections, and `wall_ms` is
/// the whole batch's wall clock — the throughput denominator.
inline IndexRun RunIndexThreaded(SpatialIndex<3>* index,
                                 const std::vector<std::vector<Op3>>& streams) {
  IndexRun run;
  run.name = std::string(index->name());
  run.threads = static_cast<int>(streams.size());
  Timer build_timer;
  index->Build();
  run.build_ms = build_timer.Millis();
  index->ResetStats();

  run.per_thread.resize(streams.size());
  ThreadPool pool(static_cast<int>(streams.size()));
  Timer wall;
  for (std::size_t t = 0; t < streams.size(); ++t) {
    pool.Submit([index, &streams, &run, t] {
      ThreadRun& section = run.per_thread[t];
      section.thread = static_cast<int>(t);
      const std::vector<Op3>& ops = streams[t];
      section.latencies_ms.reserve(ops.size());
      RunSinks sinks;
      for (const Op3& op : ops) {
        const TimedExec exec = ExecTimedOp(index, op, &sinks);
        AccumulateOp(op, exec, &section.per_type);
        section.latencies_ms.push_back(exec.ms);
        section.total_ms += exec.ms;
        section.result_objects += exec.results;
      }
    });
  }
  pool.Wait();
  run.wall_ms = wall.Millis();

  for (const ThreadRun& section : run.per_thread) {
    run.latencies_ms.insert(run.latencies_ms.end(),
                            section.latencies_ms.begin(),
                            section.latencies_ms.end());
    run.total_query_ms += section.total_ms;
    run.result_objects += section.result_objects;
    for (int ty = 0; ty < kNumOpTypes; ++ty) {
      const TypeBreakdown& from =
          section.per_type[static_cast<std::size_t>(ty)];
      TypeBreakdown& to = run.per_type[static_cast<std::size_t>(ty)];
      to.queries += from.queries;
      to.total_ms += from.total_ms;
      to.result_objects += from.result_objects;
    }
  }
  run.cumulative = index->stats();
  return run;
}

inline void WriteStats(JsonWriter* w, const QueryStats& s) {
  w->BeginObject();
  w->Key("objects_tested").Uint(s.objects_tested);
  w->Key("partitions_visited").Uint(s.partitions_visited);
  w->Key("cracks").Uint(s.cracks);
  w->Key("objects_moved").Uint(s.objects_moved);
  w->Key("duplicates_removed").Uint(s.duplicates_removed);
  w->Key("intervals").Uint(s.intervals);
  w->Key("bytes_scanned").Uint(s.bytes_scanned);
  w->EndObject();
}

/// Emits the `per_type` object: one section per operation type, always all
/// seven — range/point/count/knn/join/insert/erase (zeroed sections make
/// schema consumers simpler than absent ones).
inline void WriteTypeBreakdown(
    JsonWriter* w, const std::array<TypeBreakdown, kNumOpTypes>& per_type) {
  w->BeginObject();
  for (int t = 0; t < kNumOpTypes; ++t) {
    const TypeBreakdown& agg = per_type[static_cast<std::size_t>(t)];
    w->Key(QueryTypeName(t)).BeginObject();
    w->Key("queries").Uint(agg.queries);
    w->Key("total_ms").Double(agg.total_ms);
    w->Key("mean_ms").Double(
        agg.queries > 0 ? agg.total_ms / static_cast<double>(agg.queries) : 0);
    w->Key("result_objects").Uint(agg.result_objects);
    w->Key("stats");
    WriteStats(w, agg.stats);
    w->EndObject();
  }
  w->EndObject();
}

inline void WriteMix(JsonWriter* w, const WorkloadMix& mix) {
  w->BeginObject();
  w->Key("range").Double(mix.range);
  w->Key("point").Double(mix.point);
  w->Key("count").Double(mix.count);
  w->Key("knn").Double(mix.knn);
  w->Key("join").Double(mix.join);
  w->Key("insert").Double(mix.insert);
  w->Key("erase").Double(mix.erase);
  w->EndObject();
}

/// Runs the configured experiment and returns the JSON report consumed by
/// the BENCH_*.json comparison tooling (schema v6: single-index runs can
/// carry a `durability` section — WAL/snapshot cost and, with `--recover`,
/// the recovery outcome). A durability or recovery failure sets `*error`
/// and returns ""; `error == nullptr` runs without durability plumbing.
inline std::string RunBenchmark(const BenchConfig& config,
                                std::string* error) {
  Dataset3 data;
  Box3 universe;
  std::vector<Box3> boxes;
  MakeBenchInputs(config, &data, &universe, &boxes);
  std::vector<Box3> join_source;
  if (config.mix.join > 0) join_source = MakeJoinSource(config, universe);
  const bool threaded = config.threads > 1;
  std::vector<Op3> ops;
  std::vector<std::vector<Op3>> streams;
  std::size_t total_ops = 0;
  if (threaded) {
    WorkloadSpec spec;
    spec.mix = config.mix;
    spec.knn_k = config.knn_k;
    spec.seed = config.seed + 2;
    streams = MakeThreadOpStreams(boxes, spec, data.size(), config.threads,
                                  &join_source);
    for (const auto& s : streams) total_ops += s.size();
  } else {
    ops = MakeBenchOps(config, boxes, data.size(), &join_source);
    total_ops = ops.size();
  }

  JsonWriter w;
  w.BeginObject();
  const bool durable = config.durability.enabled() && error != nullptr;
  w.Key("schema").String("quasii-bench-v9");
  w.Key("config").BeginObject();
  w.Key("dataset").String(config.dataset);
  w.Key("workload").String(config.workload);
  w.Key("n").Uint(data.size());
  w.Key("queries").Uint(total_ops);
  w.Key("selectivity").Double(config.selectivity);
  w.Key("seed").Uint(config.seed);
  w.Key("mix");
  WriteMix(&w, config.mix);
  w.Key("knn_k").Uint(config.knn_k);
  w.Key("threads").Uint(static_cast<std::uint64_t>(
      threaded ? config.threads : 1));
  w.Key("exec_threads").Uint(static_cast<std::uint64_t>(IntraQueryThreads()));
  w.EndObject();

  w.Key("results").BeginArray();
  auto roster = MakeIndexRoster(data, universe);
  for (const auto& index : roster) {
    if (!config.indexes.empty() &&
        std::find(config.indexes.begin(), config.indexes.end(),
                  std::string(index->name())) == config.indexes.end()) {
      continue;
    }
    DurabilityRun dur;
    if (durable && config.durability.recover) {
      Timer recover_timer;
      dur.recovery = persist::RecoverIndex<3>(
          index.get(), config.durability.EffectiveSnapshotPath(),
          config.durability.wal_path);
      dur.recover_ms = recover_timer.Millis();
      dur.recovered = true;
      if (!dur.recovery.ok()) {
        *error = std::string("recovery failed: ") +
                 persist::PersistErrorName(dur.recovery.error) +
                 (dur.recovery.detail.empty() ? "" : ": ") +
                 dur.recovery.detail;
        return "";
      }
    }
    const IndexRun run =
        threaded ? RunIndexThreaded(index.get(), streams)
                 : RunIndex(index.get(), ops, durable ? &config.durability
                                                      : nullptr,
                            durable ? &dur : nullptr);
    if (durable && dur.error != persist::PersistError::kNone) {
      *error = std::string("durability failure: ") +
               persist::PersistErrorName(dur.error);
      return "";
    }
    w.BeginObject();
    w.Key("index").String(run.name);
    w.Key("build_ms").Double(run.build_ms);
    w.Key("total_query_ms").Double(run.total_query_ms);
    // Tail-latency summary over every client-observed per-op latency of the
    // run (all threads concatenated in a threaded run) — the v8 headline
    // metric next to the full latency array.
    w.Key("p50_ms").Double(Percentile(run.latencies_ms, 0.50));
    w.Key("p90_ms").Double(Percentile(run.latencies_ms, 0.90));
    w.Key("p99_ms").Double(Percentile(run.latencies_ms, 0.99));
    w.Key("result_objects").Uint(run.result_objects);
    w.Key("cumulative_stats");
    WriteStats(&w, run.cumulative);
    w.Key("per_type");
    WriteTypeBreakdown(&w, run.per_type);
    if (threaded) {
      // Threaded runs: the batch wall clock (the throughput denominator —
      // the per-op sum `total_query_ms` counts client-observed latencies,
      // scheduling delay included) and one section per thread. Per-type
      // stats inside them stay zero — see `ThreadRun`.
      w.Key("wall_ms").Double(run.wall_ms);
      w.Key("per_thread").BeginArray();
      for (const ThreadRun& section : run.per_thread) {
        w.BeginObject();
        w.Key("thread").Uint(static_cast<std::uint64_t>(section.thread));
        w.Key("ops").Uint(section.latencies_ms.size());
        w.Key("total_ms").Double(section.total_ms);
        // Per-client tail latency under the concurrent mixed workload —
        // each thread is one client of the run.
        w.Key("p50_ms").Double(Percentile(section.latencies_ms, 0.50));
        w.Key("p90_ms").Double(Percentile(section.latencies_ms, 0.90));
        w.Key("p99_ms").Double(Percentile(section.latencies_ms, 0.99));
        w.Key("result_objects").Uint(section.result_objects);
        w.Key("latencies_ms").BeginArray();
        for (const double ms : section.latencies_ms) w.Double(ms);
        w.EndArray();
        w.EndObject();
      }
      w.EndArray();
    }
    if (durable) {
      w.Key("durability").BeginObject();
      w.Key("wal_path").String(config.durability.wal_path);
      w.Key("snapshot_path").String(config.durability.EffectiveSnapshotPath());
      w.Key("fsync").String(
          std::string(persist::FsyncPolicyName(config.durability.fsync)));
      w.Key("wal_records").Uint(dur.wal_records);
      w.Key("wal_bytes").Uint(dur.wal_bytes);
      w.Key("wal_syncs").Uint(dur.wal_syncs);
      w.Key("wal_ms").Double(dur.wal_ms);
      w.Key("snapshots_written").Uint(dur.snapshots_written);
      w.Key("snapshot_ms").Double(dur.snapshot_ms);
      if (dur.recovered) {
        w.Key("recovery").BeginObject();
        w.Key("recover_ms").Double(dur.recover_ms);
        w.Key("snapshot_loaded").Bool(dur.recovery.snapshot_loaded);
        w.Key("structure_restored").Bool(dur.recovery.structure_restored);
        w.Key("snapshot_lsn").Uint(dur.recovery.snapshot_lsn);
        w.Key("wal_records").Uint(dur.recovery.wal_records);
        w.Key("wal_replayed").Uint(dur.recovery.wal_replayed);
        w.Key("wal_tail_truncated").Bool(dur.recovery.wal_tail_truncated);
        w.Key("recovered_lsn").Uint(dur.recovery.recovered_lsn);
        w.EndObject();
      }
      w.EndObject();
    }
    w.Key("latencies_ms").BeginArray();
    for (const double ms : run.latencies_ms) w.Double(ms);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

inline std::string RunBenchmark(const BenchConfig& config) {
  return RunBenchmark(config, nullptr);
}

}  // namespace quasii::bench

#endif  // QUASII_BENCH_BENCH_H_
