#ifndef QUASII_BENCH_JSON_H_
#define QUASII_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace quasii::bench {

/// Minimal streaming JSON writer for the benchmark reports. Handles comma
/// placement via a nesting stack; values must be emitted through the typed
/// methods so numbers stay finite (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_ << '{';
    stack_.push_back(State::kFirstInObject);
    return *this;
  }
  JsonWriter& EndObject() {
    stack_.pop_back();
    out_ << '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_ << '[';
    stack_.push_back(State::kFirstInArray);
    return *this;
  }
  JsonWriter& EndArray() {
    stack_.pop_back();
    out_ << ']';
    return *this;
  }

  JsonWriter& Key(std::string_view k) {
    Prefix();
    Quote(k);
    out_ << ':';
    stack_.push_back(State::kAfterKey);
    return *this;
  }

  JsonWriter& String(std::string_view v) {
    Prefix();
    Quote(v);
    return *this;
  }
  JsonWriter& Uint(std::uint64_t v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Int(std::int64_t v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Double(double v) {
    Prefix();
    if (!std::isfinite(v)) v = 0.0;
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << v;
    const std::string s = tmp.str();
    out_ << s;
    // "1e+06" and "42" are valid JSON numbers already; nothing to patch.
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Prefix();
    out_ << (v ? "true" : "false");
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  enum class State {
    kFirstInObject,
    kInObject,
    kFirstInArray,
    kInArray,
    kAfterKey,
  };

  void Prefix() {
    if (stack_.empty()) return;
    switch (stack_.back()) {
      case State::kFirstInObject:
        stack_.back() = State::kInObject;
        break;
      case State::kFirstInArray:
        stack_.back() = State::kInArray;
        break;
      case State::kInObject:
      case State::kInArray:
        out_ << ',';
        break;
      case State::kAfterKey:
        stack_.pop_back();  // the value consumes the pending key
        break;
    }
  }

  void Quote(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out_ << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
                 << "0123456789abcdef"[c & 0xF];
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<State> stack_;
};

}  // namespace quasii::bench

#endif  // QUASII_BENCH_JSON_H_
