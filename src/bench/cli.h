#ifndef QUASII_BENCH_CLI_H_
#define QUASII_BENCH_CLI_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace quasii::bench::cli {

/// Strict numeric flag parsing shared by the bench and microbench drivers.
/// Every parser consumes the ENTIRE value or fails — `--n=123abc`,
/// `--queries=`, and `--selectivity=nan` are diagnostics and a nonzero
/// exit, never a silent fallback to atoi()'s prefix (or zero).

inline bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

inline bool ParseI64(const std::string& s, std::int64_t* out) {
  const std::size_t sign = s.size() > 0 && (s[0] == '-' || s[0] == '+');
  if (s.size() == sign || s[sign] < '0' || s[sign] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

/// Finite decimal doubles only: rejects partial parses, leading
/// whitespace, "nan", "inf".
inline bool ParseDouble(const std::string& s, double* out) {
  const std::size_t sign = s.size() > 0 && (s[0] == '-' || s[0] == '+');
  if (s.size() == sign ||
      (s[sign] != '.' && (s[sign] < '0' || s[sign] > '9'))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) return false;
  *out = v;
  return true;
}

inline std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) parts.push_back(s.substr(start));
      break;
    }
    if (comma > start) parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// Splits one `--key=value` argument. `--recover`-style boolean flags have
/// no '='; they come back with `has_value == false` and an empty value.
struct FlagArg {
  bool is_flag = false;  // starts with "--"
  bool has_value = false;
  std::string key;
  std::string value;
};

inline FlagArg SplitFlag(const std::string& arg) {
  FlagArg out;
  if (arg.rfind("--", 0) != 0) return out;
  out.is_flag = true;
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos) {
    out.key = arg.substr(2);
  } else {
    out.has_value = true;
    out.key = arg.substr(2, eq - 2);
    out.value = arg.substr(eq + 1);
  }
  return out;
}

}  // namespace quasii::bench::cli

#endif  // QUASII_BENCH_CLI_H_
