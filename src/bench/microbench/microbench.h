#ifndef QUASII_BENCH_MICROBENCH_MICROBENCH_H_
#define QUASII_BENCH_MICROBENCH_MICROBENCH_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench.h"
#include "bench/json.h"
#include "bench/workload.h"
#include "common/dataset.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "common/timer.h"
#include "geometry/box.h"
#include "quasii/quasii_index.h"
#include "scan/scan_index.h"
#include "sfc/sfcracker_index.h"

namespace quasii::bench {

/// The perf-trajectory microbenchmark: the two incremental indexes (QUASII,
/// SFCracker) plus the Scan baseline over the Section 6.1 configurations at
/// n = 2^min_exp .. 2^max_exp. Its `BENCH_quasii.json` report is the
/// baseline every perf PR diffs against: first-query cost, the per-query
/// convergence curve, cumulative crack/move counters, and total query time.
/// The "mixed" workload (70% range / 20% point / 5% count / 5% kNN through
/// the typed engine) measures whether QUASII's convergence survives
/// heterogeneous workloads — the paper's §7 open question.
struct MicrobenchOptions {
  int min_exp = 17;
  int max_exp = 20;
  int queries = 1000;
  std::uint64_t seed = 1;
  /// Subset of {"uniform", "clustered", "mixed"}; uniform + clustered when
  /// empty (the committed-baseline matrix).
  std::vector<std::string> workloads;
};

/// One point of an index's convergence curve, sampled at geometrically
/// spaced query counts (1, 2, 4, ..., total) so early refinement and steady
/// state are both visible at a glance.
struct ConvergencePoint {
  int query = 0;  // 1-based index of the query just executed
  double cumulative_ms = 0;
  std::uint64_t cumulative_cracks = 0;
  std::uint64_t cumulative_objects_moved = 0;
};

/// Per-index microbench measurement (a superset of `IndexRun`'s fields,
/// shaped for convergence analysis instead of raw latency dumps).
struct MicroRun {
  std::string name;
  double build_ms = 0;
  double first_query_ms = 0;
  double total_query_ms = 0;
  /// Mean latency over the last 10% of queries — the converged cost.
  double steady_tail_mean_ms = 0;
  std::uint64_t result_objects = 0;
  QueryStats cumulative;
  std::array<TypeBreakdown, kNumQueryTypes> per_type;
  std::vector<ConvergencePoint> convergence;
};

/// The microbench roster: the §6.3 incremental-index comparison plus the
/// index-less baseline.
inline std::vector<std::unique_ptr<SpatialIndex<3>>> MakeMicrobenchRoster(
    const Dataset3& data, const Box3& universe) {
  std::vector<std::unique_ptr<SpatialIndex<3>>> roster;
  roster.push_back(std::make_unique<ScanIndex<3>>(data));
  roster.push_back(std::make_unique<SfcrackerIndex<3>>(data, universe));
  roster.push_back(std::make_unique<QuasiiIndex<3>>(data));
  return roster;
}

inline MicroRun RunMicro(SpatialIndex<3>* index,
                         const std::vector<Query3>& queries) {
  MicroRun run;
  run.name = std::string(index->name());
  Timer build_timer;
  index->Build();
  run.build_ms = build_timer.Millis();
  index->ResetStats();

  RunSinks sinks;
  int next_sample = 1;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const TimedExec exec =
        RunTimedQuery(index, queries[i], &sinks, &run.per_type);
    run.total_query_ms += exec.ms;
    run.result_objects += exec.results;
    if (i == 0) run.first_query_ms = exec.ms;
    const int done = static_cast<int>(i) + 1;
    if (done == next_sample || i + 1 == queries.size()) {
      ConvergencePoint p;
      p.query = done;
      p.cumulative_ms = run.total_query_ms;
      p.cumulative_cracks = index->stats().cracks;
      p.cumulative_objects_moved = index->stats().objects_moved;
      run.convergence.push_back(p);
      while (next_sample <= done) next_sample *= 2;
    }
  }

  run.cumulative = index->stats();
  // Converged per-query cost: repeat the last 10% of the workload once more.
  // Those regions are fully refined now, so this measures steady state
  // without polluting the totals recorded above (the per-type counters do
  // absorb the re-run's stats deltas into a scratch copy, not the report).
  const std::size_t tail = std::max<std::size_t>(1, queries.size() / 10);
  std::array<TypeBreakdown, kNumQueryTypes> scratch{};
  double tail_ms = 0;
  for (std::size_t i = queries.size() - tail; i < queries.size(); ++i) {
    tail_ms += RunTimedQuery(index, queries[i], &sinks, &scratch).ms;
  }
  run.steady_tail_mean_ms = tail_ms / static_cast<double>(tail);
  return run;
}

inline void WriteMicroRun(JsonWriter* w, const MicroRun& run) {
  w->BeginObject();
  w->Key("index").String(run.name);
  w->Key("build_ms").Double(run.build_ms);
  w->Key("first_query_ms").Double(run.first_query_ms);
  w->Key("total_query_ms").Double(run.total_query_ms);
  w->Key("steady_tail_mean_ms").Double(run.steady_tail_mean_ms);
  w->Key("result_objects").Uint(run.result_objects);
  w->Key("cumulative_stats");
  WriteStats(w, run.cumulative);
  w->Key("per_type");
  WriteTypeBreakdown(w, run.per_type);
  w->Key("convergence").BeginArray();
  for (const ConvergencePoint& p : run.convergence) {
    w->BeginObject();
    w->Key("query").Uint(static_cast<std::uint64_t>(p.query));
    w->Key("cumulative_ms").Double(p.cumulative_ms);
    w->Key("cumulative_cracks").Uint(p.cumulative_cracks);
    w->Key("cumulative_objects_moved").Uint(p.cumulative_objects_moved);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

/// Runs the full microbench matrix and returns the BENCH_quasii.json report.
inline std::string RunMicrobench(const MicrobenchOptions& options) {
  std::vector<std::string> workloads = options.workloads;
  if (workloads.empty()) workloads = {"uniform", "clustered"};

  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("quasii-microbench-v2");
  w.Key("options").BeginObject();
  w.Key("min_exp").Int(options.min_exp);
  w.Key("max_exp").Int(options.max_exp);
  w.Key("queries").Int(options.queries);
  w.Key("seed").Uint(options.seed);
  w.EndObject();

  w.Key("configs").BeginArray();
  for (const std::string& workload : workloads) {
    for (int e = options.min_exp; e <= options.max_exp; ++e) {
      BenchConfig config;
      config.dataset = "uniform";
      // The mixed workload reuses the uniform footprint generator; only the
      // query *types* differ.
      const bool mixed = workload == "mixed";
      config.workload = mixed ? "uniform" : workload;
      config.n = std::size_t{1} << e;
      config.queries = options.queries;
      // Paper selectivities: 0.1% for the uniform workload (§6.6), 10^-2 %
      // for the clustered default (§6.1).
      config.selectivity = config.workload == "clustered" ? 1e-4 : 1e-3;
      config.seed = options.seed;
      if (mixed) config.mix = DefaultMixedWorkloadMix();

      Dataset3 data;
      Box3 universe;
      std::vector<Box3> boxes;
      MakeBenchInputs(config, &data, &universe, &boxes);
      const std::vector<Query3> queries = MakeBenchWorkload(config, boxes);

      w.BeginObject();
      w.Key("dataset").String(config.dataset);
      w.Key("workload").String(workload);
      w.Key("n").Uint(data.size());
      w.Key("queries").Uint(queries.size());
      w.Key("selectivity").Double(config.selectivity);
      w.Key("seed").Uint(config.seed);
      w.Key("mix");
      WriteMix(&w, config.mix);
      w.Key("results").BeginArray();
      auto roster = MakeMicrobenchRoster(data, universe);
      for (const auto& index : roster) {
        const MicroRun run = RunMicro(index.get(), queries);
        WriteMicroRun(&w, run);
      }
      w.EndArray();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace quasii::bench

#endif  // QUASII_BENCH_MICROBENCH_MICROBENCH_H_
