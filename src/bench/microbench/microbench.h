#ifndef QUASII_BENCH_MICROBENCH_MICROBENCH_H_
#define QUASII_BENCH_MICROBENCH_MICROBENCH_H_

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench.h"
#include "bench/json.h"
#include "bench/workload.h"
#include "common/bytes.h"
#include "common/dataset.h"
#include "common/executor.h"
#include "common/query.h"
#include "common/request.h"
#include "common/simd.h"
#include "common/spatial_index.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "geometry/box.h"
#include "quasii/quasii_index.h"
#include "scan/scan_index.h"
#include "sfc/sfcracker_index.h"

namespace quasii::bench {

/// The perf-trajectory microbenchmark: the two incremental indexes (QUASII,
/// SFCracker) plus the Scan baseline over the Section 6.1 configurations at
/// n = 2^min_exp .. 2^max_exp. Its `BENCH_quasii.json` report is the
/// baseline every perf PR diffs against: first-query cost, the per-query
/// convergence curve, cumulative crack/move counters, and total query time.
/// The "mixed" workload (70% range / 20% point / 5% count / 5% kNN through
/// the typed engine) measures whether QUASII's convergence survives
/// heterogeneous workloads — the paper's §7 open question — and the
/// "readwrite" workload interleaves inserts and erases with the queries
/// (55/15/5/5/15/5), measuring incremental maintenance under a shifting
/// population. Schema v3 added the insert/erase per-op-type sections and a
/// `post_workload` verification block (every range query of the stream
/// re-run after the mutations, with an order-sensitive checksum that must
/// agree across the roster). Schema v4 adds the `scaling` block on the
/// uniform-workload QUASII results: aggregate query throughput of the
/// *converged* index at 1/2/4/8 pool threads (the whole query stream,
/// repeated to a measurable batch size, through `BatchExecutor`), the
/// measurement behind the multi-threaded execution layer's acceptance bar.
/// Schema v5 adds the `join` per-op-type section everywhere and the "join"
/// workload: repeated self-joins per index, the measurement behind the
/// crack-driven join's acceptance bar (QUASII must produce the same pairs
/// as Scan's nested loop while testing far fewer objects, and converge —
/// later rounds add no cracks). The join workload is quadratic for the
/// Scan baseline, so it belongs to CI-sized exponents, not the default
/// full-size matrix. Schema v6 adds the `recovery` block on the
/// uniform-workload QUASII results: the converged index is snapshotted
/// (`src/persist/`), recovered into a fresh instance, and re-queried — the
/// durability acceptance bar is `replay_cracks == 0` (the restored slice
/// hierarchy is already converged) with a matching result checksum.
/// Schema v7 adds `bytes_scanned` to every stats object, the `memory` block
/// on QUASII results (scan working set: `resident_column_bytes` vs
/// `raw_column_bytes`, packed-leaf coverage), the `simd_tier` option, and
/// the `ab` block on the uniform-workload QUASII results: interleaved A/B
/// reruns of the converged read stream comparing the scalar vs native SIMD
/// tier (raw columns) and raw vs packed columns (native tier), with
/// checksum/counter equality verdicts — the measurement behind the explicit
/// SIMD kernel layer's acceptance bar. Schema v9 (v8 is skipped so the
/// microbench and bench driver schemas stay aligned) adds the "parallel"
/// entry to the `ab` block — cold-start first-query cost at 1 vs 8
/// intra-query exec threads over fresh indexes, with checksum/counter
/// equality plus a `content_match` verdict that the parallel run produced
/// the bit-identical physical crack structure — and records the
/// `exec_threads` / `grain` morsel-execution options.
struct MicrobenchOptions {
  int min_exp = 17;
  int max_exp = 20;
  int queries = 1000;
  std::uint64_t seed = 1;
  /// Subset of {"uniform", "clustered", "mixed", "readwrite", "join"};
  /// uniform + clustered + readwrite when empty (the committed-baseline
  /// matrix).
  std::vector<std::string> workloads;
};

/// One point of an index's convergence curve, sampled at geometrically
/// spaced operation counts (1, 2, 4, ..., total) so early refinement and
/// steady state are both visible at a glance.
struct ConvergencePoint {
  int query = 0;  // 1-based index of the operation just executed
  double cumulative_ms = 0;
  std::uint64_t cumulative_cracks = 0;
  std::uint64_t cumulative_objects_moved = 0;
};

/// Post-workload verification: every range query of the stream re-run once
/// the mutations have landed. `checksum` folds each query's sorted result
/// ids through FNV-1a in stream order, so any per-query divergence across
/// the roster changes it.
struct PostWorkload {
  std::uint64_t queries = 0;
  std::uint64_t result_objects = 0;
  std::uint64_t checksum = 0;
};

/// One point of the converged-throughput scaling curve.
struct ScalingPoint {
  int threads = 0;
  int rounds = 0;
  std::uint64_t queries = 0;  // total executed: stream queries × rounds
  double wall_ms = 0;
  double queries_per_s = 0;
};

/// Measures aggregate query throughput of the (already converged) index at
/// 1/2/4/8 pool threads: the read-only query stream, repeated to a
/// measurable batch size, dispatched through `BatchExecutor` — so converged
/// QUASII executions take the shared-lock path and scale with threads.
/// Wall-clock only; the index's reported work counters were captured before
/// this runs. Speedups are only meaningful on machines with that many
/// hardware threads (the report records throughput, not a verdict).
inline std::vector<ScalingPoint> MeasureScaling(SpatialIndex<3>* index,
                                                const std::vector<Op3>& ops) {
  std::vector<Query3> queries;
  queries.reserve(ops.size());
  for (const Op3& op : ops) {
    if (op.kind() == OpKind::kQuery) queries.push_back(op.query());
  }
  std::vector<ScalingPoint> points;
  if (queries.empty()) return points;
  // Repeat the stream so each measurement is a sizeable batch: short runs
  // would time pool wake-up, not query execution — and the CI scaling
  // check gates on the 8-vs-1-thread ratio, so the window must be long
  // enough for runner noise to average out.
  constexpr std::size_t kTargetQueries = 32768;
  const int rounds = static_cast<int>(
      std::max<std::size_t>(1, kTargetQueries / queries.size()));
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    BatchExecutor<3> executor(&pool);
    Timer wall;
    for (int r = 0; r < rounds; ++r) {
      executor.Run(index, std::span<const Query3>(queries));
    }
    ScalingPoint p;
    p.threads = threads;
    p.rounds = rounds;
    p.queries = queries.size() * static_cast<std::size_t>(rounds);
    p.wall_ms = wall.Millis();
    p.queries_per_s = p.wall_ms > 0
                          ? static_cast<double>(p.queries) * 1000.0 / p.wall_ms
                          : 0;
    points.push_back(p);
  }
  return points;
}

/// The snapshot→recover round trip of a converged index (QUASII on the
/// uniform configs): how big the snapshot is, what saving and recovering
/// cost, and the two durability acceptance checks — a recovered index must
/// answer the workload's range queries with the identical checksum while
/// performing zero cracks (its restored structure is already converged).
struct RecoveryPoint {
  std::uint64_t snapshot_bytes = 0;
  double save_ms = 0;
  double recover_ms = 0;
  std::uint64_t replay_queries = 0;
  std::uint64_t replay_cracks = 0;
  bool checksum_match = false;
  bool ok = false;  // snapshot + recovery both succeeded
};

/// One interleaved A/B comparison over the converged read stream: mode A and
/// mode B alternate pass-by-pass (A,B,A,B,...) so drift hits both equally,
/// and each mode's median pass time is reported. A final untimed pass per
/// mode verifies that results (stream checksum) and work counters are
/// bit-identical across modes — the kernels must differ in speed only.
struct AbResult {
  std::string name;    // "simd", "packed", or "parallel"
  std::string mode_a;  // e.g. "scalar" / "raw" / "threads=1"
  std::string mode_b;  // e.g. "avx2" / "packed" / "threads=8"
  double a_median_ms = 0;
  double b_median_ms = 0;
  double speedup = 0;  // a_median / b_median: how much faster B runs
  int rounds = 0;      // timed passes per mode
  int a_threads = 0;   // intra-query exec threads per mode ("parallel" only)
  int b_threads = 0;
  bool checksum_match = false;
  bool counters_match = false;
  /// Physical-structure verdict: a digest of the index's serialized
  /// structure (crack columns, slice boundaries) agrees across modes. The
  /// simd/packed comparisons run on one already-converged index, so there
  /// it holds by construction; the "parallel" comparison cracks two fresh
  /// indexes and must reproduce the *same physical layout* either way.
  bool content_match = true;
};

/// One timed pass of the workload's range queries (results accumulated, not
/// sorted or digested — this times query execution, nothing else).
inline double TimeRangePass(SpatialIndex<3>* index,
                            const std::vector<Op3>& ops) {
  std::vector<ObjectId> ids;
  VectorSink sink(&ids);
  Timer t;
  for (const Op3& op : ops) {
    if (op.kind() != OpKind::kQuery) continue;
    if (op.query().type() != QueryType::kRange) {
      continue;
    }
    ids.clear();
    index->Execute(op.query(), sink);
  }
  return t.Millis();
}

inline double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

/// Timed passes per A/B mode (interleaved, so 2x this many passes total).
constexpr int kAbRounds = 5;

/// Order-sensitive FNV-1a fold over every range query's sorted result ids —
/// the same digest `RunMicro`'s post-workload pass computes.
inline std::uint64_t RangeQueryChecksum(
    SpatialIndex<3>* index, const std::vector<Op3>& ops,
    std::uint64_t* queries_out, std::uint64_t* result_objects_out = nullptr) {
  std::vector<ObjectId> ids;
  VectorSink id_sink(&ids);
  std::uint64_t checksum = 14695981039346656037ull;  // FNV-1a offset basis
  const auto fnv = [&checksum](std::uint64_t v) {
    checksum = (checksum ^ v) * 1099511628211ull;
  };
  for (const Op3& op : ops) {
    if (op.kind() != OpKind::kQuery) continue;
    if (op.query().type() != QueryType::kRange) {
      continue;
    }
    ids.clear();
    index->Execute(op.query(), id_sink);
    std::sort(ids.begin(), ids.end());
    fnv(ids.size());
    for (const ObjectId id : ids) fnv(id);
    if (queries_out != nullptr) ++*queries_out;
    if (result_objects_out != nullptr) *result_objects_out += ids.size();
  }
  return checksum;
}

/// Snapshots the (converged) index, recovers it into `fresh`, and replays
/// the workload's range queries against the recovered instance. The
/// snapshot lands at `snapshot_path` and is deleted before returning.
inline RecoveryPoint MeasureRecovery(const SpatialIndex<3>& converged,
                                     SpatialIndex<3>* fresh,
                                     const std::vector<Op3>& ops,
                                     std::uint64_t expected_checksum,
                                     const std::string& snapshot_path) {
  RecoveryPoint point;
  Timer save_timer;
  const persist::PersistError serr =
      persist::WriteSnapshot<3>(converged, snapshot_path,
                                &point.snapshot_bytes);
  point.save_ms = save_timer.Millis();
  if (serr != persist::PersistError::kNone) return point;

  Timer recover_timer;
  const persist::RecoveryResult rec =
      persist::RecoverIndex<3>(fresh, snapshot_path, /*wal_path=*/"");
  point.recover_ms = recover_timer.Millis();
  std::remove(snapshot_path.c_str());
  if (!rec.ok()) return point;
  point.ok = true;

  fresh->ResetStats();
  const std::uint64_t replayed =
      RangeQueryChecksum(fresh, ops, &point.replay_queries);
  point.replay_cracks = fresh->stats().cracks;
  point.checksum_match = replayed == expected_checksum;
  return point;
}

/// Runs one interleaved A/B comparison on a converged QUASII index.
/// `setup_a` / `setup_b` flip the execution mode (SIMD tier, packed-scan
/// toggle) before each pass; the caller restores its preferred mode after.
/// The index must already be converged for `ops` — the verification passes
/// require `cracks == 0` in both modes, so any reorganization fails the
/// `counters_match` verdict.
template <typename SetupA, typename SetupB>
inline AbResult MeasureAb(QuasiiIndex<3>* index, const std::vector<Op3>& ops,
                          std::uint64_t expected_checksum, const char* name,
                          const char* mode_a, SetupA setup_a,
                          const char* mode_b, SetupB setup_b) {
  AbResult r;
  r.name = name;
  r.mode_a = mode_a;
  r.mode_b = mode_b;
  r.rounds = kAbRounds;
  std::vector<double> a_ms;
  std::vector<double> b_ms;
  for (int i = 0; i < kAbRounds; ++i) {
    setup_a();
    a_ms.push_back(TimeRangePass(index, ops));
    setup_b();
    b_ms.push_back(TimeRangePass(index, ops));
  }
  setup_a();
  index->ResetStats();
  std::uint64_t queries_a = 0;
  const std::uint64_t sum_a = RangeQueryChecksum(index, ops, &queries_a);
  const QueryStats stats_a = index->stats();
  setup_b();
  index->ResetStats();
  std::uint64_t queries_b = 0;
  const std::uint64_t sum_b = RangeQueryChecksum(index, ops, &queries_b);
  const QueryStats stats_b = index->stats();
  r.checksum_match = sum_a == expected_checksum && sum_b == expected_checksum;
  r.counters_match = stats_a.objects_tested == stats_b.objects_tested &&
                     stats_a.partitions_visited == stats_b.partitions_visited &&
                     stats_a.cracks == 0 && stats_b.cracks == 0;
  r.a_median_ms = MedianOf(a_ms);
  r.b_median_ms = MedianOf(b_ms);
  r.speedup = r.b_median_ms > 0 ? r.a_median_ms / r.b_median_ms : 0;
  return r;
}

/// Cold-start first-query cost: a fresh QUASII index over `data`, then the
/// stream's first range query executed once — the §6.2 index-building spike
/// the morsel-parallel cracking path attacks. Returns 0 when the stream has
/// no range query.
inline double TimeColdFirstQuery(const Dataset3& data,
                                 const std::vector<Op3>& ops) {
  const Op3* first = nullptr;
  for (const Op3& op : ops) {
    if (op.kind() == OpKind::kQuery &&
        op.query().type() == QueryType::kRange) {
      first = &op;
      break;
    }
  }
  if (first == nullptr) return 0;
  QuasiiIndex<3> index(data);
  index.Build();
  std::vector<ObjectId> ids;
  VectorSink sink(&ids);
  Timer t;
  index.Execute(first->query(), sink);
  return t.Millis();
}

/// Full-stream verification state for one intra-query thread count: a fresh
/// index cracked by the whole workload, digested three ways.
struct ParallelVerify {
  std::uint64_t checksum = 0;   // post-workload range-query checksum
  std::uint64_t structure = 0;  // FNV over the serialized crack structure
  QueryStats stats;             // cumulative work counters
};

inline ParallelVerify RunParallelVerify(const Dataset3& data,
                                        const std::vector<Op3>& ops) {
  QuasiiIndex<3> index(data);
  index.Build();
  index.ResetStats();
  ParallelVerify v;
  std::uint64_t queries = 0;
  v.checksum = RangeQueryChecksum(&index, ops, &queries);
  v.stats = index.stats();
  std::string blob;
  ByteWriter w(&blob);
  if (index.SerializeStructure(w)) {
    v.structure = FnvBytes(kFnvBasis, blob);
  }
  return v;
}

/// The intra-query parallelism A/B: cold-start first-query time at 1 vs 8
/// exec threads, interleaved pass-by-pass over fresh indexes, plus a full
/// verification workload per mode. Parallel cracking must be *scheduling
/// only*: identical result checksums, identical crack/objects_tested/
/// objects_moved counters, and a bit-identical physical structure (the
/// serialized crack columns + slice boundaries). A `QUASII_EXEC_THREADS`
/// env cap may clamp the parallel arm back to 1 thread (the force-serial
/// CI job); the equality verdicts must hold regardless, the speedup only
/// means anything when `b_threads` really exceeds 1 and cores exist.
inline AbResult MeasureParallelAb(const Dataset3& data,
                                  const std::vector<Op3>& ops,
                                  std::uint64_t expected_checksum) {
  AbResult r;
  r.name = "parallel";
  r.rounds = kAbRounds;
  const int restore = IntraQueryThreads();
  r.a_threads = 1;
  r.b_threads = SetIntraQueryThreads(8);  // env cap may clamp below 8
  r.mode_a = "threads=" + std::to_string(r.a_threads);
  r.mode_b = "threads=" + std::to_string(r.b_threads);
  std::vector<double> a_ms;
  std::vector<double> b_ms;
  for (int i = 0; i < kAbRounds; ++i) {
    SetIntraQueryThreads(r.a_threads);
    a_ms.push_back(TimeColdFirstQuery(data, ops));
    SetIntraQueryThreads(r.b_threads);
    b_ms.push_back(TimeColdFirstQuery(data, ops));
  }
  SetIntraQueryThreads(r.a_threads);
  const ParallelVerify va = RunParallelVerify(data, ops);
  SetIntraQueryThreads(r.b_threads);
  const ParallelVerify vb = RunParallelVerify(data, ops);
  SetIntraQueryThreads(restore);
  r.checksum_match =
      va.checksum == expected_checksum && vb.checksum == expected_checksum;
  r.counters_match = va.stats.cracks == vb.stats.cracks &&
                     va.stats.objects_tested == vb.stats.objects_tested &&
                     va.stats.objects_moved == vb.stats.objects_moved;
  r.content_match = va.structure == vb.structure && va.structure != 0;
  r.a_median_ms = MedianOf(a_ms);
  r.b_median_ms = MedianOf(b_ms);
  r.speedup = r.b_median_ms > 0 ? r.a_median_ms / r.b_median_ms : 0;
  return r;
}

/// Per-index microbench measurement (a superset of `IndexRun`'s fields,
/// shaped for convergence analysis instead of raw latency dumps).
struct MicroRun {
  std::string name;
  double build_ms = 0;
  double first_query_ms = 0;
  double total_query_ms = 0;
  /// Mean latency over the last 10% of queries — the converged cost.
  double steady_tail_mean_ms = 0;
  std::uint64_t result_objects = 0;
  QueryStats cumulative;
  std::array<TypeBreakdown, kNumOpTypes> per_type;
  std::vector<ConvergencePoint> convergence;
  PostWorkload post_workload;
};

/// The microbench roster: the §6.3 incremental-index comparison plus the
/// index-less baseline.
inline std::vector<std::unique_ptr<SpatialIndex<3>>> MakeMicrobenchRoster(
    const Dataset3& data, const Box3& universe) {
  std::vector<std::unique_ptr<SpatialIndex<3>>> roster;
  roster.push_back(std::make_unique<ScanIndex<3>>(data));
  roster.push_back(std::make_unique<SfcrackerIndex<3>>(data, universe));
  roster.push_back(std::make_unique<QuasiiIndex<3>>(data));
  return roster;
}

/// Rounds of the join-workload scenario: the first self-join cracks (or
/// scans), the remaining ones measure the converged join cost — enough
/// points for the convergence curve to show the drop without paying the
/// quadratic Scan baseline more often than necessary.
constexpr int kJoinRounds = 4;

/// The join scenario: `kJoinRounds` repeated index-vs-itself joins through
/// `Execute(Query, PairSink&)`, shaped into the `MicroRun` schema — the
/// convergence points sample every round, `first_query_ms` is the cracking
/// round, `steady_tail_mean_ms` the last (converged) one, and all work
/// lands in the `join` per-type section. `result_objects` accumulates
/// canonical pair counts, which must agree across the roster.
inline MicroRun RunJoinMicro(SpatialIndex<3>* index) {
  MicroRun run;
  run.name = std::string(index->name());
  Timer build_timer;
  index->Build();
  run.build_ms = build_timer.Millis();
  index->ResetStats();

  const Query3 q = JoinQuery<3>(*index);
  CountPairSink pairs;
  TypeBreakdown& agg = run.per_type[static_cast<std::size_t>(kTypeJoin)];
  for (int r = 0; r < kJoinRounds; ++r) {
    const QueryStats before = index->thread_stats();
    pairs.Reset();
    Timer t;
    index->Execute(q, pairs);
    const double ms = t.Millis();
    run.total_query_ms += ms;
    run.result_objects += pairs.count();
    if (r == 0) run.first_query_ms = ms;
    if (r == kJoinRounds - 1) run.steady_tail_mean_ms = ms;
    ++agg.queries;
    agg.total_ms += ms;
    agg.result_objects += pairs.count();
    agg.stats += index->thread_stats() - before;
    ConvergencePoint p;
    p.query = r + 1;
    p.cumulative_ms = run.total_query_ms;
    p.cumulative_cracks = index->stats().cracks;
    p.cumulative_objects_moved = index->stats().objects_moved;
    run.convergence.push_back(p);
  }
  run.cumulative = index->stats();
  return run;
}

inline MicroRun RunMicro(SpatialIndex<3>* index, const std::vector<Op3>& ops) {
  MicroRun run;
  run.name = std::string(index->name());
  Timer build_timer;
  index->Build();
  run.build_ms = build_timer.Millis();
  index->ResetStats();

  RunSinks sinks;
  int next_sample = 1;
  bool first_query_recorded = false;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const TimedExec exec = RunTimedOp(index, ops[i], &sinks, &run.per_type);
    run.total_query_ms += exec.ms;
    run.result_objects += exec.results;
    // The first *query* (mutations before it are cheap appends and don't
    // initialize an incremental index) — the §6.2 index-building cost.
    if (!first_query_recorded && ops[i].kind() == OpKind::kQuery) {
      run.first_query_ms = exec.ms;
      first_query_recorded = true;
    }
    const int done = static_cast<int>(i) + 1;
    if (done == next_sample || i + 1 == ops.size()) {
      ConvergencePoint p;
      p.query = done;
      p.cumulative_ms = run.total_query_ms;
      p.cumulative_cracks = index->stats().cracks;
      p.cumulative_objects_moved = index->stats().objects_moved;
      run.convergence.push_back(p);
      while (next_sample <= done) next_sample *= 2;
    }
  }

  run.cumulative = index->stats();
  // Converged per-query cost: repeat the queries of the last 10% of the
  // stream once more. Those regions are fully refined now, so this measures
  // steady state without polluting the totals recorded above (the per-type
  // counters do absorb the re-run's stats deltas into a scratch copy, not
  // the report). Mutations are skipped: replaying an insert/erase would be
  // rejected by the store, and the tail is about query cost.
  const std::size_t tail = std::max<std::size_t>(1, ops.size() / 10);
  std::array<TypeBreakdown, kNumOpTypes> scratch{};
  double tail_ms = 0;
  std::size_t tail_queries = 0;
  for (std::size_t i = ops.size() - tail; i < ops.size(); ++i) {
    if (ops[i].kind() != OpKind::kQuery) continue;
    tail_ms += RunTimedOp(index, ops[i], &sinks, &scratch).ms;
    ++tail_queries;
  }
  run.steady_tail_mean_ms =
      tail_queries > 0 ? tail_ms / static_cast<double>(tail_queries) : 0;

  // Post-workload verification pass: the final state answers every range
  // query of the stream; its checksum must agree across the roster (and
  // with the recovered instance's replay in `MeasureRecovery`).
  run.post_workload.checksum =
      RangeQueryChecksum(index, ops, &run.post_workload.queries,
                         &run.post_workload.result_objects);
  return run;
}

inline void WriteMicroRun(
    JsonWriter* w, const MicroRun& run,
    const std::vector<ScalingPoint>* scaling = nullptr,
    const RecoveryPoint* recovery = nullptr,
    const SpatialIndex<3>::ColumnMemory* memory = nullptr,
    const std::vector<AbResult>* ab = nullptr) {
  w->BeginObject();
  w->Key("index").String(run.name);
  w->Key("build_ms").Double(run.build_ms);
  w->Key("first_query_ms").Double(run.first_query_ms);
  w->Key("total_query_ms").Double(run.total_query_ms);
  w->Key("steady_tail_mean_ms").Double(run.steady_tail_mean_ms);
  w->Key("result_objects").Uint(run.result_objects);
  w->Key("cumulative_stats");
  WriteStats(w, run.cumulative);
  w->Key("per_type");
  WriteTypeBreakdown(w, run.per_type);
  w->Key("post_workload").BeginObject();
  w->Key("queries").Uint(run.post_workload.queries);
  w->Key("result_objects").Uint(run.post_workload.result_objects);
  w->Key("checksum").Uint(run.post_workload.checksum);
  w->EndObject();
  w->Key("convergence").BeginArray();
  for (const ConvergencePoint& p : run.convergence) {
    w->BeginObject();
    w->Key("query").Uint(static_cast<std::uint64_t>(p.query));
    w->Key("cumulative_ms").Double(p.cumulative_ms);
    w->Key("cumulative_cracks").Uint(p.cumulative_cracks);
    w->Key("cumulative_objects_moved").Uint(p.cumulative_objects_moved);
    w->EndObject();
  }
  w->EndArray();
  if (scaling != nullptr && !scaling->empty()) {
    const double base_qps = scaling->front().queries_per_s;
    w->Key("scaling").BeginArray();
    for (const ScalingPoint& p : *scaling) {
      w->BeginObject();
      w->Key("threads").Uint(static_cast<std::uint64_t>(p.threads));
      w->Key("rounds").Uint(static_cast<std::uint64_t>(p.rounds));
      w->Key("queries").Uint(p.queries);
      w->Key("wall_ms").Double(p.wall_ms);
      w->Key("queries_per_s").Double(p.queries_per_s);
      w->Key("speedup").Double(base_qps > 0 ? p.queries_per_s / base_qps : 0);
      w->EndObject();
    }
    w->EndArray();
  }
  if (recovery != nullptr) {
    w->Key("recovery").BeginObject();
    w->Key("ok").Bool(recovery->ok);
    w->Key("snapshot_bytes").Uint(recovery->snapshot_bytes);
    w->Key("save_ms").Double(recovery->save_ms);
    w->Key("recover_ms").Double(recovery->recover_ms);
    w->Key("replay_queries").Uint(recovery->replay_queries);
    w->Key("replay_cracks").Uint(recovery->replay_cracks);
    w->Key("checksum_match").Bool(recovery->checksum_match);
    w->EndObject();
  }
  if (memory != nullptr) {
    w->Key("memory").BeginObject();
    w->Key("resident_column_bytes").Uint(memory->resident_bytes);
    w->Key("raw_column_bytes").Uint(memory->raw_bytes);
    w->Key("packed_leaves").Uint(memory->packed_leaves);
    w->Key("packed_rows").Uint(memory->packed_rows);
    w->EndObject();
  }
  if (ab != nullptr && !ab->empty()) {
    w->Key("ab").BeginObject();
    for (const AbResult& r : *ab) {
      w->Key(r.name).BeginObject();
      w->Key("mode_a").String(r.mode_a);
      w->Key("mode_b").String(r.mode_b);
      w->Key("a_median_ms").Double(r.a_median_ms);
      w->Key("b_median_ms").Double(r.b_median_ms);
      w->Key("speedup").Double(r.speedup);
      w->Key("rounds").Uint(static_cast<std::uint64_t>(r.rounds));
      if (r.a_threads > 0) {
        w->Key("a_threads").Uint(static_cast<std::uint64_t>(r.a_threads));
        w->Key("b_threads").Uint(static_cast<std::uint64_t>(r.b_threads));
      }
      w->Key("checksum_match").Bool(r.checksum_match);
      w->Key("counters_match").Bool(r.counters_match);
      w->Key("content_match").Bool(r.content_match);
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndObject();
}

/// Runs the full microbench matrix and returns the BENCH_quasii.json report.
inline std::string RunMicrobench(const MicrobenchOptions& options) {
  std::vector<std::string> workloads = options.workloads;
  if (workloads.empty()) workloads = {"uniform", "clustered", "readwrite"};

  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("quasii-microbench-v9");
  w.Key("options").BeginObject();
  w.Key("min_exp").Int(options.min_exp);
  w.Key("max_exp").Int(options.max_exp);
  w.Key("queries").Int(options.queries);
  w.Key("seed").Uint(options.seed);
  w.Key("simd_tier").String(simd::TierName(simd::ActiveTier()));
  w.Key("packing_enabled").Bool(QuasiiIndex<3>::PackingEnabled());
  w.Key("exec_threads").Int(IntraQueryThreads());
  w.Key("grain").Uint(static_cast<std::uint64_t>(MorselGrain()));
  w.EndObject();

  w.Key("configs").BeginArray();
  for (const std::string& workload : workloads) {
    for (int e = options.min_exp; e <= options.max_exp; ++e) {
      BenchConfig config;
      config.dataset = "uniform";
      // The mixed, readwrite, and join workloads reuse the uniform
      // footprint generator; only the operations differ.
      const bool mixed = workload == "mixed";
      const bool readwrite = workload == "readwrite";
      const bool join = workload == "join";
      config.workload = mixed || readwrite || join ? "uniform" : workload;
      config.n = std::size_t{1} << e;
      config.queries = options.queries;
      // Paper selectivities: 0.1% for the uniform workload (§6.6), 10^-2 %
      // for the clustered default (§6.1).
      config.selectivity = config.workload == "clustered" ? 1e-4 : 1e-3;
      config.seed = options.seed;
      if (mixed) config.mix = DefaultMixedWorkloadMix();
      if (readwrite) config.mix = DefaultReadWriteMix();

      Dataset3 data;
      Box3 universe;
      std::vector<Box3> boxes;
      MakeBenchInputs(config, &data, &universe, &boxes);
      const std::vector<Op3> ops =
          join ? std::vector<Op3>{} : MakeBenchOps(config, boxes, data.size());

      w.BeginObject();
      w.Key("dataset").String(config.dataset);
      w.Key("workload").String(workload);
      w.Key("n").Uint(data.size());
      w.Key("queries").Uint(join ? static_cast<std::size_t>(kJoinRounds)
                                 : ops.size());
      w.Key("selectivity").Double(config.selectivity);
      w.Key("seed").Uint(config.seed);
      w.Key("mix");
      WriteMix(&w, config.mix);
      w.Key("results").BeginArray();
      auto roster = MakeMicrobenchRoster(data, universe);
      for (const auto& index : roster) {
        const MicroRun run =
            join ? RunJoinMicro(index.get()) : RunMicro(index.get(), ops);
        // The scaling curve and the snapshot→recover round trip both ride
        // on the uniform (read-only, pure-range) configs' QUASII result:
        // the workload has fully converged the index by now, so they
        // measure the shared-lock read path and the structure-restoring
        // recovery (which must replay with zero cracks).
        std::vector<ScalingPoint> scaling;
        RecoveryPoint recovery;
        bool have_recovery = false;
        SpatialIndex<3>::ColumnMemory memory;
        bool have_memory = false;
        std::vector<AbResult> ab;
        if (index->name() == "QUASII") {
          memory = index->column_memory();
          have_memory = memory.raw_bytes > 0;
        }
        if (workload == "uniform" && index->name() == "QUASII") {
          scaling = MeasureScaling(index.get(), ops);
          QuasiiIndex<3> fresh(data);
          const std::string snapshot_path =
              "quasii_microbench_" + std::to_string(getpid()) + "_" +
              std::to_string(e) + ".snapshot";
          recovery = MeasureRecovery(*index, &fresh, ops,
                                     run.post_workload.checksum,
                                     snapshot_path);
          have_recovery = true;
          // Interleaved A/B reruns of the (now converged) read stream:
          // scalar vs native SIMD tier over the raw columns, then raw vs
          // packed columns at the native tier. Results must be bit-identical
          // in every mode; only the pass time may differ.
          auto* q = dynamic_cast<QuasiiIndex<3>*>(index.get());
          const simd::Tier native = simd::ActiveTier();
          ab.push_back(MeasureAb(
              q, ops, run.post_workload.checksum, "simd", "scalar",
              [q] {
                simd::ForceTier(simd::Tier::kScalar);
                q->set_packed_scan_enabled(false);
              },
              simd::TierName(native),
              [q, native] {
                simd::ForceTier(native);
                q->set_packed_scan_enabled(false);
              }));
          ab.push_back(MeasureAb(
              q, ops, run.post_workload.checksum, "packed", "raw",
              [q] { q->set_packed_scan_enabled(false); },
              "packed", [q] { q->set_packed_scan_enabled(true); }));
          simd::ForceTier(native);
          q->set_packed_scan_enabled(true);
          // Third comparison, and the only one that re-cracks: cold-start
          // first-query cost at 1 vs 8 intra-query exec threads, over
          // fresh indexes each round. Parallel cracking must reproduce the
          // serial run bit-for-bit (results, counters, physical layout).
          ab.push_back(
              MeasureParallelAb(data, ops, run.post_workload.checksum));
        }
        WriteMicroRun(&w, run, scaling.empty() ? nullptr : &scaling,
                      have_recovery ? &recovery : nullptr,
                      have_memory ? &memory : nullptr,
                      ab.empty() ? nullptr : &ab);
      }
      w.EndArray();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace quasii::bench

#endif  // QUASII_BENCH_MICROBENCH_MICROBENCH_H_
