// Perf-trajectory microbenchmark: QUASII / SFCracker / Scan over the §6.1
// configurations at n = 2^min .. 2^max, emitting the BENCH_quasii.json
// report (first-query cost, per-query convergence curve, cumulative
// crack/move counters, total query time) that perf PRs diff against.
//
// Examples:
//   quasii_microbench                          # full run, BENCH_quasii.json
//   quasii_microbench --min-exp=13 --max-exp=14 --queries=200  # CI-sized run

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/cli.h"
#include "bench/microbench/microbench.h"

namespace {

using quasii::bench::MicrobenchOptions;
namespace cli = quasii::bench::cli;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: quasii_microbench [--min-exp=E] [--max-exp=E]\n"
               "                         [--queries=COUNT] [--seed=SEED]\n"
               "                         [--workloads=WORKLOAD,...]\n"
               "                         [--out=PATH]\n"
               "workloads: uniform, clustered, mixed, readwrite, join\n"
               "defaults: n = 2^17..2^20, 1000 operations, the uniform,\n"
               "          clustered, and readwrite workloads, report written\n"
               "          to BENCH_quasii.json. The mixed workload (70%%\n"
               "          range, 20%% point, 5%% count, 5%% kNN) probes\n"
               "          convergence under heterogeneous query types; the\n"
               "          readwrite workload (55/15/5/5 queries + 15%%\n"
               "          insert, 5%% erase) probes incremental maintenance\n"
               "          under a shifting population. Uniform-workload\n"
               "          QUASII results carry a scaling block: converged\n"
               "          read-only throughput at 1/2/4/8 pool threads.\n"
               "          The join workload runs repeated self-joins per\n"
               "          index (crack-driven join convergence); its Scan\n"
               "          baseline is quadratic, so pair it with small\n"
               "          exponents (the CI flags use 13..14).\n");
}

/// One strict-parse failure: diagnostic naming the flag, nonzero exit.
[[noreturn]] void Die(const std::string& flag, const char* why) {
  std::fprintf(stderr, "quasii_microbench: bad %s: %s\n", flag.c_str(), why);
  std::exit(2);
}

void ParseArgOrDie(const std::string& arg, MicrobenchOptions* options,
                   std::string* out_path) {
  const cli::FlagArg flag = cli::SplitFlag(arg);
  if (!flag.is_flag) {
    std::fprintf(stderr, "quasii_microbench: unrecognized argument: %s\n",
                 arg.c_str());
    std::exit(2);
  }
  if (!flag.has_value) {
    std::fprintf(stderr,
                 "quasii_microbench: missing value: %s (use --%s=VALUE)\n",
                 arg.c_str(), flag.key.c_str());
    std::exit(2);
  }
  const std::string& value = flag.value;
  if (flag.key == "min-exp") {
    std::int64_t e = 0;
    if (!cli::ParseI64(value, &e) || e < 1 || e > 30) {
      Die(arg, "expected an exponent in [1, 30]");
    }
    options->min_exp = static_cast<int>(e);
  } else if (flag.key == "max-exp") {
    std::int64_t e = 0;
    if (!cli::ParseI64(value, &e) || e < 1 || e > 30) {
      Die(arg, "expected an exponent in [1, 30]");
    }
    options->max_exp = static_cast<int>(e);
  } else if (flag.key == "queries") {
    std::int64_t q = 0;
    if (!cli::ParseI64(value, &q) || q <= 0 || q > 1'000'000'000) {
      Die(arg, "expected a positive integer");
    }
    options->queries = static_cast<int>(q);
  } else if (flag.key == "seed") {
    if (!cli::ParseU64(value, &options->seed)) {
      Die(arg, "expected a non-negative integer");
    }
  } else if (flag.key == "workloads") {
    options->workloads.clear();
    for (const std::string& w : cli::SplitCommas(value)) {
      if (w != "uniform" && w != "clustered" && w != "mixed" &&
          w != "readwrite" && w != "join") {
        Die(arg, "expected uniform, clustered, mixed, readwrite, or join");
      }
      options->workloads.push_back(w);
    }
    if (options->workloads.empty()) {
      Die(arg, "expected at least one workload");
    }
  } else if (flag.key == "out") {
    if (value.empty()) Die(arg, "expected a file path (or -)");
    *out_path = value;
  } else {
    std::fprintf(stderr, "quasii_microbench: unknown flag: --%s\n",
                 flag.key.c_str());
    PrintUsage();
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  MicrobenchOptions options;
  std::string out_path = "BENCH_quasii.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    ParseArgOrDie(arg, &options, &out_path);
  }
  if (options.max_exp < options.min_exp) {
    std::fprintf(stderr,
                 "--min-exp/--max-exp must satisfy 1 <= min <= max <= 30\n");
    return 2;
  }

  const std::string report = quasii::bench::RunMicrobench(options);
  if (out_path == "-") {
    std::cout << report << std::endl;
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << report << '\n';
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
