// Perf-trajectory microbenchmark: QUASII / SFCracker / Scan over the §6.1
// configurations at n = 2^min .. 2^max, emitting the BENCH_quasii.json
// report (first-query cost, per-query convergence curve, cumulative
// crack/move counters, total query time) that perf PRs diff against.
//
// Examples:
//   quasii_microbench                          # full run, BENCH_quasii.json
//   quasii_microbench --min-exp=13 --max-exp=14 --queries=200  # CI-sized run

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/microbench/microbench.h"

namespace {

using quasii::bench::MicrobenchOptions;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: quasii_microbench [--min-exp=E] [--max-exp=E]\n"
               "                         [--queries=COUNT] [--seed=SEED]\n"
               "                         [--workloads=WORKLOAD,...]\n"
               "                         [--out=PATH]\n"
               "workloads: uniform, clustered, mixed, readwrite, join\n"
               "defaults: n = 2^17..2^20, 1000 operations, the uniform,\n"
               "          clustered, and readwrite workloads, report written\n"
               "          to BENCH_quasii.json. The mixed workload (70%%\n"
               "          range, 20%% point, 5%% count, 5%% kNN) probes\n"
               "          convergence under heterogeneous query types; the\n"
               "          readwrite workload (55/15/5/5 queries + 15%%\n"
               "          insert, 5%% erase) probes incremental maintenance\n"
               "          under a shifting population. Uniform-workload\n"
               "          QUASII results carry a scaling block: converged\n"
               "          read-only throughput at 1/2/4/8 pool threads.\n"
               "          The join workload runs repeated self-joins per\n"
               "          index (crack-driven join convergence); its Scan\n"
               "          baseline is quadratic, so pair it with small\n"
               "          exponents (the CI flags use 13..14).\n");
}

bool ParseArg(const std::string& arg, MicrobenchOptions* options,
              std::string* out_path) {
  const std::size_t eq = arg.find('=');
  if (arg.rfind("--", 0) != 0 || eq == std::string::npos) return false;
  const std::string key = arg.substr(2, eq - 2);
  const std::string value = arg.substr(eq + 1);
  if (key == "min-exp") {
    options->min_exp = std::atoi(value.c_str());
  } else if (key == "max-exp") {
    options->max_exp = std::atoi(value.c_str());
  } else if (key == "queries") {
    options->queries = std::atoi(value.c_str());
  } else if (key == "seed") {
    options->seed = std::strtoull(value.c_str(), nullptr, 10);
  } else if (key == "workloads") {
    options->workloads.clear();
    std::size_t start = 0;
    while (start < value.size()) {
      const std::size_t comma = value.find(',', start);
      const std::size_t end = comma == std::string::npos ? value.size() : comma;
      if (end > start) {
        const std::string w = value.substr(start, end - start);
        if (w != "uniform" && w != "clustered" && w != "mixed" &&
            w != "readwrite" && w != "join") {
          return false;
        }
        options->workloads.push_back(w);
      }
      start = end + 1;
    }
  } else if (key == "out") {
    *out_path = value;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  MicrobenchOptions options;
  std::string out_path = "BENCH_quasii.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (!ParseArg(arg, &options, &out_path)) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (options.min_exp < 1 || options.max_exp < options.min_exp ||
      options.max_exp > 30) {
    std::fprintf(stderr,
                 "--min-exp/--max-exp must satisfy 1 <= min <= max <= 30\n");
    return 2;
  }
  if (options.queries <= 0) {
    std::fprintf(stderr, "--queries must be positive\n");
    return 2;
  }

  const std::string report = quasii::bench::RunMicrobench(options);
  if (out_path == "-") {
    std::cout << report << std::endl;
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << report << '\n';
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
