// Experiment driver: runs every index of the Section 6 evaluation over a
// generated dataset + query workload and prints a JSON report (per-query
// latencies, cumulative QueryStats, per-query-type breakdown per index) to
// stdout or --out.
//
// Examples:
//   quasii_bench --dataset=uniform --workload=uniform --n=1048576
//   quasii_bench --dataset=neuro --workload=clustered --queries=500
//       --indexes=QUASII,Scan --out=bench.json
//   quasii_bench --mix=range:0.7,point:0.2,count:0.05,knn:0.05 --knn-k=10
//   quasii_bench --indexes=QUASII --mix=range:0.8,insert:0.1,erase:0.1
//       --wal=/tmp/run.wal --snapshot-every=256 --fsync=every_n
//   quasii_bench --indexes=QUASII --wal=/tmp/run.wal --recover
//
// Argument parsing is strict: unknown flags, missing values, and malformed
// numbers are a one-line diagnostic and exit code 2 — never a silent
// default.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench.h"
#include "bench/cli.h"

namespace {

using quasii::bench::BenchConfig;
namespace cli = quasii::bench::cli;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: quasii_bench [--dataset=uniform|neuro]\n"
               "                    [--workload=uniform|clustered]\n"
               "                    [--n=COUNT] [--queries=COUNT]\n"
               "                    [--selectivity=FRACTION] [--seed=SEED]\n"
               "                    [--indexes=NAME,NAME,...] [--out=PATH]\n"
               "                    [--mix=range:W,point:W,count:W,knn:W,\n"
               "                           join:W,insert:W,erase:W]\n"
               "                    [--knn-k=K] [--threads=N]\n"
               "                    [--wal=PATH] [--snapshot=PATH]\n"
               "                    [--snapshot-every=N]\n"
               "                    [--fsync=every_op|every_n|none]\n"
               "                    [--fsync-n=N] [--recover]\n"
               "--mix types the workload (weights are ratios; default pure\n"
               "range); point/kNN queries probe the footprint box centres.\n"
               "join ops stream a window of a fixed 64-box right-hand set\n"
               "(seed+3) against the index, reporting canonical pair counts.\n"
               "insert/erase weights turn it into a read/write stream:\n"
               "inserts add fresh objects derived from the footprint boxes,\n"
               "erases remove uniform victims from the live id pool.\n"
               "--threads=N splits the workload into N deterministic\n"
               "per-thread op streams (disjoint id spaces) executed\n"
               "concurrently; the report gains wall_ms and per-thread\n"
               "sections.\n"
               "--wal=PATH logs every accepted mutation to an append-only\n"
               "WAL (requires exactly one --indexes entry and --threads=1);\n"
               "--snapshot-every=N also snapshots the index every N accepted\n"
               "mutations (default snapshot path: WAL path + .snapshot).\n"
               "--recover restores the index from the snapshot + WAL before\n"
               "running the workload.\n");
}

/// One strict-parse failure: diagnostic naming the flag, nonzero exit.
[[noreturn]] void Die(const std::string& flag, const char* why) {
  std::fprintf(stderr, "quasii_bench: bad %s: %s\n", flag.c_str(), why);
  std::exit(2);
}

void ParseArgOrDie(const std::string& arg, BenchConfig* config,
                   std::string* out_path) {
  const cli::FlagArg flag = cli::SplitFlag(arg);
  if (!flag.is_flag) {
    std::fprintf(stderr, "quasii_bench: unrecognized argument: %s\n",
                 arg.c_str());
    std::exit(2);
  }
  // --recover is the only value-less flag.
  if (flag.key == "recover") {
    if (flag.has_value) Die(arg, "--recover takes no value");
    config->durability.recover = true;
    return;
  }
  if (!flag.has_value) {
    std::fprintf(stderr, "quasii_bench: missing value: %s (use --%s=VALUE)\n",
                 arg.c_str(), flag.key.c_str());
    std::exit(2);
  }
  const std::string& value = flag.value;
  if (flag.key == "dataset") {
    if (value != "uniform" && value != "neuro") {
      Die(arg, "expected uniform or neuro");
    }
    config->dataset = value;
  } else if (flag.key == "workload") {
    if (value != "uniform" && value != "clustered") {
      Die(arg, "expected uniform or clustered");
    }
    config->workload = value;
  } else if (flag.key == "n") {
    std::uint64_t n = 0;
    if (!cli::ParseU64(value, &n) || n == 0) {
      Die(arg, "expected a positive integer");
    }
    config->n = static_cast<std::size_t>(n);
  } else if (flag.key == "queries") {
    std::int64_t q = 0;
    if (!cli::ParseI64(value, &q) || q <= 0 || q > 1'000'000'000) {
      Die(arg, "expected a positive integer");
    }
    config->queries = static_cast<int>(q);
  } else if (flag.key == "selectivity") {
    double s = 0;
    if (!cli::ParseDouble(value, &s) || !(s > 0.0) || s > 1.0) {
      Die(arg, "expected a fraction in (0, 1]");
    }
    config->selectivity = s;
  } else if (flag.key == "seed") {
    if (!cli::ParseU64(value, &config->seed)) {
      Die(arg, "expected a non-negative integer");
    }
  } else if (flag.key == "indexes") {
    config->indexes = cli::SplitCommas(value);
    if (config->indexes.empty()) Die(arg, "expected at least one index name");
  } else if (flag.key == "mix") {
    if (!quasii::bench::ParseWorkloadMix(value, &config->mix)) {
      Die(arg, "expected TYPE:WEIGHT pairs with a positive total");
    }
  } else if (flag.key == "knn-k") {
    std::uint64_t k = 0;
    if (!cli::ParseU64(value, &k) || k == 0) {
      Die(arg, "expected a positive integer");
    }
    config->knn_k = static_cast<std::size_t>(k);
  } else if (flag.key == "threads") {
    std::int64_t t = 0;
    if (!cli::ParseI64(value, &t) || t <= 0 || t >= quasii::kStatsSlots) {
      Die(arg, "expected a positive integer below the stats-slot limit");
    }
    config->threads = static_cast<int>(t);
  } else if (flag.key == "wal") {
    if (value.empty()) Die(arg, "expected a file path");
    config->durability.wal_path = value;
  } else if (flag.key == "snapshot") {
    if (value.empty()) Die(arg, "expected a file path");
    config->durability.snapshot_path = value;
  } else if (flag.key == "snapshot-every") {
    std::uint64_t every = 0;
    if (!cli::ParseU64(value, &every) || every == 0) {
      Die(arg, "expected a positive mutation count");
    }
    config->durability.snapshot_every = static_cast<std::size_t>(every);
  } else if (flag.key == "fsync") {
    if (value == "every_op") {
      config->durability.fsync = quasii::persist::FsyncPolicy::kEveryOp;
    } else if (value == "every_n") {
      config->durability.fsync = quasii::persist::FsyncPolicy::kEveryN;
    } else if (value == "none") {
      config->durability.fsync = quasii::persist::FsyncPolicy::kNone;
    } else {
      Die(arg, "expected every_op, every_n, or none");
    }
  } else if (flag.key == "fsync-n") {
    std::uint64_t every = 0;
    if (!cli::ParseU64(value, &every) || every == 0) {
      Die(arg, "expected a positive record count");
    }
    config->durability.fsync_every_n = static_cast<std::size_t>(every);
  } else if (flag.key == "out") {
    if (value.empty()) Die(arg, "expected a file path");
    *out_path = value;
  } else {
    std::fprintf(stderr, "quasii_bench: unknown flag: --%s\n",
                 flag.key.c_str());
    PrintUsage();
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  std::string out_path;
  bool saw_snapshot_control = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    ParseArgOrDie(arg, &config, &out_path);
    saw_snapshot_control =
        saw_snapshot_control || arg.rfind("--snapshot", 0) == 0 ||
        arg.rfind("--fsync", 0) == 0 || arg == "--recover";
  }
  if (!config.durability.enabled()) {
    if (saw_snapshot_control) {
      std::fprintf(stderr,
                   "quasii_bench: --snapshot*/--fsync*/--recover require "
                   "--wal=PATH\n");
      return 2;
    }
  } else {
    // Persistence is single-threaded by contract and one WAL describes one
    // index's mutation history — anything else would interleave streams.
    if (config.threads != 1) {
      std::fprintf(stderr, "quasii_bench: --wal requires --threads=1\n");
      return 2;
    }
    if (config.indexes.size() != 1) {
      std::fprintf(stderr,
                   "quasii_bench: --wal requires exactly one --indexes "
                   "entry\n");
      return 2;
    }
  }

  std::string error;
  const std::string report = quasii::bench::RunBenchmark(config, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "quasii_bench: %s\n", error.c_str());
    return 1;
  }
  if (out_path.empty()) {
    std::cout << report << std::endl;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << report << '\n';
  }
  return 0;
}
