// Experiment driver: runs every index of the Section 6 evaluation over a
// generated dataset + query workload and prints a JSON report (per-query
// latencies, cumulative QueryStats, per-query-type breakdown per index) to
// stdout or --out.
//
// Examples:
//   quasii_bench --dataset=uniform --workload=uniform --n=1048576
//   quasii_bench --dataset=neuro --workload=clustered --queries=500
//       --indexes=QUASII,Scan --out=bench.json
//   quasii_bench --mix=range:0.7,point:0.2,count:0.05,knn:0.05 --knn-k=10

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench.h"

namespace {

using quasii::bench::BenchConfig;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: quasii_bench [--dataset=uniform|neuro]\n"
               "                    [--workload=uniform|clustered]\n"
               "                    [--n=COUNT] [--queries=COUNT]\n"
               "                    [--selectivity=FRACTION] [--seed=SEED]\n"
               "                    [--indexes=NAME,NAME,...] [--out=PATH]\n"
               "                    [--mix=range:W,point:W,count:W,knn:W,\n"
               "                           join:W,insert:W,erase:W]\n"
               "                    [--knn-k=K] [--threads=N]\n"
               "--mix types the workload (weights are ratios; default pure\n"
               "range); point/kNN queries probe the footprint box centres.\n"
               "join ops stream a window of a fixed 64-box right-hand set\n"
               "(seed+3) against the index, reporting canonical pair counts.\n"
               "insert/erase weights turn it into a read/write stream:\n"
               "inserts add fresh objects derived from the footprint boxes,\n"
               "erases remove uniform victims from the live id pool.\n"
               "--threads=N splits the workload into N deterministic\n"
               "per-thread op streams (disjoint id spaces) executed\n"
               "concurrently; the report gains wall_ms and per-thread\n"
               "sections.\n");
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) parts.push_back(s.substr(start));
      break;
    }
    if (comma > start) parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

bool ParseArg(const std::string& arg, BenchConfig* config,
              std::string* out_path) {
  const std::size_t eq = arg.find('=');
  if (arg.rfind("--", 0) != 0 || eq == std::string::npos) return false;
  const std::string key = arg.substr(2, eq - 2);
  const std::string value = arg.substr(eq + 1);
  if (key == "dataset") {
    if (value != "uniform" && value != "neuro") return false;
    config->dataset = value;
  } else if (key == "workload") {
    if (value != "uniform" && value != "clustered") return false;
    config->workload = value;
  } else if (key == "n") {
    config->n =
        static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
  } else if (key == "queries") {
    config->queries = std::atoi(value.c_str());
  } else if (key == "selectivity") {
    config->selectivity = std::atof(value.c_str());
  } else if (key == "seed") {
    config->seed = std::strtoull(value.c_str(), nullptr, 10);
  } else if (key == "indexes") {
    config->indexes = SplitCommas(value);
  } else if (key == "mix") {
    if (!quasii::bench::ParseWorkloadMix(value, &config->mix)) return false;
  } else if (key == "knn-k") {
    const long long k = std::strtoll(value.c_str(), nullptr, 10);
    if (k <= 0) return false;
    config->knn_k = static_cast<std::size_t>(k);
  } else if (key == "threads") {
    const long long t = std::strtoll(value.c_str(), nullptr, 10);
    if (t <= 0 || t >= quasii::kStatsSlots) return false;
    config->threads = static_cast<int>(t);
  } else if (key == "out") {
    *out_path = value;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (!ParseArg(arg, &config, &out_path)) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (config.n == 0 || config.queries <= 0) {
    std::fprintf(stderr, "--n and --queries must be positive\n");
    return 2;
  }
  if (!(config.selectivity > 0.0) || config.selectivity > 1.0) {
    std::fprintf(stderr, "--selectivity must be in (0, 1]\n");
    return 2;
  }

  const std::string report = quasii::bench::RunBenchmark(config);
  if (out_path.empty()) {
    std::cout << report << std::endl;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << report << '\n';
  }
  return 0;
}
