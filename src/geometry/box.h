#ifndef QUASII_GEOMETRY_BOX_H_
#define QUASII_GEOMETRY_BOX_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "geometry/point.h"

namespace quasii {

/// An axis-aligned D-dimensional (minimum bounding) box, `[lo, hi]` in every
/// dimension. Intervals are closed: two boxes sharing only a face intersect,
/// matching the paper's definition `b ∩ q ≠ ∅`.
///
/// Degeneracy semantics (load-bearing for the query engine, do not change
/// casually):
///  - `lo[d] > hi[d]` in any dimension makes the box **empty**: it contains
///    no point, intersects nothing, and `IsEmpty()` is true. The roster-wide
///    inverted-query guards key off exactly this.
///  - `lo[d] == hi[d]` is a **valid zero-extent box** (a point, line, or
///    plane query), *not* an empty one: closed intervals mean `[p, p]`
///    contains `p`, so a point query is the zero-extent range `[p, p]` and
///    must never be swallowed by an `IsEmpty()` guard.
///
/// A default-constructed box is *empty* (`lo = +inf`, `hi = -inf`), the
/// identity for `ExpandToInclude`.
template <int D>
struct Box {
  Point<D> lo;
  Point<D> hi;

  constexpr Box() {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::numeric_limits<Scalar>::infinity();
      hi[d] = -std::numeric_limits<Scalar>::infinity();
    }
  }
  constexpr Box(const Point<D>& lower, const Point<D>& upper)
      : lo(lower), hi(upper) {}

  /// The empty box: identity element for `ExpandToInclude`.
  static constexpr Box Empty() { return Box(); }

  /// The box covering all of space (`-inf, +inf` in every dimension). Used
  /// for "open-ended" bounds of not-yet-refined QUASII slices.
  static constexpr Box Infinite() {
    Box b;
    for (int d = 0; d < D; ++d) {
      b.lo[d] = -std::numeric_limits<Scalar>::infinity();
      b.hi[d] = std::numeric_limits<Scalar>::infinity();
    }
    return b;
  }

  /// A cube with the given corner and side length.
  static constexpr Box Cube(const Point<D>& lower, Scalar side) {
    Box b;
    b.lo = lower;
    for (int d = 0; d < D; ++d) b.hi[d] = lower[d] + side;
    return b;
  }

  /// True when the box contains no point (some `lo[d] > hi[d]`). A
  /// zero-extent box (`lo[d] == hi[d]`) is NOT empty — see the class
  /// comment; point queries rely on it.
  constexpr bool IsEmpty() const {
    for (int d = 0; d < D; ++d) {
      if (lo[d] > hi[d]) return true;
    }
    return false;
  }

  /// Closed-interval intersection test.
  constexpr bool Intersects(const Box& o) const {
    for (int d = 0; d < D; ++d) {
      if (lo[d] > o.hi[d] || hi[d] < o.lo[d]) return false;
    }
    return true;
  }

  /// Intersection test restricted to one dimension.
  constexpr bool IntersectsInDim(const Box& o, int d) const {
    return lo[d] <= o.hi[d] && hi[d] >= o.lo[d];
  }

  /// True when `p` lies inside the box (boundaries included).
  constexpr bool Contains(const Point<D>& p) const {
    for (int d = 0; d < D; ++d) {
      if (p[d] < lo[d] || p[d] > hi[d]) return false;
    }
    return true;
  }

  /// True when `o` lies entirely inside this box.
  constexpr bool ContainsBox(const Box& o) const {
    for (int d = 0; d < D; ++d) {
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    }
    return true;
  }

  /// Grows the box to cover `o` as well.
  constexpr void ExpandToInclude(const Box& o) {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::min(lo[d], o.lo[d]);
      hi[d] = std::max(hi[d], o.hi[d]);
    }
  }

  /// Grows the box to cover point `p`.
  constexpr void ExpandToInclude(const Point<D>& p) {
    for (int d = 0; d < D; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  /// Extends every dimension by `amount` on both sides.
  constexpr Box Inflated(Scalar amount) const {
    Box b = *this;
    for (int d = 0; d < D; ++d) {
      b.lo[d] -= amount;
      b.hi[d] += amount;
    }
    return b;
  }

  /// Side length in dimension `d` (0 for empty boxes).
  constexpr Scalar Extent(int d) const {
    return hi[d] >= lo[d] ? hi[d] - lo[d] : Scalar{0};
  }

  /// Product of all extents; 0 for empty or degenerate boxes.
  constexpr double Volume() const {
    double v = 1.0;
    for (int d = 0; d < D; ++d) {
      if (hi[d] < lo[d]) return 0.0;
      v *= static_cast<double>(hi[d]) - static_cast<double>(lo[d]);
    }
    return v;
  }

  /// Geometric centre. Only meaningful for non-empty boxes.
  constexpr Point<D> Center() const {
    Point<D> c;
    for (int d = 0; d < D; ++d) c[d] = (lo[d] + hi[d]) / Scalar{2};
    return c;
  }

  /// Squared Euclidean distance from `p` to the nearest point of the box
  /// (0 when `p` lies inside). The MINDIST of R-Tree nearest-neighbor
  /// search, accumulated in double so large coordinates don't lose the
  /// per-dimension differences.
  constexpr double MinDistSquaredTo(const Point<D>& p) const {
    double sum = 0.0;
    for (int d = 0; d < D; ++d) {
      double diff = 0.0;
      if (p[d] < lo[d]) {
        diff = static_cast<double>(lo[d]) - static_cast<double>(p[d]);
      } else if (p[d] > hi[d]) {
        diff = static_cast<double>(p[d]) - static_cast<double>(hi[d]);
      }
      sum += diff * diff;
    }
    return sum;
  }

  /// The largest intersection of this box with `o` (empty if disjoint).
  constexpr Box IntersectionWith(const Box& o) const {
    Box b;
    for (int d = 0; d < D; ++d) {
      b.lo[d] = std::max(lo[d], o.lo[d]);
      b.hi[d] = std::min(hi[d], o.hi[d]);
    }
    return b;
  }

  friend constexpr bool operator==(const Box& a, const Box& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend constexpr bool operator!=(const Box& a, const Box& b) {
    return !(a == b);
  }
};

template <int D>
std::ostream& operator<<(std::ostream& os, const Box<D>& b) {
  return os << '[' << b.lo << " .. " << b.hi << ']';
}

using Box2 = Box<2>;
using Box3 = Box<3>;
using Point2 = Point<2>;
using Point3 = Point<3>;

}  // namespace quasii

#endif  // QUASII_GEOMETRY_BOX_H_
