#ifndef QUASII_GEOMETRY_POINT_H_
#define QUASII_GEOMETRY_POINT_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace quasii {

/// Coordinate type used across the library.
///
/// The paper's universes are integer-scaled (10 000 units per dimension, or
/// micrometre-scale brain volumes); single precision holds them exactly
/// enough and halves the memory footprint of every index.
using Scalar = float;

/// Identifier of a spatial object: its position in the original dataset
/// vector. 32 bits cover the paper's largest dataset (1B objects would need
/// an extended type; laptop-scale reproductions do not).
using ObjectId = std::uint32_t;

/// A point in D-dimensional space.
template <int D>
struct Point {
  static_assert(D >= 1, "dimensionality must be positive");

  std::array<Scalar, D> coords{};

  constexpr Scalar& operator[](int d) { return coords[static_cast<size_t>(d)]; }
  constexpr Scalar operator[](int d) const {
    return coords[static_cast<size_t>(d)];
  }

  friend constexpr bool operator==(const Point& a, const Point& b) {
    return a.coords == b.coords;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) {
    return !(a == b);
  }

  /// Euclidean distance to another point.
  Scalar DistanceTo(const Point& other) const {
    double sum = 0.0;
    for (int d = 0; d < D; ++d) {
      const double diff = static_cast<double>(coords[static_cast<size_t>(d)]) -
                          static_cast<double>(other[d]);
      sum += diff * diff;
    }
    return static_cast<Scalar>(std::sqrt(sum));
  }
};

template <int D>
std::ostream& operator<<(std::ostream& os, const Point<D>& p) {
  os << '(';
  for (int d = 0; d < D; ++d) {
    if (d > 0) os << ", ";
    os << p[d];
  }
  return os << ')';
}

}  // namespace quasii

#endif  // QUASII_GEOMETRY_POINT_H_
