#ifndef QUASII_GRID_GRID_INDEX_H_
#define QUASII_GRID_GRID_INDEX_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/mutation_overflow.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// How objects are assigned to cells of a space-oriented index (Section 3.2):
/// `kReplication` stores an object in every cell it overlaps (needs
/// de-duplication at query time); `kQueryExtension` stores it only in the
/// cell of its centre and compensates by extending queries with half the
/// maximum object extent [Stefanakis et al., 40].
enum class GridAssignment { kQueryExtension, kReplication };

/// The static uniform grid — the space-oriented counterpart of Mosaic in the
/// paper's evaluation (Section 6.1) and the cheapest-to-build static index.
/// Cells are stored CSR-style: one flat id array plus per-cell offsets.
///
/// Mutations use the overflow pattern shared by the static roster indexes:
/// inserts join a pending list every query scans exhaustively, erases of
/// built objects flip a per-id dead bit the cell scans skip, and once either
/// side outgrows its threshold the CSR directory is rebuilt from the live
/// set.
template <int D>
class GridIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Cells per dimension. The paper sweeps this (100 best for Uniform,
    /// 220 best for Neuro — Fig. 6b shows how data-dependent it is).
    int partitions_per_dim = 100;
    GridAssignment assignment = GridAssignment::kQueryExtension;
  };

  /// Keeps a reference to `data`. `universe` is the box the grid tiles;
  /// objects outside it are clamped into the boundary cells.
  GridIndex(const Dataset<D>& data, const Box<D>& universe,
            const Params& params)
      : SpatialIndex<D>(data), universe_(universe), params_(params) {
    name_ = params.assignment == GridAssignment::kQueryExtension
                ? "GridQueryExt"
                : "GridReplication";
  }

  std::string_view name() const override { return name_; }

  int partitions_per_dim() const { return params_.partitions_per_dim; }

  /// Query-extension cells are read-only at query time, so any query is
  /// concurrent-safe once the directory is built. Replication mode
  /// serializes: its per-query de-duplication stamps (`last_seen_`/`epoch_`)
  /// are shared mutable state.
  bool ConvergedFor(const Query<D>&) const override {
    return built_ && params_.assignment == GridAssignment::kQueryExtension;
  }

  /// Builds the CSR cell directory from the live object set (the grid's
  /// whole pre-processing cost; also the mutation-overflow rebuild).
  void Build() override {
    const ObjectStore<D>& store = this->store_;
    const int p = params_.partitions_per_dim;
    std::size_t num_cells = 1;
    for (int d = 0; d < D; ++d) {
      inv_cell_width_[d] =
          universe_.Extent(d) > 0
              ? static_cast<double>(p) /
                    static_cast<double>(universe_.Extent(d))
              : 0.0;
      num_cells *= static_cast<std::size_t>(p);
    }
    strides_[0] = 1;
    for (int d = 1; d < D; ++d) {
      strides_[d] = strides_[d - 1] * static_cast<std::size_t>(p);
    }
    half_extent_ = Point<D>{};
    store.ForEachLive([this](ObjectId, const Box<D>& b) {
      for (int d = 0; d < D; ++d) {
        half_extent_[d] = std::max(half_extent_[d], b.Extent(d) / 2);
      }
    });

    // Counting pass, prefix sum, placement pass.
    cell_start_.assign(num_cells + 1, 0);
    if (params_.assignment == GridAssignment::kQueryExtension) {
      store.ForEachLive([this](ObjectId, const Box<D>& b) {
        ++cell_start_[CellIndexOf(b.Center()) + 1];
      });
    } else {
      store.ForEachLive([this](ObjectId, const Box<D>& b) {
        ForEachCell(CellRectOf(b), [this](std::size_t cell) {
          ++cell_start_[cell + 1];
        });
      });
    }
    std::partial_sum(cell_start_.begin(), cell_start_.end(),
                     cell_start_.begin());
    entries_.resize(cell_start_.back());
    std::vector<std::size_t> fill(cell_start_.begin(),
                                  cell_start_.end() - 1);
    store.ForEachLive([&](ObjectId id, const Box<D>& b) {
      if (params_.assignment == GridAssignment::kQueryExtension) {
        entries_[fill[CellIndexOf(b.Center())]++] = id;
      } else {
        ForEachCell(CellRectOf(b),
                    [&](std::size_t cell) { entries_[fill[cell]++] = id; });
      }
    });
    if (params_.assignment == GridAssignment::kReplication) {
      last_seen_.assign(store.slots(), 0);
      epoch_ = 0;
    }
    overflow_.Reset(store.slots());
    built_ = true;
  }

 protected:
  /// Inserts overflow into the pending list (scanned exhaustively by every
  /// query, so no grid geometry is consulted for them) until a rebuild
  /// folds them into cells.
  void OnInsert(ObjectId id, const Box<D>&) override {
    if (!built_) return;  // Build() reads the store wholesale
    overflow_.AddPending(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Build();
  }

  void OnErase(ObjectId id) override {
    if (!built_) return;
    overflow_.Erase(id);
    if (overflow_.NeedsRebuild(this->store_.live_count())) Build();
  }

  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    if (!built_) Build();
    const ObjectStore<D>& store = this->store_;
    MatchEmitter emit(count_only, &sink);
    if (params_.assignment == GridAssignment::kQueryExtension) {
      // The query is extended by half the max object extent so that every
      // intersecting object's *centre* cell is covered (both containment
      // predicates imply intersection, so the candidate set stays valid).
      Box<D> extended = q;
      for (int d = 0; d < D; ++d) {
        extended.lo[d] -= half_extent_[d];
        extended.hi[d] += half_extent_[d];
      }
      ForEachCell(CellRectOf(extended), [&](std::size_t cell) {
        ++this->Stats().partitions_visited;
        for (std::size_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          const ObjectId id = entries_[k];
          if (overflow_.dead(id)) continue;
          ++this->Stats().objects_tested;
          if (MatchesPredicate(store.box(id), q, predicate)) emit.Add(id);
        }
      });
    } else {
      // Replication stores an object in every overlapped cell, so the epoch
      // stamps must de-duplicate for counting as well — a candidate seen
      // twice would otherwise be counted twice.
      ++epoch_;
      if (epoch_ == 0) {  // counter wrapped: restart stamps
        std::fill(last_seen_.begin(), last_seen_.end(), 0);
        epoch_ = 1;
      }
      ForEachCell(CellRectOf(q), [&](std::size_t cell) {
        ++this->Stats().partitions_visited;
        for (std::size_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          const ObjectId id = entries_[k];
          if (overflow_.dead(id)) continue;
          if (last_seen_[id] == epoch_) {
            ++this->Stats().duplicates_removed;
            continue;
          }
          last_seen_[id] = epoch_;
          ++this->Stats().objects_tested;
          if (MatchesPredicate(store.box(id), q, predicate)) emit.Add(id);
        }
      });
    }
    // Pending objects are not in any cell yet.
    overflow_.ScanPending(store, q, predicate, &emit, &this->Stats());
    emit.Flush();
  }

  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!built_) Build();
    this->RingKNearest(pt, k, sink);
  }

 private:
  using CellCoords = std::array<int, D>;
  struct CellRect {
    CellCoords lo;
    CellCoords hi;
  };

  int CellCoordOf(Scalar v, int d) const {
    const double c = (static_cast<double>(v) -
                      static_cast<double>(universe_.lo[d])) *
                     inv_cell_width_[d];
    const int p = params_.partitions_per_dim;
    if (c <= 0.0) return 0;
    if (c >= static_cast<double>(p - 1)) return p - 1;
    return static_cast<int>(c);
  }

  std::size_t CellIndexOf(const Point<D>& pt) const {
    std::size_t idx = 0;
    for (int d = 0; d < D; ++d) {
      idx += static_cast<std::size_t>(CellCoordOf(pt[d], d)) * strides_[d];
    }
    return idx;
  }

  CellRect CellRectOf(const Box<D>& b) const {
    CellRect r;
    for (int d = 0; d < D; ++d) {
      r.lo[d] = CellCoordOf(b.lo[d], d);
      r.hi[d] = CellCoordOf(b.hi[d], d);
    }
    return r;
  }

  /// Invokes `fn(linear_cell_index)` for every cell in the rectangle.
  template <typename Fn>
  void ForEachCell(const CellRect& r, Fn&& fn) const {
    CellCoords c = r.lo;
    while (true) {
      std::size_t idx = 0;
      for (int d = 0; d < D; ++d) {
        idx += static_cast<std::size_t>(c[d]) * strides_[d];
      }
      fn(idx);
      int d = 0;
      for (; d < D; ++d) {
        if (++c[d] <= r.hi[d]) break;
        c[d] = r.lo[d];
      }
      if (d == D) return;
    }
  }

  Box<D> universe_;
  Params params_;
  std::string_view name_;
  bool built_ = false;

  std::array<double, D> inv_cell_width_{};
  std::array<std::size_t, D> strides_{};
  Point<D> half_extent_{};
  std::vector<std::size_t> cell_start_;
  std::vector<ObjectId> entries_;
  /// Shared mutation-overflow state (pending inserts + built-id
  /// tombstones).
  MutationOverflow<D> overflow_;

  // Replication de-duplication stamps (one epoch per query).
  std::vector<std::uint32_t> last_seen_;
  std::uint32_t epoch_ = 0;
};

}  // namespace quasii

#endif  // QUASII_GRID_GRID_INDEX_H_
