#ifndef QUASII_GRID_GRID_INDEX_H_
#define QUASII_GRID_GRID_INDEX_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <numeric>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// How objects are assigned to cells of a space-oriented index (Section 3.2):
/// `kReplication` stores an object in every cell it overlaps (needs
/// de-duplication at query time); `kQueryExtension` stores it only in the
/// cell of its centre and compensates by extending queries with half the
/// maximum object extent [Stefanakis et al., 40].
enum class GridAssignment { kQueryExtension, kReplication };

/// The static uniform grid — the space-oriented counterpart of Mosaic in the
/// paper's evaluation (Section 6.1) and the cheapest-to-build static index.
/// Cells are stored CSR-style: one flat id array plus per-cell offsets.
template <int D>
class GridIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// Cells per dimension. The paper sweeps this (100 best for Uniform,
    /// 220 best for Neuro — Fig. 6b shows how data-dependent it is).
    int partitions_per_dim = 100;
    GridAssignment assignment = GridAssignment::kQueryExtension;
  };

  /// Keeps a reference to `data`. `universe` is the box the grid tiles;
  /// objects outside it are clamped into the boundary cells.
  GridIndex(const Dataset<D>& data, const Box<D>& universe,
            const Params& params)
      : data_(&data), universe_(universe), params_(params) {
    name_ = params.assignment == GridAssignment::kQueryExtension
                ? "GridQueryExt"
                : "GridReplication";
  }

  std::string_view name() const override { return name_; }

  int partitions_per_dim() const { return params_.partitions_per_dim; }

  /// Builds the CSR cell directory (the grid's whole pre-processing cost).
  void Build() override {
    const Dataset<D>& data = *data_;
    const int p = params_.partitions_per_dim;
    std::size_t num_cells = 1;
    for (int d = 0; d < D; ++d) {
      inv_cell_width_[d] =
          universe_.Extent(d) > 0
              ? static_cast<double>(p) /
                    static_cast<double>(universe_.Extent(d))
              : 0.0;
      num_cells *= static_cast<std::size_t>(p);
    }
    strides_[0] = 1;
    for (int d = 1; d < D; ++d) {
      strides_[d] = strides_[d - 1] * static_cast<std::size_t>(p);
    }
    half_extent_ = Point<D>{};
    data_bounds_ = Box<D>::Empty();
    for (const Box<D>& b : data) {
      data_bounds_.ExpandToInclude(b);
      for (int d = 0; d < D; ++d) {
        half_extent_[d] = std::max(half_extent_[d], b.Extent(d) / 2);
      }
    }

    // Counting pass, prefix sum, placement pass.
    cell_start_.assign(num_cells + 1, 0);
    if (params_.assignment == GridAssignment::kQueryExtension) {
      for (const Box<D>& b : data) {
        ++cell_start_[CellIndexOf(b.Center()) + 1];
      }
    } else {
      for (const Box<D>& b : data) {
        ForEachCell(CellRectOf(b), [&](std::size_t cell) {
          ++cell_start_[cell + 1];
        });
      }
    }
    std::partial_sum(cell_start_.begin(), cell_start_.end(),
                     cell_start_.begin());
    entries_.resize(cell_start_.back());
    std::vector<std::size_t> fill(cell_start_.begin(),
                                  cell_start_.end() - 1);
    for (ObjectId i = 0; i < data.size(); ++i) {
      if (params_.assignment == GridAssignment::kQueryExtension) {
        entries_[fill[CellIndexOf(data[i].Center())]++] = i;
      } else {
        ForEachCell(CellRectOf(data[i]),
                    [&](std::size_t cell) { entries_[fill[cell]++] = i; });
      }
    }
    if (params_.assignment == GridAssignment::kReplication) {
      last_seen_.assign(data.size(), 0);
    }
    built_ = true;
  }

 protected:
  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    if (!built_) Build();
    const Dataset<D>& data = *data_;
    MatchEmitter emit(count_only, &sink);
    if (params_.assignment == GridAssignment::kQueryExtension) {
      // The query is extended by half the max object extent so that every
      // intersecting object's *centre* cell is covered (both containment
      // predicates imply intersection, so the candidate set stays valid).
      Box<D> extended = q;
      for (int d = 0; d < D; ++d) {
        extended.lo[d] -= half_extent_[d];
        extended.hi[d] += half_extent_[d];
      }
      ForEachCell(CellRectOf(extended), [&](std::size_t cell) {
        ++this->stats_.partitions_visited;
        for (std::size_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          ++this->stats_.objects_tested;
          const ObjectId id = entries_[k];
          if (MatchesPredicate(data[id], q, predicate)) emit.Add(id);
        }
      });
    } else {
      // Replication stores an object in every overlapped cell, so the epoch
      // stamps must de-duplicate for counting as well — a candidate seen
      // twice would otherwise be counted twice.
      ++epoch_;
      if (epoch_ == 0) {  // counter wrapped: restart stamps
        std::fill(last_seen_.begin(), last_seen_.end(), 0);
        epoch_ = 1;
      }
      ForEachCell(CellRectOf(q), [&](std::size_t cell) {
        ++this->stats_.partitions_visited;
        for (std::size_t k = cell_start_[cell]; k < cell_start_[cell + 1];
             ++k) {
          const ObjectId id = entries_[k];
          if (last_seen_[id] == epoch_) {
            ++this->stats_.duplicates_removed;
            continue;
          }
          last_seen_[id] = epoch_;
          ++this->stats_.objects_tested;
          if (MatchesPredicate(data[id], q, predicate)) emit.Add(id);
        }
      });
    }
    emit.Flush();
  }

  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!built_) Build();
    this->RingKNearest(*data_, data_bounds_, pt, k, sink);
  }

 private:
  using CellCoords = std::array<int, D>;
  struct CellRect {
    CellCoords lo;
    CellCoords hi;
  };

  int CellCoordOf(Scalar v, int d) const {
    const double c = (static_cast<double>(v) -
                      static_cast<double>(universe_.lo[d])) *
                     inv_cell_width_[d];
    const int p = params_.partitions_per_dim;
    if (c <= 0.0) return 0;
    if (c >= static_cast<double>(p - 1)) return p - 1;
    return static_cast<int>(c);
  }

  std::size_t CellIndexOf(const Point<D>& pt) const {
    std::size_t idx = 0;
    for (int d = 0; d < D; ++d) {
      idx += static_cast<std::size_t>(CellCoordOf(pt[d], d)) * strides_[d];
    }
    return idx;
  }

  CellRect CellRectOf(const Box<D>& b) const {
    CellRect r;
    for (int d = 0; d < D; ++d) {
      r.lo[d] = CellCoordOf(b.lo[d], d);
      r.hi[d] = CellCoordOf(b.hi[d], d);
    }
    return r;
  }

  /// Invokes `fn(linear_cell_index)` for every cell in the rectangle.
  template <typename Fn>
  void ForEachCell(const CellRect& r, Fn&& fn) const {
    CellCoords c = r.lo;
    while (true) {
      std::size_t idx = 0;
      for (int d = 0; d < D; ++d) {
        idx += static_cast<std::size_t>(c[d]) * strides_[d];
      }
      fn(idx);
      int d = 0;
      for (; d < D; ++d) {
        if (++c[d] <= r.hi[d]) break;
        c[d] = r.lo[d];
      }
      if (d == D) return;
    }
  }

  const Dataset<D>* data_;
  Box<D> universe_;
  Params params_;
  std::string_view name_;
  bool built_ = false;

  std::array<double, D> inv_cell_width_{};
  std::array<std::size_t, D> strides_{};
  Point<D> half_extent_{};
  /// MBB of the dataset — the expanding-ring kNN termination bound.
  Box<D> data_bounds_;
  std::vector<std::size_t> cell_start_;
  std::vector<ObjectId> entries_;

  // Replication de-duplication stamps (one epoch per query).
  std::vector<std::uint32_t> last_seen_;
  std::uint32_t epoch_ = 0;
};

}  // namespace quasii

#endif  // QUASII_GRID_GRID_INDEX_H_
