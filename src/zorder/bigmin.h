#ifndef QUASII_ZORDER_BIGMIN_H_
#define QUASII_ZORDER_BIGMIN_H_

#include <array>
#include <optional>

#include "zorder/zorder.h"

namespace quasii::zorder {

/// Bit masks supporting the Tropf–Herzog BIGMIN/LITMAX computation [43].
template <int D>
struct ZMasks {
  static constexpr int kTotalBits = D * ZTraits<D>::kBitsPerDim;

  /// `lower_same_dim[p]`: all code positions below `p` that belong to the
  /// same dimension as `p` (positions p-D, p-2D, ...).
  static constexpr std::array<ZCode, 32> MakeLowerSameDim() {
    std::array<ZCode, 32> m{};
    for (int p = 0; p < kTotalBits; ++p) {
      ZCode mask = 0;
      for (int q = p - D; q >= 0; q -= D) mask |= (ZCode{1} << q);
      m[static_cast<size_t>(p)] = mask;
    }
    return m;
  }
  static constexpr std::array<ZCode, 32> kLowerSameDim = MakeLowerSameDim();

  /// Sets bit `p` to 1 and zeroes all lower bits of the same dimension
  /// (the "10000..." LOAD of Tropf–Herzog).
  static constexpr ZCode Load10(ZCode v, int p) {
    return (v & ~kLowerSameDim[static_cast<size_t>(p)]) | (ZCode{1} << p);
  }

  /// Sets bit `p` to 0 and all lower bits of the same dimension to 1
  /// (the "01111..." LOAD).
  static constexpr ZCode Load01(ZCode v, int p) {
    return (v & ~(ZCode{1} << p)) | kLowerSameDim[static_cast<size_t>(p)];
  }
};

/// BIGMIN (Tropf–Herzog): the smallest Z-code inside the query rectangle
/// spanned by `zmin`/`zmax` (codes of the rectangle's lower/upper corner)
/// that is strictly greater than `z`. `std::nullopt` when no such code
/// exists. `z` is expected to lie outside the rectangle (the classic use:
/// jump over a non-qualifying gap while scanning a Z-sorted array).
template <int D>
std::optional<ZCode> BigMin(ZCode z, ZCode zmin, ZCode zmax) {
  using M = ZMasks<D>;
  std::optional<ZCode> bigmin;
  for (int p = M::kTotalBits - 1; p >= 0; --p) {
    const unsigned zb = (z >> p) & 1u;
    const unsigned minb = (zmin >> p) & 1u;
    const unsigned maxb = (zmax >> p) & 1u;
    if (zb == 0 && minb == 0 && maxb == 1) {
      bigmin = M::Load10(zmin, p);
      zmax = M::Load01(zmax, p);
    } else if (zb == 0 && minb == 1) {  // maxb must be 1 too
      return zmin;
    } else if (zb == 1 && maxb == 0) {  // minb must be 0
      return bigmin;
    } else if (zb == 1 && minb == 0 && maxb == 1) {
      zmin = M::Load10(zmin, p);
    }
    // (0,0,0) and (1,1,1): restriction unchanged, continue.
  }
  return bigmin;
}

/// LITMAX (Tropf–Herzog): the largest Z-code inside the rectangle that is
/// strictly smaller than `z`, or `std::nullopt`.
template <int D>
std::optional<ZCode> LitMax(ZCode z, ZCode zmin, ZCode zmax) {
  using M = ZMasks<D>;
  std::optional<ZCode> litmax;
  for (int p = M::kTotalBits - 1; p >= 0; --p) {
    const unsigned zb = (z >> p) & 1u;
    const unsigned minb = (zmin >> p) & 1u;
    const unsigned maxb = (zmax >> p) & 1u;
    if (zb == 1 && minb == 0 && maxb == 1) {
      litmax = M::Load01(zmax, p);
      zmin = M::Load10(zmin, p);
    } else if (zb == 1 && maxb == 0) {  // whole rect below z
      return zmax;
    } else if (zb == 0 && minb == 1) {  // whole rect above z
      return litmax;
    } else if (zb == 0 && minb == 0 && maxb == 1) {
      zmax = M::Load01(zmax, p);
    }
  }
  return litmax;
}

}  // namespace quasii::zorder

#endif  // QUASII_ZORDER_BIGMIN_H_
