#ifndef QUASII_ZORDER_DECOMPOSE_H_
#define QUASII_ZORDER_DECOMPOSE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "zorder/zorder.h"

namespace quasii::zorder {

/// An inclusive range `[lo, hi]` of Z-codes.
struct ZInterval {
  ZCode lo = 0;
  ZCode hi = 0;

  friend constexpr bool operator==(const ZInterval& a, const ZInterval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Decomposes a cell-aligned query rectangle into sorted, disjoint Z-code
/// intervals — the technique the paper adopts from Tropf & Herzog [43] to
/// avoid the false-positive blow-up of naive 1d query transformation
/// (Section 3.1, Figure 1).
///
/// The recursion walks the implicit quad/octree of Z-code prefixes: a node
/// entirely inside the rectangle contributes one maximal interval, a node
/// entirely outside contributes nothing, and partial overlap recurses into
/// the node's 2^D children in Z order, so emitted intervals arrive already
/// sorted; adjacent intervals are merged on the fly.
///
/// `max_intervals > 0` bounds the output size: once the budget is reached,
/// partially-overlapping nodes emit their full (superset) range instead of
/// recursing. Every user filters candidates against the real query box, so
/// supersets only cost false positives, never correctness.
template <int D>
class ZRangeDecomposer {
 public:
  using Cells = std::array<std::uint32_t, D>;

  static void Decompose(const Cells& rect_lo, const Cells& rect_hi,
                        int max_intervals, std::vector<ZInterval>* out) {
    Context ctx{rect_lo, rect_hi, max_intervals, out};
    Recurse(ctx, Cells{}, 0);
  }

 private:
  static constexpr int kBits = ZTraits<D>::kBitsPerDim;

  struct Context {
    const Cells& rect_lo;
    const Cells& rect_hi;
    int max_intervals;
    std::vector<ZInterval>* out;
  };

  static void Emit(const Context& ctx, ZCode lo, ZCode hi) {
    std::vector<ZInterval>& v = *ctx.out;
    if (!v.empty() && v.back().hi + 1 == lo) {
      v.back().hi = hi;  // merge adjacent ranges
    } else {
      v.push_back(ZInterval{lo, hi});
    }
  }

  // `c` holds the node's cell coordinates in units of the node's side
  // (2^(kBits-level) base cells); `level` counts refined bits per dim.
  static void Recurse(const Context& ctx, const Cells& c, int level) {
    const int shift = kBits - level;
    bool contained = true;
    Cells full_lo;  // node bounds in base-cell units
    for (int d = 0; d < D; ++d) {
      const std::uint32_t lo = c[static_cast<size_t>(d)] << shift;
      const std::uint32_t hi = lo + ((std::uint32_t{1} << shift) - 1);
      if (lo > ctx.rect_hi[static_cast<size_t>(d)] ||
          hi < ctx.rect_lo[static_cast<size_t>(d)]) {
        return;  // disjoint
      }
      if (lo < ctx.rect_lo[static_cast<size_t>(d)] ||
          hi > ctx.rect_hi[static_cast<size_t>(d)]) {
        contained = false;
      }
      full_lo[static_cast<size_t>(d)] = lo;
    }
    const bool budget_exhausted =
        ctx.max_intervals > 0 &&
        static_cast<int>(ctx.out->size()) >= ctx.max_intervals;
    if (contained || level == kBits || budget_exhausted) {
      const ZCode base = ZTraits<D>::Encode(full_lo);
      const ZCode span =
          shift == 0 ? 0 : ((ZCode{1} << (D * shift)) - 1);
      Emit(ctx, base, base + span);
      return;
    }
    for (std::uint32_t child = 0; child < (std::uint32_t{1} << D); ++child) {
      Cells cc;
      for (int d = 0; d < D; ++d) {
        cc[static_cast<size_t>(d)] =
            (c[static_cast<size_t>(d)] << 1) | ((child >> d) & 1u);
      }
      Recurse(ctx, cc, level + 1);
    }
  }
};

/// Per-thread decomposition scratch shared by the SFC-based indexes:
/// returns the interval list for `(rect_lo, rect_hi, max_intervals)`,
/// reusing the previous result when the arguments repeat — decomposition
/// is a pure function of them, so a convergence pre-check followed by the
/// execution of the same query costs one decomposition, and repeated calls
/// on one thread never reallocate. Thread-local, so concurrent queries
/// never share a buffer; the reference stays valid until the calling
/// thread's next call.
template <int D>
const std::vector<ZInterval>& DecomposeCached(
    const typename ZRangeDecomposer<D>::Cells& rect_lo,
    const typename ZRangeDecomposer<D>::Cells& rect_hi, int max_intervals) {
  struct Scratch {
    typename ZRangeDecomposer<D>::Cells lo{};
    typename ZRangeDecomposer<D>::Cells hi{};
    int max_intervals = -1;  // never matches a real (positive) budget
    std::vector<ZInterval> intervals;
  };
  static thread_local Scratch scratch;
  if (scratch.max_intervals != max_intervals || scratch.lo != rect_lo ||
      scratch.hi != rect_hi) {
    scratch.lo = rect_lo;
    scratch.hi = rect_hi;
    scratch.max_intervals = max_intervals;
    scratch.intervals.clear();
    ZRangeDecomposer<D>::Decompose(rect_lo, rect_hi, max_intervals,
                                   &scratch.intervals);
  }
  return scratch.intervals;
}

}  // namespace quasii::zorder

#endif  // QUASII_ZORDER_DECOMPOSE_H_
