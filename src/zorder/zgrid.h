#ifndef QUASII_ZORDER_ZGRID_H_
#define QUASII_ZORDER_ZGRID_H_

#include <algorithm>
#include <array>
#include <cstdint>

#include "geometry/box.h"
#include "zorder/zorder.h"

namespace quasii::zorder {

/// Maps continuous coordinates in a fixed universe onto the 2^kBitsPerDim
/// uniform grid underlying the Z-curve (the paper: "SFCracker assigns the
/// SFCcodes using a uniform grid", Section 6.2).
template <int D>
class ZGrid {
 public:
  using Cells = std::array<std::uint32_t, D>;
  static constexpr std::uint32_t kMaxCell =
      (std::uint32_t{1} << ZTraits<D>::kBitsPerDim) - 1;

  ZGrid() = default;

  /// `universe` must have positive extent in every dimension; coordinates
  /// outside it are clamped onto the boundary cells.
  explicit ZGrid(const Box<D>& universe) : universe_(universe) {
    for (int d = 0; d < D; ++d) {
      const double extent = static_cast<double>(universe.Extent(d));
      inv_cell_[static_cast<size_t>(d)] =
          extent > 0.0 ? (static_cast<double>(kMaxCell) + 1.0) / extent : 0.0;
    }
  }

  const Box<D>& universe() const { return universe_; }

  /// Grid coordinate of value `v` in dimension `d`, clamped to the grid.
  std::uint32_t CellCoord(Scalar v, int d) const {
    const double offset = static_cast<double>(v) -
                          static_cast<double>(universe_.lo[d]);
    const double cell = offset * inv_cell_[static_cast<size_t>(d)];
    if (cell <= 0.0) return 0;
    if (cell >= static_cast<double>(kMaxCell)) return kMaxCell;
    return static_cast<std::uint32_t>(cell);
  }

  Cells CellOf(const Point<D>& p) const {
    Cells c;
    for (int d = 0; d < D; ++d) {
      c[static_cast<size_t>(d)] = CellCoord(p[d], d);
    }
    return c;
  }

  /// Z-code of the cell containing `p`.
  ZCode CodeOf(const Point<D>& p) const {
    return ZTraits<D>::Encode(CellOf(p));
  }

  /// The inclusive cell rectangle covering box `b` (clamped to the grid).
  void CellRect(const Box<D>& b, Cells* lo, Cells* hi) const {
    *lo = CellOf(b.lo);
    *hi = CellOf(b.hi);
  }

 private:
  Box<D> universe_;
  std::array<double, D> inv_cell_{};
};

}  // namespace quasii::zorder

#endif  // QUASII_ZORDER_ZGRID_H_
