#ifndef QUASII_ZORDER_ZORDER_H_
#define QUASII_ZORDER_ZORDER_H_

#include <array>
#include <cstdint>

namespace quasii::zorder {

/// A Z-order (Morton) code. The paper uses 32-bit codes — 10 bits per
/// dimension in 3d — "as a trade-off between memory resources and precision"
/// (Section 6.1). We keep the same representation.
using ZCode = std::uint32_t;

/// Spreads the low 10 bits of `v` so bit i lands at position 3*i
/// (the classic "part-1-by-2" bit trick).
constexpr std::uint32_t Part1By2(std::uint32_t v) {
  v &= 0x000003FFu;
  v = (v | (v << 16)) & 0x030000FFu;
  v = (v | (v << 8)) & 0x0300F00Fu;
  v = (v | (v << 4)) & 0x030C30C3u;
  v = (v | (v << 2)) & 0x09249249u;
  return v;
}

/// Inverse of `Part1By2`: collects every third bit into the low 10 bits.
constexpr std::uint32_t Compact1By2(std::uint32_t v) {
  v &= 0x09249249u;
  v = (v ^ (v >> 2)) & 0x030C30C3u;
  v = (v ^ (v >> 4)) & 0x0300F00Fu;
  v = (v ^ (v >> 8)) & 0x030000FFu;
  v = (v ^ (v >> 16)) & 0x000003FFu;
  return v;
}

/// Spreads the low 16 bits of `v` so bit i lands at position 2*i.
constexpr std::uint32_t Part1By1(std::uint32_t v) {
  v &= 0x0000FFFFu;
  v = (v | (v << 8)) & 0x00FF00FFu;
  v = (v | (v << 4)) & 0x0F0F0F0Fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

/// Inverse of `Part1By1`.
constexpr std::uint32_t Compact1By1(std::uint32_t v) {
  v &= 0x55555555u;
  v = (v ^ (v >> 1)) & 0x33333333u;
  v = (v ^ (v >> 2)) & 0x0F0F0F0Fu;
  v = (v ^ (v >> 4)) & 0x00FF00FFu;
  v = (v ^ (v >> 8)) & 0x0000FFFFu;
  return v;
}

/// Dimension-specific Z-curve parameters. Dimension `d`'s bit i sits at code
/// position `D*i + d` (x interleaved least significant), so ascending code
/// order visits children in x-fastest order.
template <int D>
struct ZTraits;

template <>
struct ZTraits<2> {
  /// Bits per dimension (16*2 = 32-bit codes).
  static constexpr int kBitsPerDim = 16;

  static constexpr ZCode Encode(const std::array<std::uint32_t, 2>& c) {
    return Part1By1(c[0]) | (Part1By1(c[1]) << 1);
  }
  static constexpr std::array<std::uint32_t, 2> Decode(ZCode code) {
    return {Compact1By1(code), Compact1By1(code >> 1)};
  }
};

template <>
struct ZTraits<3> {
  /// Bits per dimension (10*3 = 30 bits used of the 32-bit code),
  /// matching the paper's configuration.
  static constexpr int kBitsPerDim = 10;

  static constexpr ZCode Encode(const std::array<std::uint32_t, 3>& c) {
    return Part1By2(c[0]) | (Part1By2(c[1]) << 1) | (Part1By2(c[2]) << 2);
  }
  static constexpr std::array<std::uint32_t, 3> Decode(ZCode code) {
    return {Compact1By2(code), Compact1By2(code >> 1), Compact1By2(code >> 2)};
  }
};

}  // namespace quasii::zorder

#endif  // QUASII_ZORDER_ZORDER_H_
