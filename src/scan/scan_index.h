#ifndef QUASII_SCAN_SCAN_INDEX_H_
#define QUASII_SCAN_SCAN_INDEX_H_

#include <cstdint>
#include <string_view>

#include "common/dataset.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// The index-less baseline: answers every query with a full pass over the
/// dataset. This is one of the two options scientists have today (Section 2)
/// and the reference every result set is validated against in the tests —
/// including kNN, where its exhaustive heap pass is the oracle the indexed
/// traversals are compared to.
template <int D>
class ScanIndex final : public SpatialIndex<D> {
 public:
  /// Keeps a reference to `data`; the caller owns it and must keep it alive.
  explicit ScanIndex(const Dataset<D>& data) : data_(&data) {}

  std::string_view name() const override { return "Scan"; }

 protected:
  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    const Dataset<D>& data = *data_;
    this->stats_.partitions_visited += 1;
    this->stats_.objects_tested += data.size();
    MatchEmitter emit(count_only, &sink);
    for (ObjectId i = 0; i < data.size(); ++i) {
      if (MatchesPredicate(data[i], q, predicate)) emit.Add(i);
    }
    emit.Flush();
  }

  /// The kNN oracle: one exhaustive pass offering every object's MBB
  /// distance to a bounded best-k heap.
  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    const Dataset<D>& data = *data_;
    this->stats_.partitions_visited += 1;
    this->stats_.objects_tested += data.size();
    TopKSink topk(k);
    for (ObjectId i = 0; i < data.size(); ++i) {
      topk.Offer(i, data[i].MinDistSquaredTo(pt));
    }
    DrainTopK(&topk, &sink);
  }

 private:
  const Dataset<D>* data_;
};

}  // namespace quasii

#endif  // QUASII_SCAN_SCAN_INDEX_H_
