#ifndef QUASII_SCAN_SCAN_INDEX_H_
#define QUASII_SCAN_SCAN_INDEX_H_

#include <cstdint>
#include <string_view>

#include "common/dataset.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// The index-less baseline: answers every query with a full pass over the
/// live object set. This is one of the two options scientists have today
/// (Section 2) and the reference every result set is validated against in
/// the tests — including kNN, where its exhaustive heap pass is the oracle
/// the indexed traversals are compared to. Mutations are free: the store is
/// the entire structure.
template <int D>
class ScanIndex final : public SpatialIndex<D> {
 public:
  /// Keeps a reference to `data`; the caller owns it and must keep it alive.
  explicit ScanIndex(const Dataset<D>& data) : SpatialIndex<D>(data) {}

  std::string_view name() const override { return "Scan"; }

  /// Stateless queries: every execution is a pure read of the store, so
  /// concurrent reads are always safe.
  bool ConvergedFor(const Query<D>&) const override { return true; }

 protected:
  void OnInsert(ObjectId, const Box<D>&) override {}
  void OnErase(ObjectId) override {}

  /// The join oracle: the textbook nested loop over both live sets, every
  /// pair tested. Its canonical output (via `JoinEmitter`) is what every
  /// indexed join strategy is validated against bit-for-bit.
  void ExecuteJoin(SpatialIndex<D>& other, JoinEmitter& emit) override {
    this->Stats().partitions_visited += 1;
    this->Stats().objects_tested +=
        this->store_.live_count() * other.store().live_count();
    this->store_.ForEachLive([&](ObjectId la, const Box<D>& ba) {
      other.store().ForEachLive([&](ObjectId rb, const Box<D>& bb) {
        if (ba.Intersects(bb)) emit.Add(la, rb);
      });
    });
  }

  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    this->Stats().partitions_visited += 1;
    this->Stats().objects_tested += this->store_.live_count();
    MatchEmitter emit(count_only, &sink);
    this->store_.ForEachLive([&](ObjectId id, const Box<D>& b) {
      if (MatchesPredicate(b, q, predicate)) emit.Add(id);
    });
    emit.Flush();
  }

  /// The kNN oracle: one exhaustive pass offering every live object's MBB
  /// distance to a bounded best-k heap.
  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    this->Stats().partitions_visited += 1;
    this->Stats().objects_tested += this->store_.live_count();
    TopKSink topk(k);
    this->store_.ForEachLive([&](ObjectId id, const Box<D>& b) {
      topk.Offer(id, b.MinDistSquaredTo(pt));
    });
    DrainTopK(&topk, &sink);
  }
};

}  // namespace quasii

#endif  // QUASII_SCAN_SCAN_INDEX_H_
