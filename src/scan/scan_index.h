#ifndef QUASII_SCAN_SCAN_INDEX_H_
#define QUASII_SCAN_SCAN_INDEX_H_

#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// The index-less baseline: answers every query with a full pass over the
/// dataset. This is one of the two options scientists have today (Section 2)
/// and the reference every result set is validated against in the tests.
template <int D>
class ScanIndex final : public SpatialIndex<D> {
 public:
  /// Keeps a reference to `data`; the caller owns it and must keep it alive.
  explicit ScanIndex(const Dataset<D>& data) : data_(&data) {}

  std::string_view name() const override { return "Scan"; }

  void Query(const Box<D>& q, std::vector<ObjectId>* result) override {
    if (q.IsEmpty()) return;  // an empty box contains no points
    const Dataset<D>& data = *data_;
    this->stats_.partitions_visited += 1;
    this->stats_.objects_tested += data.size();
    for (ObjectId i = 0; i < data.size(); ++i) {
      if (data[i].Intersects(q)) result->push_back(i);
    }
  }

 private:
  const Dataset<D>* data_;
};

}  // namespace quasii

#endif  // QUASII_SCAN_SCAN_INDEX_H_
