#ifndef QUASII_MOSAIC_MOSAIC_INDEX_H_
#define QUASII_MOSAIC_MOSAIC_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/query.h"
#include "common/spatial_index.h"
#include "geometry/box.h"

namespace quasii {

/// Mosaic (Section 3.2): Space Odyssey's incremental indexing idea [35]
/// adapted to main memory. An octree (2^D-tree) is built top-down as a side
/// effect of queries: every query splits the overlapping partitions into
/// 2^D equal sub-partitions and reassigns their objects, recursively, until
/// partitions are small enough. Frequently queried areas end up fully
/// indexed; untouched areas stay coarse.
///
/// Objects are assigned to partitions by their *centre* (query-extension
/// strategy [40]) — the paper shows replication is far worse for volumetric
/// objects (Fig. 6a) — so queries are extended by half the maximum object
/// extent during traversal and candidates are filtered against the original
/// query box.
///
/// Centre assignment is deterministic, which makes mutations physical and
/// tombstone-free: an insert descends to the one leaf its centre selects
/// and drops the id there (an overflowing leaf splits lazily at the next
/// query that touches it, Mosaic's normal incremental behaviour); an erase
/// descends the same way and removes the id.
template <int D>
class MosaicIndex final : public SpatialIndex<D> {
 public:
  struct Params {
    /// A partition with at most this many objects is final (not split).
    std::size_t leaf_capacity = 1024;
    /// Hard depth cap: guards against duplicate-heavy data where splitting
    /// cannot reduce partition sizes.
    int max_depth = 12;
  };

  struct Node {
    Box<D> bounds;
    std::vector<ObjectId> objects;  // leaves only
    std::vector<Node> children;     // empty or exactly 2^D
    bool is_leaf() const { return children.empty(); }
  };

  MosaicIndex(const Dataset<D>& data, const Box<D>& universe,
              const Params& params = Params{})
      : SpatialIndex<D>(data), universe_(universe), params_(params) {}

  std::string_view name() const override { return "Mosaic"; }

  /// Incremental index: all structure is built inside query execution.
  void Build() override {}

  /// Rebuild-from-store restore (no structure blob): reset so the next
  /// query re-reads the recovered store wholesale.
  void RebuildFromStore() override { initialized_ = false; }

  const Node& root() const { return root_; }
  bool initialized() const { return initialized_; }

  /// A box query is converged when no leaf it touches (under the extended
  /// traversal box) is still splittable — then the descent is a pure read.
  /// kNN stays conservative: its expanding ring probes regions the
  /// triggering query never names — as do joins, whose nested-loop probes
  /// split around every partner box.
  bool ConvergedFor(const Query<D>& query) const override {
    if (!initialized_) return false;
    if (query.type() == QueryType::kKNearest ||
        query.type() == QueryType::kJoin) {
      return false;
    }
    const Box<D> box = DescentBox(query);
    if (box.IsEmpty()) return true;
    Box<D> extended = box;
    for (int d = 0; d < D; ++d) {
      extended.lo[d] -= half_extent_[d];
      extended.hi[d] += half_extent_[d];
    }
    return SubtreeConverged(root_, 0, extended);
  }

 protected:
  void OnInsert(ObjectId id, const Box<D>& box) override {
    if (!initialized_) return;  // Initialize() reads the store wholesale
    for (int d = 0; d < D; ++d) {
      half_extent_[d] = std::max(half_extent_[d], box.Extent(d) / 2);
    }
    DescendToLeaf(box.Center())->objects.push_back(id);
  }

  void OnErase(ObjectId id) override {
    if (!initialized_) return;
    // The store still holds the erased object's box, and centre assignment
    // is deterministic, so the id sits in exactly the leaf its centre
    // descends to.
    Node* leaf = DescendToLeaf(this->store_.box(id).Center());
    auto& objects = leaf->objects;
    const auto it = std::find(objects.begin(), objects.end(), id);
    if (it != objects.end()) {
      *it = objects.back();
      objects.pop_back();
    }
  }

  void ExecuteBox(const Box<D>& q, RangePredicate predicate, bool count_only,
                  Sink& sink) override {
    if (!initialized_) Initialize();
    Box<D> extended = q;
    for (int d = 0; d < D; ++d) {
      extended.lo[d] -= half_extent_[d];
      extended.hi[d] += half_extent_[d];
    }
    MatchEmitter emit(count_only, &sink);
    const BoxExec ctx{&q, &extended, predicate, &emit};
    QueryNode(&root_, 0, ctx);
    emit.Flush();
  }

  void ExecuteKNearest(const Point<D>& pt, std::size_t k,
                       Sink& sink) override {
    if (!initialized_) Initialize();
    this->RingKNearest(pt, k, sink);
  }

 private:
  /// Box-execution context (see `SpatialIndex::ExecuteBox` for the shared
  /// contract); Mosaic's delta: the traversal descends with the
  /// pre-extended probe box while the exact filter uses the original.
  struct BoxExec {
    const Box<D>* q;
    const Box<D>* extended;
    RangePredicate predicate;
    MatchEmitter* emit;
  };
  static constexpr std::size_t kChildren = std::size_t{1} << D;

  /// Read-only replay of `QueryNode`'s routing: false as soon as some
  /// touched leaf would still split.
  bool SubtreeConverged(const Node& node, int depth,
                        const Box<D>& extended) const {
    if (node.is_leaf()) {
      return node.objects.size() <= params_.leaf_capacity ||
             depth >= params_.max_depth;
    }
    for (const Node& child : node.children) {
      if (child.bounds.Intersects(extended) &&
          !SubtreeConverged(child, depth + 1, extended)) {
        return false;
      }
    }
    return true;
  }

  void Initialize() {
    root_.bounds = universe_;
    root_.objects.clear();
    root_.children.clear();
    half_extent_ = Point<D>{};
    this->store_.ForEachLive([this](ObjectId id, const Box<D>& b) {
      root_.objects.push_back(id);
      for (int d = 0; d < D; ++d) {
        half_extent_[d] = std::max(half_extent_[d], b.Extent(d) / 2);
      }
    });
    initialized_ = true;
  }

  /// The child a centre selects under a node — the one assignment rule
  /// shared by `Split`, insertion, and erasure, so every object is always
  /// findable by descending with its centre.
  static std::size_t ChildOf(const Point<D>& centre, const Point<D>& mid) {
    std::size_t c = 0;
    for (int d = 0; d < D; ++d) {
      if (centre[d] > mid[d]) c |= std::size_t{1} << d;
    }
    return c;
  }

  Node* DescendToLeaf(const Point<D>& centre) {
    Node* node = &root_;
    while (!node->is_leaf()) {
      node = &node->children[ChildOf(centre, node->bounds.Center())];
    }
    return node;
  }

  /// Splits a leaf into 2^D children and reassigns its objects by centre —
  /// the re-partitioning work that makes Mosaic's incremental strategy
  /// expensive in frequently queried areas (Section 6.3).
  void Split(Node* node) {
    const Point<D> mid = node->bounds.Center();
    node->children.resize(kChildren);
    for (std::size_t c = 0; c < kChildren; ++c) {
      Node& child = node->children[c];
      for (int d = 0; d < D; ++d) {
        if ((c >> d) & 1u) {
          child.bounds.lo[d] = mid[d];
          child.bounds.hi[d] = node->bounds.hi[d];
        } else {
          child.bounds.lo[d] = node->bounds.lo[d];
          child.bounds.hi[d] = mid[d];
        }
      }
    }
    for (const ObjectId id : node->objects) {
      const std::size_t c = ChildOf(this->store_.box(id).Center(), mid);
      node->children[c].objects.push_back(id);
    }
    ++this->Stats().cracks;
    this->Stats().objects_moved += node->objects.size();
    node->objects.clear();
    node->objects.shrink_to_fit();
  }

  void QueryNode(Node* node, int depth, const BoxExec& ctx) {
    ++this->Stats().partitions_visited;
    if (node->is_leaf()) {
      if (node->objects.size() > params_.leaf_capacity &&
          depth < params_.max_depth) {
        Split(node);
        // fall through to the children loop below
      } else {
        this->Stats().objects_tested += node->objects.size();
        for (const ObjectId id : node->objects) {
          if (MatchesPredicate(this->store_.box(id), *ctx.q,
                               ctx.predicate)) {
            ctx.emit->Add(id);
          }
        }
        return;
      }
    }
    for (Node& child : node->children) {
      if (child.bounds.Intersects(*ctx.extended)) {
        QueryNode(&child, depth + 1, ctx);
      }
    }
  }

  Box<D> universe_;
  Params params_;
  bool initialized_ = false;
  Node root_;
  Point<D> half_extent_{};
};

}  // namespace quasii

#endif  // QUASII_MOSAIC_MOSAIC_INDEX_H_
